"""The six execution strategies compared throughout the paper.

Section 4.1: the engine can run the standard execution model (STD) or
the factorized/compressed model (COM), each optionally combined with
bitvector-based early pruning (BVP) or semi-join full reduction (SJ),
giving six strategies.  The same enum parameterizes both the analytic
cost model and the execution engine.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["ExecutionMode"]


class ExecutionMode(str, Enum):
    """One of the six execution strategies of Section 4.1."""

    STD = "STD"
    COM = "COM"
    BVP_STD = "BVP+STD"
    BVP_COM = "BVP+COM"
    SJ_STD = "SJ+STD"
    SJ_COM = "SJ+COM"

    @property
    def factorized(self):
        """True if intermediate results use the factorized representation."""
        return self in (
            ExecutionMode.COM,
            ExecutionMode.BVP_COM,
            ExecutionMode.SJ_COM,
        )

    @property
    def uses_bitvectors(self):
        """True if bitvector-based early pruning is enabled."""
        return self in (ExecutionMode.BVP_STD, ExecutionMode.BVP_COM)

    @property
    def uses_semijoin(self):
        """True if a phase-1 semi-join full reduction is performed."""
        return self in (ExecutionMode.SJ_STD, ExecutionMode.SJ_COM)

    @classmethod
    def all_modes(cls):
        """All six strategies, STD first (the paper's listing order)."""
        return [
            cls.STD,
            cls.COM,
            cls.BVP_STD,
            cls.BVP_COM,
            cls.SJ_STD,
            cls.SJ_COM,
        ]

    def __str__(self):
        return self.value
