"""Cyclic join-graph generators for the joint tree+order study.

The acyclic scaling workloads (:mod:`repro.workloads.large_joins`) stop
where the paper does — trees.  Real graph-shaped workloads (triangle
counting, social-network motifs, grid adjacency) are cyclic, and the
planner's joint spanning-tree + join-order search needs data-backed
instances to optimize against.  This module generates the three
canonical cyclic shapes as :class:`~repro.core.parser.ParsedQuery`
objects (trees cannot represent them) up to ~40 relations:

* :func:`cycle_query` — a ring: ``n`` relations, ``n`` predicates, one
  residual whatever tree is chosen (the minimal cyclic shape);
* :func:`clique_query` — every pair joined: ``n(n-1)/2`` predicates,
  ``n(n-1)/2 - (n-1)`` residuals — the dense extreme, where tree choice
  matters most;
* :func:`grid_query` — a ``rows x cols`` lattice: ``(rows-1)(cols-1)``
  independent cycles, the structured middle ground.

Conventions follow :mod:`repro.workloads.large_joins`: relations are
``R0..R{n-1}`` and the edge between ``Ri`` and ``Rj`` joins on a shared
column name ``k_{i}_{j}``.  :func:`cyclic_catalog` backs a query with
data the way :func:`~repro.workloads.large_joins.large_join_catalog`
does for trees — uniform integer keys — but draws each edge's key
domain from a caller-controlled range, so edge selectivities are
heterogeneous and spanning-tree choice is a real decision.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.parser import Contradiction, ParsedQuery, Placeholder
from ..storage.table import Catalog

__all__ = [
    "CYCLIC_SHAPES",
    "clique_query",
    "cycle_query",
    "cyclic_catalog",
    "cyclic_scaling_suite",
    "grid_query",
    "to_sql",
]


def _edge(i, j):
    """The canonical predicate joining ``Ri`` and ``Rj``."""
    lo, hi = sorted((i, j))
    attr = f"k_{lo}_{hi}"
    return (f"R{lo}", attr, f"R{hi}", attr)


def _query(num_relations, edges):
    relations = {f"R{i}": f"R{i}" for i in range(num_relations)}
    return ParsedQuery(
        relations=relations,
        join_predicates=[_edge(i, j) for i, j in edges],
    )


def cycle_query(num_relations):
    """A ring of ``num_relations`` relations (one redundant edge)."""
    if num_relations < 3:
        raise ValueError("a cycle query needs at least three relations")
    edges = [(i, (i + 1) % num_relations) for i in range(num_relations)]
    return _query(num_relations, edges)


def clique_query(num_relations):
    """Every relation pair joined — ``n(n-1)/2`` predicates."""
    if num_relations < 3:
        raise ValueError("a clique query needs at least three relations")
    edges = [
        (i, j)
        for i in range(num_relations)
        for j in range(i + 1, num_relations)
    ]
    return _query(num_relations, edges)


def grid_query(num_rows, num_cols):
    """A ``num_rows x num_cols`` lattice of relations.

    Horizontal and vertical neighbours are joined; every unit square is
    an independent cycle, so a spanning tree leaves
    ``(num_rows - 1) * (num_cols - 1)`` residuals.
    """
    if num_rows < 1 or num_cols < 1:
        raise ValueError("grid dimensions must be positive")
    if num_rows * num_cols < 4 or min(num_rows, num_cols) < 2:
        raise ValueError("a cyclic grid needs at least 2 x 2 relations")

    def at(r, c):
        return r * num_cols + c

    edges = []
    for r in range(num_rows):
        for c in range(num_cols):
            if c + 1 < num_cols:
                edges.append((at(r, c), at(r, c + 1)))
            if r + 1 < num_rows:
                edges.append((at(r, c), at(r + 1, c)))
    return _query(num_rows * num_cols, edges)


def _grid_for(num_relations):
    """The most-square ``rows x cols >= 2 x 2`` grid of ``n`` relations."""
    for rows in range(int(math.isqrt(num_relations)), 1, -1):
        if num_relations % rows == 0:
            return grid_query(rows, num_relations // rows)
    raise ValueError(
        f"no 2-row-or-deeper grid has exactly {num_relations} relations; "
        f"pick a composite size"
    )


#: shape name -> generator taking one ``num_relations`` argument
CYCLIC_SHAPES = {
    "cycle": cycle_query,
    "clique": clique_query,
    "grid": _grid_for,
}


def cyclic_catalog(parsed, rows_per_relation=256, key_domain=(64, 512),
                   seed=0, skew=None):
    """Random data backing a cyclic query's schema.

    Every relation gets ``rows_per_relation`` rows with one key column
    per incident join predicate.  ``key_domain`` is either a fixed int
    or an inclusive ``(low, high)`` range from which each *edge* draws
    its own domain — a small domain makes the edge unselective (pair
    selectivity ``~1/domain``), so drawn domains give the heterogeneous
    selectivities that make the joint tree search a real decision.

    ``skew`` (default ``None`` — uniform keys, bit-identical to older
    releases for a fixed seed) draws each key column from a power law
    instead: key ``v`` has probability proportional to
    ``1 / (v + 1) ** skew``.  Skewed keys concentrate matches on a few
    heavy values, the regime where tree+filter plans materialize large
    intermediates and the worst-case-optimal strategy pays off.
    """
    if rows_per_relation < 1:
        raise ValueError(
            f"rows_per_relation must be >= 1, got {rows_per_relation}"
        )
    if skew is not None and skew <= 0:
        raise ValueError(f"skew must be positive (or None), got {skew}")

    def draw_keys(rng, domain):
        if skew is None:
            return rng.integers(0, domain, rows_per_relation)
        weights = 1.0 / np.arange(1, domain + 1, dtype=np.float64) ** skew
        return rng.choice(domain, size=rows_per_relation,
                          p=weights / weights.sum())

    rng = np.random.default_rng(seed)
    columns = {alias: {} for alias in parsed.relations}
    for rel_a, attr_a, rel_b, attr_b in parsed.join_predicates:
        if isinstance(key_domain, int):
            domain = key_domain
        else:
            low, high = key_domain
            domain = int(rng.integers(low, high + 1))
        for alias, attr in ((rel_a, attr_a), (rel_b, attr_b)):
            if attr not in columns[alias]:
                columns[alias][attr] = draw_keys(rng, domain)
    catalog = Catalog()
    for alias, table_name in parsed.relations.items():
        if not columns[alias]:  # isolated relation: payload column
            columns[alias]["k"] = rng.integers(0, 64, rows_per_relation)
        catalog.add_table(table_name, columns[alias])
    return catalog


def _literal_sql(literal):
    if isinstance(literal, Placeholder):
        return "?"
    if isinstance(literal, Contradiction):
        raise ValueError("a contradictory selection has no SQL rendering")
    if isinstance(literal, str):
        return f"'{literal}'"
    return str(literal)


def to_sql(parsed):
    """Render a :class:`ParsedQuery` back to the supported SQL dialect.

    Useful for pushing generated cyclic queries through the full text
    path (parser, normalized plan-cache keys, service front ends).
    """
    relations = ", ".join(
        name if alias == name else f"{name} as {alias}"
        for alias, name in parsed.relations.items()
    )
    conjuncts = [
        f"{rel_a}.{attr_a} = {rel_b}.{attr_b}"
        for rel_a, attr_a, rel_b, attr_b in parsed.join_predicates
    ]
    conjuncts.extend(
        f"{alias}.{column} = {_literal_sql(literal)}"
        for alias, predicate in parsed.selections.items()
        for column, literal in predicate.items()
    )
    sql = f"select * from {relations}"
    if conjuncts:
        sql += " where " + " and ".join(conjuncts)
    return sql


def cyclic_scaling_suite(sizes, shapes=("cycle", "clique", "grid"), seed=0,
                         rows_per_relation=256, key_domain=(64, 512)):
    """Generate ``(shape, n, parsed, catalog)`` cases for a sweep.

    One data-backed case per (shape, size); the data seed varies per
    case so sweeps do not accidentally reuse one selectivity draw.
    Clique sizes grow ``O(n^2)`` predicates — pass smaller sizes for
    that shape, as :mod:`benchmarks.bench_cyclic_scaling` does.
    """
    cases = []
    for shape in shapes:
        build = CYCLIC_SHAPES[shape]
        for offset, n in enumerate(sizes):
            case_seed = seed + 1000 * len(cases) + offset
            parsed = build(n)
            catalog = cyclic_catalog(
                parsed, rows_per_relation=rows_per_relation,
                key_domain=key_domain, seed=case_seed,
            )
            cases.append((shape, n, parsed, catalog))
    return cases
