"""Synthetic data generation with controlled match probabilities/fanouts.

The synthetic benchmark of Section 5.2 needs relations whose per-edge
match probability ``m`` and fanout ``fo`` are dialed in exactly, plus
(for Section 5.6 / Figure 15) fanout distributions with controllable
skew (truncated normal, exponential).

Generation scheme, per edge ``p -> c`` processed in pre-order:

* the parent-side join column takes values from a key domain of size
  ``D`` spread uniformly over parent tuples (``D`` defaults to one key
  per tuple; it is reduced automatically to respect
  ``max_relation_size``, which bounds the multiplicative growth of
  child relations without changing per-tuple statistics);
* a fraction ``m`` of the keys is *matched*: the child contains
  ``fo_i`` tuples for matched key ``i``, with ``fo_i`` drawn from the
  configured fanout distribution (mean ``fo``);
* a ``dangling_fraction`` of extra child tuples carries keys outside
  the parent's domain, so child relations contain dangling tuples for
  the semi-join pass to remove.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..storage.table import Catalog

__all__ = ["EdgeSpec", "SyntheticDataset", "generate_dataset", "specs_from_ranges"]


@dataclass(frozen=True)
class EdgeSpec:
    """Generation parameters for one parent->child join edge."""

    m: float
    fo: float
    fanout_dist: str = "constant"  # "constant" | "normal" | "exponential"
    fanout_sigma: float = 0.0  # stddev of the truncated normal
    dangling_fraction: float = 0.1
    distinct_parent_keys: int = None

    def __post_init__(self):
        if not 0.0 <= self.m <= 1.0:
            raise ValueError(f"m must be in [0, 1], got {self.m}")
        if self.fo < 1.0:
            raise ValueError(f"fo must be >= 1, got {self.fo}")
        if self.fanout_dist not in ("constant", "normal", "exponential"):
            raise ValueError(f"unknown fanout_dist {self.fanout_dist!r}")


@dataclass
class SyntheticDataset:
    """A generated catalog plus the design parameters that produced it."""

    catalog: Catalog
    query: object
    edge_specs: dict
    relation_sizes: dict = field(default_factory=dict)


def _draw_fanouts(spec, num_keys, rng):
    """Integer fanouts (>= 1) with mean ``spec.fo``."""
    fo = spec.fo
    if spec.fanout_dist == "constant":
        base = int(np.floor(fo))
        frac = fo - base
        fanouts = np.full(num_keys, base, dtype=np.int64)
        if frac > 0:
            fanouts += rng.random(num_keys) < frac
        return np.maximum(fanouts, 1)
    if spec.fanout_dist == "normal":
        # Truncated normal on [1, 2*fo - 1], as in Section 5.6.
        low, high = 1.0, max(2.0 * fo - 1.0, 1.0)
        values = rng.normal(fo, max(spec.fanout_sigma, 1e-9), num_keys)
        values = np.clip(values, low, high)
        return np.maximum(np.rint(values).astype(np.int64), 1)
    # Exponential with mean fo: 1 + Exp(fo - 1), highly skewed.
    if fo <= 1.0:
        return np.ones(num_keys, dtype=np.int64)
    values = 1.0 + rng.exponential(fo - 1.0, num_keys)
    return np.maximum(np.rint(values).astype(np.int64), 1)


def _parent_key_column(num_rows, num_keys, rng):
    """Spread ``num_keys`` distinct keys uniformly over ``num_rows``."""
    keys = np.arange(num_rows, dtype=np.int64) % num_keys
    rng.shuffle(keys)
    return keys


def generate_dataset(
    query,
    driver_size,
    edge_specs,
    seed=0,
    max_relation_size=2_000_000,
):
    """Generate a catalog whose joins realize the per-edge specs.

    Parameters
    ----------
    query:
        The rooted :class:`~repro.core.query.JoinQuery`; column names
        must follow the edge attributes (the :mod:`shapes` builders'
        convention ``k_<child>`` / ``k`` works out of the box).
    edge_specs:
        Mapping child-relation name -> :class:`EdgeSpec`.
    max_relation_size:
        Cap on matched-child cardinality; when ``m * D * fo`` would
        exceed it, the parent key-domain size ``D`` is reduced (key
        sharing), leaving per-tuple statistics unchanged.
    """
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    columns_by_relation = {
        query.root: {"payload": np.arange(driver_size, dtype=np.int64)}
    }
    sizes = {query.root: int(driver_size)}

    for relation in query.preorder():
        if relation == query.root:
            continue
        edge = query.edge_to(relation)
        spec = edge_specs[relation]
        parent_size = sizes[edge.parent]
        num_keys = spec.distinct_parent_keys or parent_size
        num_keys = min(num_keys, parent_size) or 1
        expected_child = spec.m * num_keys * spec.fo
        if max_relation_size and expected_child > max_relation_size:
            num_keys = max(1, int(max_relation_size / max(spec.m * spec.fo, 1e-9)))
        parent_keys = _parent_key_column(parent_size, num_keys, rng)
        columns_by_relation[edge.parent][edge.parent_attr] = parent_keys

        num_matched = int(round(spec.m * num_keys))
        matched_keys = rng.choice(num_keys, size=num_matched, replace=False)
        fanouts = _draw_fanouts(spec, num_matched, rng)
        child_keys = np.repeat(matched_keys, fanouts)
        num_dangling = int(round(spec.dangling_fraction * len(child_keys)))
        if num_dangling:
            dangling = num_keys + rng.integers(
                0, max(num_dangling, 1), size=num_dangling
            )
            child_keys = np.concatenate((child_keys, dangling))
        rng.shuffle(child_keys)
        child_size = len(child_keys)
        columns_by_relation[relation] = {
            edge.child_attr: child_keys,
            "payload": np.arange(child_size, dtype=np.int64),
        }
        sizes[relation] = child_size

    for relation, columns in columns_by_relation.items():
        if not columns or len(next(iter(columns.values()))) == 0:
            # Degenerate empty relation: keep a single dangling tuple so
            # hash builds stay well-defined (it matches nothing).
            columns = {name: np.asarray([-1]) for name in columns} or {
                "payload": np.asarray([-1])
            }
            sizes[relation] = 1
        catalog.add_table(relation, columns)

    return SyntheticDataset(
        catalog=catalog,
        query=query,
        edge_specs=dict(edge_specs),
        relation_sizes=sizes,
    )


def specs_from_ranges(
    query,
    m_range,
    fo_range,
    seed=0,
    fanout_dist="constant",
    fanout_sigma=0.0,
    dangling_fraction=0.1,
):
    """Draw one :class:`EdgeSpec` per edge uniformly from the ranges.

    This mirrors the paper's synthetic benchmark setup: match
    probabilities uniform in ``m_range`` (for example ``[0.05, 0.2]``)
    and fanouts uniform in ``fo_range`` (``[1, 10]``).
    """
    rng = np.random.default_rng(seed)
    specs = {}
    for relation in query.non_root_relations:
        specs[relation] = EdgeSpec(
            m=float(rng.uniform(*m_range)),
            fo=float(rng.uniform(*fo_range)),
            fanout_dist=fanout_dist,
            fanout_sigma=fanout_sigma,
            dangling_fraction=dangling_fraction,
        )
    return specs
