"""Random join trees and statistics for the optimizer study (Figure 10).

Section 5.1: join trees with up to 20 nodes; the root has 2-5 children,
every other node 0-3 children; fanouts uniform in [1, 10] and match
probabilities uniform in one of four ranges.
"""

from __future__ import annotations

import numpy as np

from ..core.query import JoinEdge, JoinQuery
from ..core.stats import EdgeStats, QueryStats

__all__ = [
    "random_join_tree",
    "random_stats",
    "MATCH_PROBABILITY_RANGES",
    "DEFAULT_FANOUT_RANGE",
]

#: the four match-probability ranges used throughout the evaluation
MATCH_PROBABILITY_RANGES = [
    (0.05, 0.2),
    (0.05, 0.5),
    (0.1, 0.5),
    (0.5, 0.9),
]

DEFAULT_FANOUT_RANGE = (1.0, 10.0)


def random_join_tree(
    max_nodes=20,
    root_children_range=(2, 5),
    node_children_range=(0, 3),
    seed=0,
):
    """A random join tree following the Figure 10 construction.

    Nodes are expanded breadth-first: the root draws its child count
    from ``root_children_range``, other nodes from
    ``node_children_range``; expansion stops when ``max_nodes`` is
    reached.  The tree has at least two nodes.
    """
    rng = np.random.default_rng(seed)
    root = "R0"
    edges = []
    next_id = 1
    frontier = [root]
    while frontier and next_id < max_nodes:
        node = frontier.pop(0)
        if node == root:
            lo, hi = root_children_range
        else:
            lo, hi = node_children_range
        num_children = int(rng.integers(lo, hi + 1))
        num_children = min(num_children, max_nodes - next_id)
        for _ in range(num_children):
            child = f"R{next_id}"
            next_id += 1
            edges.append(JoinEdge(node, child, f"k_{child}", "k"))
            frontier.append(child)
    if not edges:
        # Guarantee a non-trivial query even for adversarial draws.
        edges.append(JoinEdge(root, "R1", "k_R1", "k"))
    return JoinQuery(root, edges)


def random_stats(
    query,
    m_range,
    fo_range=DEFAULT_FANOUT_RANGE,
    driver_size=1.0,
    seed=0,
):
    """Uniform-random :class:`QueryStats` for every edge of ``query``."""
    rng = np.random.default_rng(seed)
    edge_stats = {
        relation: EdgeStats(
            m=float(rng.uniform(*m_range)),
            fo=float(rng.uniform(*fo_range)),
        )
        for relation in query.non_root_relations
    }
    return QueryStats(driver_size, edge_stats)
