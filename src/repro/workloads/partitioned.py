"""Workload generator for partitioned-storage experiments.

Produces the build/probe shapes the sharding benchmark and tests
exercise: one large build relation with a (optionally skewed) integer
join key, and probe-key batches with a controllable hit rate.  Scaled
down, the same generator drives the property tests comparing sharded
and monolithic execution.
"""

from __future__ import annotations

import numpy as np

from ..core.query import JoinEdge, JoinQuery
from ..storage.table import Catalog, Table

__all__ = [
    "probe_batch",
    "scan_build_table",
    "scan_probe_catalog",
    "scan_probe_query",
]


def scan_build_table(rows, key_domain=None, skew=0.0, seed=0, name="build"):
    """A build-side relation: ``key`` (join key) plus a payload column.

    ``skew`` in [0, 1) biases keys toward the low end of the domain via
    a power law (0 = uniform), modelling the heavy-hitter keys that
    make monolithic index builds slow.
    """
    rng = np.random.default_rng(seed)
    if key_domain is None:
        key_domain = max(rows // 4, 1)
    uniform = rng.random(rows)
    if skew > 0.0:
        uniform = uniform ** (1.0 / (1.0 - skew))
    keys = (uniform * key_domain).astype(np.int64)
    return Table(name, {
        "key": keys,
        "payload": np.arange(rows, dtype=np.int64),
    })


def probe_batch(num_probes, key_domain, hit_rate=0.9, seed=1):
    """Probe keys; a ``1 - hit_rate`` fraction drawn outside the domain."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, key_domain, num_probes)
    misses = rng.random(num_probes) >= hit_rate
    keys[misses] += key_domain  # guaranteed out-of-domain
    return keys.astype(np.int64)


def scan_probe_catalog(driver_rows, build_rows, key_domain=None, skew=0.0,
                       hit_rate=0.9, seed=0):
    """A two-relation catalog: ``driver`` probing into ``build``."""
    build = scan_build_table(build_rows, key_domain=key_domain, skew=skew,
                             seed=seed)
    domain = int(build.column("key").max()) + 1 if build_rows else 1
    catalog = Catalog()
    catalog.add(build)
    catalog.add_table("driver", {
        "key": probe_batch(driver_rows, domain, hit_rate=hit_rate,
                           seed=seed + 1),
        "id": np.arange(driver_rows, dtype=np.int64),
    })
    return catalog


def scan_probe_query():
    """``driver.key = build.key``, rooted at the driver."""
    return JoinQuery("driver", [JoinEdge("driver", "build", "key", "key")])
