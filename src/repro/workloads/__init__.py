"""Workload and dataset generators for the evaluation."""

from .cebench import DATASET_FLAVORS, CEDataset, DatasetFlavor, build_dataset
from .cyclic import (
    CYCLIC_SHAPES,
    clique_query,
    cycle_query,
    cyclic_catalog,
    cyclic_scaling_suite,
    grid_query,
    to_sql,
)
from .dblp_like import EstimationDataset, JoinTask, build_estimation_dataset
from .large_joins import (
    LARGE_SHAPES,
    chain_query,
    large_join_catalog,
    large_query_stats,
    random_tree_query,
    scaling_suite,
    star_query,
)
from .partitioned import (
    probe_batch,
    scan_build_table,
    scan_probe_catalog,
    scan_probe_query,
)
from .random_trees import (
    DEFAULT_FANOUT_RANGE,
    MATCH_PROBABILITY_RANGES,
    random_join_tree,
    random_stats,
)
from .shapes import (
    PAPER_SHAPES,
    paper_path11,
    paper_snowflake_3_2,
    paper_snowflake_5_1,
    paper_star7,
    path,
    snowflake,
    star,
)
from .synthetic import (
    EdgeSpec,
    SyntheticDataset,
    generate_dataset,
    specs_from_ranges,
)

__all__ = [
    "CYCLIC_SHAPES",
    "DATASET_FLAVORS",
    "DEFAULT_FANOUT_RANGE",
    "CEDataset",
    "DatasetFlavor",
    "EdgeSpec",
    "EstimationDataset",
    "JoinTask",
    "LARGE_SHAPES",
    "MATCH_PROBABILITY_RANGES",
    "PAPER_SHAPES",
    "SyntheticDataset",
    "build_dataset",
    "build_estimation_dataset",
    "chain_query",
    "clique_query",
    "cycle_query",
    "cyclic_catalog",
    "cyclic_scaling_suite",
    "generate_dataset",
    "grid_query",
    "large_join_catalog",
    "large_query_stats",
    "paper_path11",
    "paper_snowflake_3_2",
    "paper_snowflake_5_1",
    "paper_star7",
    "path",
    "probe_batch",
    "random_join_tree",
    "random_stats",
    "random_tree_query",
    "scaling_suite",
    "scan_build_table",
    "scan_probe_catalog",
    "scan_probe_query",
    "snowflake",
    "specs_from_ranges",
    "star",
    "star_query",
    "to_sql",
]
