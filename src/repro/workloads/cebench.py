"""Simulated CE-benchmark datasets (Section 5.3 substitution).

The paper evaluates on five CE-benchmark datasets (epinions, imdb,
watdiv, dblp, yago) whose defining property is *intermediate result
explosion due to many-to-many joins* on graph-structured data.  The
real datasets are not available offline, so this module generates
synthetic stand-ins with the same character: relations over shared
entity domains, foreign keys with Zipf-like skew (hot entities join
with thousands of partners, cold ones with none), and per-dataset
flavour parameters controlling size, skew and connectivity.  See
DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.query import JoinEdge, JoinQuery
from ..core.stats import stats_from_data
from ..storage.table import Catalog

__all__ = ["DatasetFlavor", "DATASET_FLAVORS", "CEDataset", "build_dataset"]


@dataclass(frozen=True)
class DatasetFlavor:
    """Generation parameters for one simulated CE dataset."""

    name: str
    #: entity domains: name -> cardinality at scale 1.0
    domains: tuple
    #: relations: (name, rows, ((column, domain), ...))
    relations: tuple
    #: Zipf skew exponent for key sampling (higher = more skew)
    zipf_a: float


def _rel(name, rows, *columns):
    return (name, rows, tuple(columns))


#: Five flavours loosely mirroring the real datasets' character:
#: epinions is small and dense, imdb larger with moderate skew, watdiv
#: structured with wide domains, dblp bibliographic, yago sparse but
#: very skewed.
DATASET_FLAVORS = {
    "epinions": DatasetFlavor(
        name="epinions",
        domains=(("user", 800), ("item", 500)),
        relations=(
            _rel("trusts", 6000, ("src", "user"), ("dst", "user")),
            _rel("rates", 7000, ("user", "user"), ("item", "item")),
            _rel("reviews", 5000, ("user", "user"), ("item", "item")),
            _rel("similar", 3000, ("src", "item"), ("dst", "item")),
            _rel("profiles", 800, ("user", "user"), ("segment", "item")),
        ),
        zipf_a=1.4,
    ),
    "imdb": DatasetFlavor(
        name="imdb",
        domains=(("movie", 2000), ("person", 3000), ("company", 400),
                 ("keyword", 600)),
        relations=(
            _rel("cast_info", 12000, ("person", "person"), ("movie", "movie")),
            _rel("movie_companies", 5000, ("movie", "movie"),
                 ("company", "company")),
            _rel("movie_keyword", 9000, ("movie", "movie"),
                 ("keyword", "keyword")),
            _rel("person_roles", 8000, ("person", "person"),
                 ("keyword", "keyword")),
            _rel("complete_cast", 4000, ("movie", "movie"),
                 ("person", "person")),
            _rel("company_films", 3500, ("company", "company"),
                 ("movie", "movie")),
        ),
        zipf_a=1.2,
    ),
    "watdiv": DatasetFlavor(
        name="watdiv",
        domains=(("product", 1500), ("retailer", 300), ("customer", 2500),
                 ("topic", 200)),
        relations=(
            _rel("purchases", 10000, ("customer", "customer"),
                 ("product", "product")),
            _rel("offers", 6000, ("retailer", "retailer"),
                 ("product", "product")),
            _rel("likes", 8000, ("customer", "customer"), ("topic", "topic")),
            _rel("tagged", 4000, ("product", "product"), ("topic", "topic")),
            _rel("follows", 7000, ("src", "customer"), ("dst", "customer")),
            _rel("storefronts", 900, ("retailer", "retailer"),
                 ("topic", "topic")),
        ),
        zipf_a=1.0,
    ),
    "dblp": DatasetFlavor(
        name="dblp",
        domains=(("author", 2500), ("paper", 4000), ("venue", 150)),
        relations=(
            _rel("writes", 11000, ("author", "author"), ("paper", "paper")),
            _rel("cites", 14000, ("src", "paper"), ("dst", "paper")),
            _rel("published_in", 4000, ("paper", "paper"), ("venue", "venue")),
            _rel("coauthor", 9000, ("src", "author"), ("dst", "author")),
            _rel("editor_of", 600, ("author", "author"), ("venue", "venue")),
        ),
        zipf_a=1.3,
    ),
    "yago": DatasetFlavor(
        name="yago",
        domains=(("entity", 5000), ("type", 250), ("place", 700)),
        relations=(
            _rel("is_a", 9000, ("entity", "entity"), ("type", "type")),
            _rel("located_in", 6000, ("entity", "entity"), ("place", "place")),
            _rel("linked_to", 13000, ("src", "entity"), ("dst", "entity")),
            _rel("near", 2500, ("src", "place"), ("dst", "place")),
            _rel("subclass_of", 1200, ("src", "type"), ("dst", "type")),
        ),
        zipf_a=1.6,
    ),
}


def _zipf_keys(rng, domain_size, num_rows, zipf_a):
    """Sample ``num_rows`` keys from [0, domain_size) with Zipf skew."""
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks ** (-zipf_a)
    weights /= weights.sum()
    values = rng.choice(domain_size, size=num_rows, p=weights)
    # Randomize which concrete ids are "hot" so that different columns
    # over the same domain are not trivially correlated.
    permutation = rng.permutation(domain_size)
    return permutation[values].astype(np.int64)


class CEDataset:
    """A generated dataset: catalog + schema metadata + query sampler."""

    def __init__(self, flavor, catalog, column_domains):
        self.flavor = flavor
        self.name = flavor.name
        self.catalog = catalog
        #: (relation, column) -> domain name
        self.column_domains = column_domains

    def _domains_of(self, relation):
        return {
            column: domain
            for (rel, column), domain in self.column_domains.items()
            if rel == relation
        }

    def random_query(self, num_relations=4, seed=0, max_expected_output=None,
                     min_probe_ratio=None):
        """A random acyclic query over distinct relations of the dataset.

        Grows a join tree by repeatedly attaching an unused relation to
        a joined one through a shared entity domain.  If
        ``max_expected_output`` is given, rejection-samples until the
        expected flat output (per measured stats) is under the cap —
        mirroring the paper's result-size filter (<= 1e10).

        ``min_probe_ratio`` additionally requires *redundant-probe
        potential*: the ratio of predicted STD probes to predicted COM
        probes (under the survival-heuristic order) must reach the
        threshold.  This selects exactly the query class the CE
        benchmark was built to exhibit — many-to-many joins whose
        intermediates explode with redundant work.
        """
        rng = np.random.default_rng(seed)
        for attempt in range(300):
            query = self._grow_query(rng, num_relations)
            if query is None:
                continue
            if max_expected_output is None and min_probe_ratio is None:
                return query
            stats = stats_from_data(self.catalog, query)
            expected = stats.driver_size
            for relation in query.non_root_relations:
                expected *= stats.selectivity(relation)
            if max_expected_output is not None and expected > max_expected_output:
                continue
            if min_probe_ratio is not None:
                if self._probe_ratio(query, stats) < min_probe_ratio:
                    continue
            return query
        raise RuntimeError(
            f"could not sample a query with expected output under "
            f"{max_expected_output} (probe ratio >= {min_probe_ratio}) "
            f"after 300 attempts on {self.name!r}"
        )

    @staticmethod
    def _probe_ratio(query, stats):
        """Predicted STD/COM probe ratio under the survival order."""
        from ..core.costmodel import com_probes_per_join, std_probes_per_join
        from ..core.optimizer import greedy_order

        order = greedy_order(query, stats, "survival").order
        std = sum(std_probes_per_join(query, stats, order).values())
        com = sum(com_probes_per_join(query, stats, order).values())
        return std / max(com, 1e-9)

    def _grow_query(self, rng, num_relations):
        relations = list(self.catalog.table_names)
        driver = relations[int(rng.integers(len(relations)))]
        used = {driver}
        edges = []
        while len(used) < num_relations:
            candidates = []
            for parent in used:
                for p_col, domain in self._domains_of(parent).items():
                    for other in relations:
                        if other in used:
                            continue
                        for o_col, o_domain in self._domains_of(other).items():
                            if o_domain == domain:
                                candidates.append((parent, p_col, other, o_col))
            if not candidates:
                return None
            parent, p_col, child, c_col = candidates[
                int(rng.integers(len(candidates)))
            ]
            edges.append(JoinEdge(parent, child, p_col, c_col))
            used.add(child)
        return JoinQuery(driver, edges)

    def random_queries(self, num_queries=10, size_range=(4, 5), seed=0,
                       max_expected_output=2_000_000.0, min_probe_ratio=None):
        """The per-dataset query workload of Section 5.3."""
        rng = np.random.default_rng(seed)
        queries = []
        attempts = 0
        while len(queries) < num_queries:
            attempts += 1
            size = int(rng.integers(size_range[0], size_range[1] + 1))
            query_seed = int(rng.integers(2**31))
            ratio = min_probe_ratio if attempts <= 5 * num_queries else None
            try:
                queries.append(
                    self.random_query(
                        num_relations=size,
                        seed=query_seed,
                        max_expected_output=max_expected_output,
                        min_probe_ratio=ratio,
                    )
                )
            except RuntimeError:
                continue
        return queries


def build_dataset(name, scale=1.0, seed=0):
    """Generate one simulated CE dataset by flavour name."""
    try:
        flavor = DATASET_FLAVORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: "
            f"{sorted(DATASET_FLAVORS)}"
        ) from None
    rng = np.random.default_rng(seed)
    domain_sizes = {
        domain: max(2, int(round(size * scale)))
        for domain, size in flavor.domains
    }
    catalog = Catalog()
    column_domains = {}
    for rel_name, rows, columns in flavor.relations:
        num_rows = max(2, int(round(rows * scale)))
        data = {}
        for column, domain in columns:
            data[column] = _zipf_keys(
                rng, domain_sizes[domain], num_rows, flavor.zipf_a
            )
            column_domains[(rel_name, column)] = domain
        data["payload"] = np.arange(num_rows, dtype=np.int64)
        catalog.add_table(rel_name, data)
    return CEDataset(flavor, catalog, column_domains)
