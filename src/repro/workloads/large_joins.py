"""Large join-graph generators for the optimizer-scaling study.

The paper's evaluation stops at ~20 relations — the exhaustive DP's
practical reach — but production workloads (e.g. the PostBOUND
harnesses over JOB / STATS) routinely optimize 30-60-relation join
graphs.  This module generates the three canonical shapes at that
scale, with controllable selectivities:

* :func:`chain_query` — a path with the driver at one end (the DP's
  *easy* case: connected prefixes are linear in ``n``);
* :func:`star_query` — driver plus ``n - 1`` independent dimensions
  (the DP's ``O(n 2^n)`` *worst* case: every subset is connected);
* :func:`random_tree_query` — random attachment trees between those
  extremes, with bounded branching.

Conventions match :mod:`repro.workloads.shapes`: the driver is ``R0``,
a child joins its parent on ``parent.k_<child> = child.k``.
:func:`large_query_stats` draws per-edge ``(m, fo)`` uniformly from
caller-controlled ranges, so one can dial the workload from highly
selective (``m * fo`` well below 1) to exploding intermediates.
"""

from __future__ import annotations

import numpy as np

from ..core.query import JoinEdge, JoinQuery
from ..core.stats import EdgeStats, QueryStats
from ..storage.table import Catalog

__all__ = [
    "chain_query",
    "star_query",
    "random_tree_query",
    "large_join_catalog",
    "large_query_stats",
    "scaling_suite",
    "LARGE_SHAPES",
]


def _edge(parent, child):
    return JoinEdge(parent, child, f"k_{child}", "k")


def chain_query(num_relations, driver="R0"):
    """A chain of ``num_relations`` relations, driver at one end."""
    if num_relations < 2:
        raise ValueError("a chain query needs at least two relations")
    names = [driver] + [f"R{i}" for i in range(1, num_relations)]
    edges = [_edge(names[i], names[i + 1]) for i in range(num_relations - 1)]
    return JoinQuery(driver, edges)


def star_query(num_relations, driver="R0"):
    """A star: the driver joined with ``num_relations - 1`` dimensions."""
    if num_relations < 2:
        raise ValueError("a star query needs at least two relations")
    edges = [_edge(driver, f"R{i}") for i in range(1, num_relations)]
    return JoinQuery(driver, edges)


def random_tree_query(num_relations, seed=0, max_children=3, driver="R0"):
    """A random attachment tree with bounded branching.

    Each new relation picks a uniform-random parent among the nodes
    that still have fewer than ``max_children`` children, so the shape
    interpolates between chain (``max_children=1``) and star
    (``max_children >= num_relations``).
    """
    if num_relations < 2:
        raise ValueError("a random tree query needs at least two relations")
    if max_children < 1:
        raise ValueError(f"max_children must be >= 1, got {max_children}")
    rng = np.random.default_rng(seed)
    child_count = {driver: 0}
    edges = []
    for i in range(1, num_relations):
        open_nodes = [n for n, c in child_count.items() if c < max_children]
        parent = open_nodes[int(rng.integers(len(open_nodes)))]
        child = f"R{i}"
        edges.append(_edge(parent, child))
        child_count[parent] += 1
        child_count[child] = 0
    return JoinQuery(driver, edges)


#: shape name -> generator taking (num_relations, **kwargs)
LARGE_SHAPES = {
    "chain": chain_query,
    "star": star_query,
    "random_tree": random_tree_query,
}


def large_query_stats(
    query,
    m_range=(0.1, 0.9),
    fo_range=(1.0, 4.0),
    driver_size=1_000.0,
    seed=0,
):
    """Uniform-random :class:`QueryStats` with controllable selectivity.

    Per-edge match probability ``m`` and fanout ``fo`` are drawn
    uniformly from the given ranges (selectivity is ``m * fo``); narrow
    the ranges to pin the workload's blow-up behaviour.
    """
    rng = np.random.default_rng(seed)
    edge_stats = {
        relation: EdgeStats(
            m=float(rng.uniform(*m_range)),
            fo=float(rng.uniform(*fo_range)),
        )
        for relation in query.non_root_relations
    }
    return QueryStats(float(driver_size), edge_stats)


def large_join_catalog(query, rows_per_relation=256, key_domain=64, seed=0):
    """Random data backing a large join query's schema.

    Every relation gets :data:`rows_per_relation` rows; a non-root
    relation carries its join key column ``k`` and every relation
    carries one ``k_<child>`` column per child, all drawn uniformly
    from ``[0, key_domain)`` — so joins have realistic
    (many-to-many) match probabilities and fanouts that differ per
    probe direction.  This is what lets planner-level experiments
    (driver search, service benchmarks) run 40-relation queries
    against *actual data* instead of synthetic :class:`QueryStats`.
    """
    if rows_per_relation < 1:
        raise ValueError(
            f"rows_per_relation must be >= 1, got {rows_per_relation}"
        )
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    for relation in query.preorder():
        columns = {}
        if relation != query.root:
            columns[query.edge_to(relation).child_attr] = rng.integers(
                0, key_domain, rows_per_relation
            )
        for child in query.children(relation):
            columns[query.edge_to(child).parent_attr] = rng.integers(
                0, key_domain, rows_per_relation
            )
        if not columns:  # single-relation query: give the driver payload
            columns["k"] = rng.integers(0, key_domain, rows_per_relation)
        catalog.add_table(relation, columns)
    return catalog


def scaling_suite(sizes, shapes=("chain", "star", "random_tree"), seed=0,
                  **stats_kwargs):
    """Generate ``(shape, n, query, stats)`` cases for a scaling sweep.

    One case per (shape, size); the stats seed varies per case so
    sweeps do not accidentally reuse one selectivity draw.
    """
    cases = []
    for shape in shapes:
        build = LARGE_SHAPES[shape]
        for offset, n in enumerate(sizes):
            case_seed = seed + 1000 * len(cases) + offset
            if shape == "random_tree":
                query = build(n, seed=case_seed)
            else:
                query = build(n)
            stats = large_query_stats(query, seed=case_seed, **stats_kwargs)
            cases.append((shape, n, query, stats))
    return cases
