"""DBLP-like dataset with correlated predicate columns (Figure 4).

Figure 4 evaluates estimators of match probability and fanout on random
two-relation joins with random predicates over the CE benchmark's DBLP
dataset.  This module generates the offline stand-in: bibliographic
relations over shared entity domains whose *predicate columns are
correlated with the join keys* (e.g. a paper's area correlates with its
venue), which is exactly the structure that makes the independence
assumption fail and sampling shine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.table import Catalog

__all__ = ["EstimationDataset", "JoinTask", "build_estimation_dataset"]

#: number of categories in the coarse predicate column ("cat")
_NUM_CATEGORIES = 8
#: number of values in the fine predicate column ("year"); selecting on
#: it produces the low-match-probability queries of Figure 4's left bars
_NUM_YEARS = 40
#: probability that a predicate value ignores the key correlation
_NOISE = 0.3


@dataclass(frozen=True)
class JoinTask:
    """One Figure 4 measurement unit: a predicated two-relation join."""

    probe_relation: str
    build_relation: str
    probe_attr: str
    build_attr: str
    probe_predicate: dict
    build_predicate: dict


def _correlated_category(rng, keys, num_categories=_NUM_CATEGORIES,
                         noise=_NOISE):
    """A categorical column correlated with ``keys`` (plus noise)."""
    base = (keys * 2654435761 % 2**31) % num_categories
    flip = rng.random(len(keys)) < noise
    random_values = rng.integers(0, num_categories, len(keys))
    return np.where(flip, random_values, base).astype(np.int64)


class EstimationDataset:
    """Catalog plus join-compatibility metadata and a task sampler."""

    def __init__(self, catalog, join_columns):
        self.catalog = catalog
        #: (relation, column) -> domain name, for join compatibility
        self.join_columns = join_columns

    def _compatible_pairs(self):
        pairs = []
        items = list(self.join_columns.items())
        for i, ((rel_a, col_a), dom_a) in enumerate(items):
            for (rel_b, col_b), dom_b in items[i + 1:]:
                if rel_a != rel_b and dom_a == dom_b:
                    pairs.append((rel_a, col_a, rel_b, col_b))
        return pairs

    def random_tasks(self, num_tasks, seed=0, with_predicates=True):
        """Sample Figure 4's random join + random predicate workload."""
        rng = np.random.default_rng(seed)
        pairs = self._compatible_pairs()
        tasks = []
        for _ in range(num_tasks):
            rel_a, col_a, rel_b, col_b = pairs[int(rng.integers(len(pairs)))]
            if rng.random() < 0.5:
                rel_a, col_a, rel_b, col_b = rel_b, col_b, rel_a, col_a
            probe_pred, build_pred = {}, {}
            if with_predicates:
                probe_pred = {"cat": int(rng.integers(_NUM_CATEGORIES))}
                if rng.random() < 0.35:
                    # A fine-grained predicate: these are the queries
                    # that land in the m < 0.05 bucket.
                    build_pred = {"year": int(rng.integers(_NUM_YEARS))}
                else:
                    build_pred = {"cat": int(rng.integers(_NUM_CATEGORIES))}
            tasks.append(
                JoinTask(
                    probe_relation=rel_a,
                    build_relation=rel_b,
                    probe_attr=col_a,
                    build_attr=col_b,
                    probe_predicate=probe_pred,
                    build_predicate=build_pred,
                )
            )
        return tasks


def build_estimation_dataset(scale=1.0, seed=0):
    """Generate the DBLP-like estimation dataset."""
    rng = np.random.default_rng(seed)
    domains = {
        "author": max(50, int(2000 * scale)),
        "paper": max(80, int(3500 * scale)),
        "venue": max(10, int(120 * scale)),
    }
    # Schema rows: (name, rows, columns, domain_coverage).  Coverage < 1
    # means the relation's keys touch only that fraction of the domain,
    # so joins probing into it have genuinely low match probability —
    # the source of Figure 4's m < 0.05 bucket.
    schema = [
        ("writes", 9000, (("author", "author"), ("paper", "paper")), 1.0),
        ("cites", 12000, (("src", "paper"), ("dst", "paper")), 1.0),
        ("published_in", 3500, (("paper", "paper"), ("venue", "venue")), 1.0),
        ("coauthor", 8000, (("src", "author"), ("dst", "author")), 1.0),
        ("venue_series", 400, (("venue", "venue"), ("series", "venue")), 0.15),
        ("author_topics", 5000, (("author", "author"), ("paper", "paper")),
         0.08),
        ("awards", 900, (("author", "author"), ("paper", "paper")), 0.03),
    ]
    catalog = Catalog()
    join_columns = {}
    for name, rows, columns, coverage in schema:
        num_rows = max(20, int(rows * scale))
        data = {}
        first_key = None
        for column, domain in columns:
            size = domains[domain]
            covered = max(2, int(round(size * coverage)))
            subset = rng.choice(size, size=covered, replace=False)
            ranks = np.arange(1, covered + 1, dtype=np.float64) ** -1.2
            ranks /= ranks.sum()
            keys = subset[
                rng.choice(covered, size=num_rows, p=ranks)
            ].astype(np.int64)
            data[column] = keys
            join_columns[(name, column)] = domain
            if first_key is None:
                first_key = keys
        # Predicate columns, correlated with the first join key.
        data["cat"] = _correlated_category(rng, first_key)
        data["year"] = _correlated_category(
            rng, first_key * 7 + 3, num_categories=_NUM_YEARS
        )
        data["payload"] = np.arange(num_rows, dtype=np.int64)
        catalog.add_table(name, data)
    return EstimationDataset(catalog, join_columns)
