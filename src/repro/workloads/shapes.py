"""Query-shape builders for the synthetic benchmark (Section 5.2).

The paper evaluates four shapes spanning the practical spectrum:

* a 7-relation **star** query (driver + 6 dimensions),
* an 11-relation **path** query with the centre relation as driver
  (two arms of five relations each),
* a **3-2 snowflake** (driver with 3 children, each with 2 children),
* a **5-1 snowflake** (driver with 5 children, each with 1 child).

Conventions: the driver is ``R0``; a child's join column is ``k`` and
the parent-side column is ``k_<child>``; every relation carries a
``payload`` column.
"""

from __future__ import annotations

from ..core.query import JoinEdge, JoinQuery

__all__ = [
    "star",
    "path",
    "snowflake",
    "paper_star7",
    "paper_path11",
    "paper_snowflake_3_2",
    "paper_snowflake_5_1",
    "PAPER_SHAPES",
]


def _edge(parent, child):
    return JoinEdge(parent, child, f"k_{child}", "k")


def star(num_dimensions, driver="R0"):
    """Driver joined with ``num_dimensions`` independent dimensions."""
    if num_dimensions < 1:
        raise ValueError("a star query needs at least one dimension")
    edges = [_edge(driver, f"R{i}") for i in range(1, num_dimensions + 1)]
    return JoinQuery(driver, edges)


def path(num_relations, driver_position=None, driver="R0"):
    """A path of ``num_relations`` relations.

    ``driver_position`` selects which relation on the path drives the
    plan (0-based; default: the middle, as in the paper's 11-relation
    path query, giving two arms).
    """
    if num_relations < 2:
        raise ValueError("a path query needs at least two relations")
    if driver_position is None:
        driver_position = num_relations // 2
    if not 0 <= driver_position < num_relations:
        raise ValueError(
            f"driver_position {driver_position} out of range "
            f"[0, {num_relations})"
        )
    # Build the chain positionally, then re-root at the driver position.
    positional = [f"P{i}" for i in range(num_relations)]
    edges = [
        JoinEdge(positional[i], positional[i + 1], f"k_{positional[i+1]}", "k")
        for i in range(num_relations - 1)
    ]
    chain = JoinQuery(positional[0], edges)
    rooted = chain.rerooted(positional[driver_position])
    return _rename(rooted, driver)


def snowflake(num_children, num_grandchildren, driver="R0"):
    """Driver with ``num_children`` children, each with its own children.

    ``snowflake(3, 2)`` is the paper's 3-2 snowflake;
    ``snowflake(5, 1)`` is the 5-1 snowflake.
    """
    if num_children < 1:
        raise ValueError("a snowflake needs at least one child")
    if num_grandchildren < 0:
        raise ValueError("num_grandchildren must be non-negative")
    edges = []
    next_id = 1
    for _ in range(num_children):
        child = f"R{next_id}"
        next_id += 1
        edges.append(_edge(driver, child))
        for _ in range(num_grandchildren):
            grandchild = f"R{next_id}"
            next_id += 1
            edges.append(_edge(child, grandchild))
    return JoinQuery(driver, edges)


def _rename(query, driver):
    """Rename relations to R0 (driver), R1, ... in pre-order."""
    mapping = {}
    for i, relation in enumerate(query.preorder()):
        mapping[relation] = driver if i == 0 else f"R{i}"
    edges = [
        JoinEdge(
            mapping[e.parent], mapping[e.child],
            f"k_{mapping[e.child]}", "k",
        )
        for e in query.edges
    ]
    return JoinQuery(mapping[query.root], edges)


def paper_star7():
    """The 7-relation star query of Section 5.2."""
    return star(6)


def paper_path11():
    """The 11-relation path query (centre relation as driver)."""
    return path(11)


def paper_snowflake_3_2():
    """The 3-2 snowflake query."""
    return snowflake(3, 2)


def paper_snowflake_5_1():
    """The 5-1 snowflake query."""
    return snowflake(5, 1)


#: the four evaluation shapes, keyed as the paper labels them
PAPER_SHAPES = {
    "star": paper_star7,
    "path": paper_path11,
    "snowflake_3_2": paper_snowflake_3_2,
    "snowflake_5_1": paper_snowflake_5_1,
}
