"""LRU plan cache keyed on normalized query structure + data fingerprint.

The cache key has three parts:

* a **normalized query key** — a canonical, hashable rendering of the
  query's structure (relations, join predicates in a fixed orientation
  and order, selection constants), so two SQL texts that differ only in
  whitespace, predicate order or join-predicate direction share one
  entry;
* the **catalog fingerprint** (:meth:`repro.storage.Catalog.fingerprint`)
  of the data the plan was built against, so any data change misses —
  i.e. cache invalidation is automatic and content-based;
* the **planning options** (mode / *resolved* optimizer algorithm /
  driver / stats method and the planner's weights and eps), since they
  change the chosen plan.  The optimizer component is the algorithm
  that actually runs — ``"auto"`` is resolved by relation count before
  keying (:meth:`repro.planner.Planner.resolve_optimizer`), so an
  auto-planned query shares its entry with an explicit request for the
  same algorithm.
"""

from __future__ import annotations

from ..core.lru import LRUCache
from ..core.parser import ParsedQuery, Placeholder, parse_query
from ..core.query import JoinQuery
from ..core.stats import query_signature

__all__ = ["PlanCache", "normalized_query_key"]


def _literal_key(literal):
    """A canonical, type-discriminating rendering of a selection literal."""
    if isinstance(literal, Placeholder):
        return ("?", literal.index)
    return (type(literal).__name__, literal)


def normalized_query_key(query):
    """A canonical hashable key for a query's *structure*.

    Accepts SQL text, a :class:`~repro.core.parser.ParsedQuery` or a
    rooted :class:`~repro.core.query.JoinQuery`.  For parsed queries the
    key is independent of predicate order and join-predicate direction
    but keeps the first FROM relation: that is the implicit driver
    (:meth:`ParsedQuery.to_join_query` roots there), and under
    ``driver="fixed"`` two FROM orders genuinely plan different
    drivers.  For join queries the rooting is likewise part of the
    structure.
    """
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(query, ParsedQuery):
        joins = tuple(sorted(
            tuple(sorted([(alias_a, attr_a), (alias_b, attr_b)]))
            for alias_a, attr_a, alias_b, attr_b in query.join_predicates
        ))
        selections = tuple(sorted(
            (alias, column, _literal_key(literal))
            for alias, predicate in query.selections.items()
            for column, literal in predicate.items()
        ))
        return (
            "parsed",
            next(iter(query.relations), None),  # implicit driver
            tuple(sorted(query.relations.items())),
            joins,
            selections,
        )
    if isinstance(query, JoinQuery):
        return ("join", *query_signature(query))
    raise TypeError(
        f"query must be SQL text, ParsedQuery or JoinQuery; "
        f"got {type(query).__name__}"
    )


class PlanCache:
    """An LRU cache of :class:`~repro.planner.PhysicalPlan` objects."""

    def __init__(self, capacity=128):
        self._cache = LRUCache(capacity)

    @property
    def stats(self):
        """Hit/miss/eviction counters (:class:`repro.core.lru.CacheStats`)."""
        return self._cache.stats

    @property
    def capacity(self):
        return self._cache.capacity

    def __len__(self):
        return len(self._cache)

    @staticmethod
    def key(query, catalog_fingerprint, options=()):
        """Build the full cache key for a query against some data."""
        return (normalized_query_key(query), catalog_fingerprint,
                tuple(options))

    def get(self, key):
        """The cached plan for ``key``, or ``None`` (counts hit/miss)."""
        return self._cache.get(key)

    def peek(self, key):
        """Whether ``key`` is cached — no counters touched, no recency
        refresh.

        Admission layers use this to *route* (cache hit -> straight to
        execution, miss -> a planning worker) without double-counting
        the hit the eventual :meth:`get` will record.
        """
        return key in self._cache

    def put(self, key, plan):
        return self._cache.put(key, plan)

    def clear(self):
        """Drop all cached plans."""
        self._cache.clear()

    def __repr__(self):
        return f"PlanCache({self._cache!r})"
