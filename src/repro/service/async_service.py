"""Throughput-oriented asyncio front end over one :class:`QuerySession`.

A synchronous :class:`~repro.service.QuerySession` serves one query at
a time: planning holds the client's thread and the shard worker pool
idles between queries.  :class:`AsyncQueryService` multiplexes many
concurrent clients over a single session so the hardware stays busy:

* **cache-hit fast path** — queries whose plan is already cached skip
  planning entirely and go straight to an execution thread, where the
  engine's shard fan-out (and numpy's GIL-releasing kernels) overlap
  across in-flight queries;
* **process-pool planning** — cold, CPU-bound planning (the optimizer
  DP) is offloaded to a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose workers hold a content-addressed copy of the catalog (shipped
  once per worker, not per query).  Workers return a picklable
  :class:`~repro.planner.PlanSpec` — decisions only, no catalog — which
  is rehydrated locally and inserted into the session's plan cache, so
  the *executed* path is always the session's own and results are
  bit-identical to the synchronous path by construction;
* **signal-driven admission** — per-query ``shards_used`` and
  ``index_build_seconds`` / ``reduction_seconds`` from past
  :class:`~repro.service.QueryReport` s classify each cached plan as
  heavy or light.  Heavy queries (sharded fan-out, expensive index
  builds) are serialized through a small number of slots so they don't
  oversubscribe the shard worker pool; light queries flow freely up to
  the global concurrency limit.

Executions run on a dedicated thread pool, *not* the shard pool: an
execution blocks on per-shard futures, so running it on the pool those
futures need is a nested-fan-out deadlock waiting for saturation.
"""

from __future__ import annotations

import asyncio
import os
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..core.parser import ParsedQuery, parse_query
from ..core.query import JoinQuery
from ..core.stats import QueryStats
from .session import DEFAULT_BUDGET, QueryReport, QuerySession

__all__ = ["AsyncQueryService"]

#: queries below this relation count plan faster than a round trip to a
#: worker process costs — they are planned inline on a thread instead
DEFAULT_PROCESS_MIN_RELATIONS = 8

#: a cached plan whose observed per-execution index build + reduction
#: time exceeds this is treated as heavy for admission
DEFAULT_HEAVY_BUILD_SECONDS = 0.05


# ----------------------------------------------------------------------
# Planning-worker process plumbing
# ----------------------------------------------------------------------

#: the worker process's planner, built once by the pool initializer
_worker_planner = None


def _init_planning_worker(catalog, planner_config):
    """Process-pool initializer: build this worker's planner once.

    The catalog is pickled once per worker (content-addressed: its
    fingerprint survives the trip), not once per query — per-query
    traffic is just (query, planning options) out, a
    :class:`~repro.planner.PlanSpec` back.
    """
    global _worker_planner
    from ..planner import Planner

    _worker_planner = Planner(catalog, stats_cache=True, **planner_config)


def _plan_spec_in_worker(query, plan_kwargs):
    """Plan in the worker and return the picklable spec."""
    plan = _worker_planner.plan(query, **plan_kwargs)
    return plan.to_spec(_worker_planner.catalog.fingerprint())


# ----------------------------------------------------------------------
# Admission signals
# ----------------------------------------------------------------------


class _AdmissionSignals:
    """Per-plan-key heaviness classification from past reports.

    ``shards_used > 1`` or a sustained (EWMA) index-build + reduction
    time above the threshold marks a plan heavy.  Unknown keys are
    light — the first execution measures them.  Bounded LRU: cold
    traffic mints a fresh plan-cache key per distinct literal, so an
    unbounded map would leak one entry per query ever served.
    """

    __slots__ = ("_entries", "_lock", "threshold", "alpha", "max_entries")

    def __init__(self, threshold=DEFAULT_HEAVY_BUILD_SECONDS, alpha=0.3,
                 max_entries=4096):
        #: key -> (build-seconds EWMA, sharded?), LRU-ordered
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.threshold = threshold
        self.alpha = alpha
        self.max_entries = max_entries

    def is_heavy(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            self._entries.move_to_end(key)
            ewma, sharded = entry
            return sharded or ewma > self.threshold

    def observe(self, key, report):
        if report.result is None:
            return
        build = report.index_build_seconds + report.reduction_seconds
        with self._lock:
            previous = self._entries.get(key)
            if previous is not None:
                build = self.alpha * build + (1.0 - self.alpha) * previous[0]
            self._entries[key] = (build, report.shards_used > 1)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)


class AsyncQueryService:
    """Async multiplexer for one :class:`~repro.service.QuerySession`.

    Parameters
    ----------
    session:
        The session to serve.  Its plan cache, stats cache and planner
        are shared by every concurrent client — and by the synchronous
        path, so mixing ``session.execute`` and ``service.execute``
        stays consistent.
    max_concurrency:
        In-flight query limit **per serving event loop** (default:
        ``4 x`` the execution workers).  Excess clients queue on a
        semaphore.  The usual deployment is one loop per service; an
        unusual setup driving one service from several concurrent
        loops gets the limit per loop, not summed across them (asyncio
        semaphores are loop-bound).  Same for ``heavy_slots``.
    executor_workers:
        Threads executing queries (default: CPU count, capped at 16).
        Separate from the storage layer's shard pool by design — see
        the module docstring.
    planning_workers:
        Process-pool workers for cold planning.  ``0`` (default) plans
        inline on execution threads, which is right for single-core
        hosts and small queries; services planning large queries on
        multi-core hosts should set it to 1-4.
    process_min_relations:
        Only offload queries at least this large to the process pool
        (below it, IPC costs more than the DP).
    heavy_build_seconds:
        Admission threshold on the per-query EWMA of index build +
        reduction seconds.
    heavy_slots:
        Concurrent heavy-query executions (default: half the execution
        workers, at least 1).
    """

    def __init__(self, session, max_concurrency=None, executor_workers=None,
                 planning_workers=0,
                 process_min_relations=DEFAULT_PROCESS_MIN_RELATIONS,
                 heavy_build_seconds=DEFAULT_HEAVY_BUILD_SECONDS,
                 heavy_slots=None):
        if not isinstance(session, QuerySession):
            raise TypeError(
                f"expected a QuerySession, got {type(session).__name__}"
            )
        self.session = session
        cpus = os.cpu_count() or 1
        if executor_workers is None:
            executor_workers = min(cpus, 16)
        if executor_workers < 1:
            raise ValueError(
                f"executor_workers must be >= 1, got {executor_workers}"
            )
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-exec",
        )
        if max_concurrency is None:
            max_concurrency = 4 * executor_workers
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.max_concurrency = max_concurrency
        if heavy_slots is None:
            heavy_slots = max(1, executor_workers // 2)
        self.heavy_slots = heavy_slots
        self.process_min_relations = process_min_relations
        self.planning_workers = planning_workers
        self._planning_pool = None
        self._planning_pool_fingerprint = None
        self._pool_lock = threading.Lock()
        self._signals = _AdmissionSignals(threshold=heavy_build_seconds)
        #: loop id -> (weakref-to-loop, limits); asyncio primitives are
        #: loop-bound, so each serving loop gets its own set
        self._loop_limits = {}
        self._limits_lock = threading.Lock()
        self._closed = False
        self._stats_lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "cache_hit_fast_path": 0,
            "planned_in_process_pool": 0,
            "planned_inline": 0,
            "process_pool_fallbacks": 0,
            "heavy_admissions": 0,
            "replans": 0,
            "distributed_executions": 0,
            "worker_retries": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self):
        """Shut down execution threads, planning and execution workers."""
        self._closed = True
        self._executor.shutdown(wait=True)
        with self._pool_lock:
            if self._planning_pool is not None:
                self._planning_pool.shutdown(wait=True)
                self._planning_pool = None
        self.session.close()

    async def aclose(self):
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc_info):
        await self.aclose()

    def _bump(self, counter, amount=1):
        with self._stats_lock:
            self._counters[counter] += amount

    def stats(self):
        """Service-level admission counters (plain dict snapshot)."""
        with self._stats_lock:
            return dict(self._counters)

    def _limits(self):
        """The current loop's (global, heavy, single-flight) state.

        asyncio primitives bind to the loop they were created on, so
        each serving loop gets its own set — concurrent loops (e.g.
        one per thread over a shared service) coexist without evicting
        each other's live semaphores, which would silently double the
        admission limits.  Entries are keyed by loop id with a weakref
        guard (a dead loop's id can be reused by a new loop) and
        pruned once their loop is garbage collected.
        """
        loop = asyncio.get_running_loop()
        key = id(loop)
        with self._limits_lock:
            entry = self._loop_limits.get(key)
            if entry is not None:
                ref, limits = entry
                if ref() is loop:
                    return limits
            limits = (
                asyncio.Semaphore(self.max_concurrency),
                asyncio.Semaphore(self.heavy_slots),
                {},  # single-flight planning futures, by plan key
            )
            self._loop_limits = {
                existing: (ref, existing_limits)
                for existing, (ref, existing_limits)
                in self._loop_limits.items()
                if ref() is not None and existing != key
            }
            self._loop_limits[key] = (weakref.ref(loop), limits)
            return limits

    # ------------------------------------------------------------------
    # Planning-pool management
    # ------------------------------------------------------------------

    def _planning_pool_for(self, fingerprint):
        """The live planning pool, (re)spawned for the catalog content.

        Workers hold a pickled copy of the catalog; a content change
        (fingerprint mismatch) retires the pool and spawns a fresh one,
        mirroring how the plan cache invalidates.  Returns ``None``
        when process planning is disabled.
        """
        if self.planning_workers < 1:
            return None
        with self._pool_lock:
            if self._closed:
                return None
            if (
                self._planning_pool is not None
                and self._planning_pool_fingerprint != fingerprint
            ):
                self._planning_pool.shutdown(wait=False)
                self._planning_pool = None
            if self._planning_pool is None:
                from concurrent.futures import ProcessPoolExecutor

                planner = self.session.planner
                self._planning_pool = ProcessPoolExecutor(
                    max_workers=self.planning_workers,
                    initializer=_init_planning_worker,
                    initargs=(
                        self.session.catalog,
                        {
                            "weights": planner.weights,
                            "eps": planner.eps,
                            "idp_block_size": planner.idp_block_size,
                            "beam_width": planner.beam_width,
                            "planning_budget_ms":
                                planner.planning_budget_ms,
                            "partitioning": planner.partitioning,
                            "max_spanning_trees":
                                planner.max_spanning_trees,
                            "execution": planner.execution,
                            "cyclic_execution": planner.cyclic_execution,
                            # workers verify what they plan; the spec
                            # additionally re-verifies on rehydration
                            "validate": planner.validate,
                            # workers must plan under the session's
                            # robustness posture or their specs would
                            # land under the wrong cache key
                            "robustness": planner.robustness,
                            "regret_factor": planner.regret_factor,
                            # workers must stamp the session's placement
                            # knobs on their specs or the spec would
                            # fingerprint (and cache) as a local plan
                            "placement": planner.placement,
                            "num_workers": planner.num_workers,
                        },
                    ),
                )
                self._planning_pool_fingerprint = fingerprint
            return self._planning_pool

    def _offloadable(self, query, plan_kwargs):
        """Whether a cold plan is worth a worker-process round trip."""
        if self.planning_workers < 1:
            return False
        if isinstance(plan_kwargs.get("stats"), QueryStats):
            return False  # caller state: not content-addressable
        num_relations = (
            len(query.relations) if isinstance(query, ParsedQuery)
            else query.num_relations
        )
        return num_relations >= self.process_min_relations

    async def _plan_into_cache(self, query, key, plan_kwargs):
        """Ensure ``key`` is populated, planning wherever is cheapest.

        Process-pool path: the worker returns a spec, rehydration and
        cache insertion happen here.  Any pool failure (broken pool,
        pickling surprise, stale spec after a concurrent data change)
        falls back to inline planning on an execution thread — the
        session's ``plan()`` is the correctness backstop either way.
        """
        loop = asyncio.get_running_loop()
        pool = (
            self._planning_pool_for(self.session.catalog.fingerprint())
            if self._offloadable(query, plan_kwargs) else None
        )
        if pool is not None:
            try:
                spec = await loop.run_in_executor(
                    None,
                    lambda: pool.submit(
                        _plan_spec_in_worker, query, plan_kwargs
                    ).result(),
                )
                plan = self.session.planner.rehydrate(
                    spec, query,
                    partitioning=plan_kwargs.get("partitioning"),
                )
                self.session.plan_cache.put(key, plan)
                self._bump("planned_in_process_pool")
                return
            except (BrokenProcessPool, ValueError, TypeError,
                    AttributeError, EOFError, OSError):
                # includes stale-spec rejection and pickling failures
                self._bump("process_pool_fallbacks")
        try:
            await loop.run_in_executor(
                self._executor,
                lambda: self.session.plan(query, **plan_kwargs),
            )
        except Exception:  # noqa: BLE001
            # A genuine planning failure: leave the cache cold — the
            # execution path replans and records the error in the
            # QueryReport, exactly like the synchronous session.
            return
        self._bump("planned_inline")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    async def execute(self, query, flat_output=True, collect_output=False,
                      max_intermediate_tuples=DEFAULT_BUDGET, **plan_kwargs):
        """Plan (cache / worker / inline) and run one query.

        Returns the same :class:`~repro.service.QueryReport` the
        synchronous :meth:`QuerySession.execute` produces — failures
        and budget overruns are recorded, never raised.  Safe to call
        from many tasks concurrently.
        """
        if self._closed:
            raise RuntimeError("AsyncQueryService is closed")
        self._bump("submitted")
        loop = asyncio.get_running_loop()
        global_limit, heavy_limit, inflight = self._limits()
        async with global_limit:
            if isinstance(query, str):
                try:
                    query = parse_query(query)
                except Exception as exc:  # noqa: BLE001 - reported
                    # Parity with the synchronous path: a parse error is
                    # recorded in the report, never raised mid-batch.
                    self._bump("completed")
                    return QueryReport(
                        query=query, error=exc,
                        cache_stats=self.session.cache_stats(),
                    )
            key = None
            cacheable = (
                isinstance(query, (ParsedQuery, JoinQuery))
                and not isinstance(plan_kwargs.get("stats"), QueryStats)
                and plan_kwargs.get("use_cache", True)
            )
            if cacheable:
                key_kwargs = {
                    name: value for name, value in plan_kwargs.items()
                    if name != "use_cache"
                }
                # session.execute recomputes this key internally (it
                # stays self-contained for sync callers); the ~10 us of
                # duplicate key work is noise next to an execution, and
                # routing genuinely needs the key up front.
                key = self.session.cache_key(
                    query, flat_output=flat_output, **key_kwargs
                )
                if self.session.plan_cache.peek(key):
                    self._bump("cache_hit_fast_path")
                else:
                    # Single-flight per key: concurrent cold arrivals of
                    # one query await the first client's planning pass
                    # instead of stampeding the planning pool.
                    pending = inflight.get(key)
                    if pending is None:
                        pending = inflight[key] = loop.create_future()
                        try:
                            await self._plan_into_cache(
                                query, key,
                                dict(key_kwargs, flat_output=flat_output),
                            )
                        finally:
                            del inflight[key]
                            pending.set_result(None)
                    else:
                        await pending
            heavy = key is not None and self._signals.is_heavy(key)
            if heavy:
                self._bump("heavy_admissions")

            def run():
                return self.session.execute(
                    query,
                    flat_output=flat_output,
                    collect_output=collect_output,
                    max_intermediate_tuples=max_intermediate_tuples,
                    **plan_kwargs,
                )

            if heavy:
                async with heavy_limit:
                    report = await loop.run_in_executor(self._executor, run)
            else:
                report = await loop.run_in_executor(self._executor, run)
            if key is not None:
                self._signals.observe(key, report)
            replans = getattr(report, "replans", 0)
            if replans:
                self._bump("replans", replans)
            if getattr(report, "workers_used", 0):
                self._bump("distributed_executions")
            retries = getattr(report, "worker_retries", 0)
            if retries:
                self._bump("worker_retries", retries)
            self._bump("completed")
            return report

    async def execute_many(self, queries, budgets=None,
                           max_intermediate_tuples=DEFAULT_BUDGET,
                           flat_output=True, collect_output=False,
                           **plan_kwargs):
        """Run a batch concurrently; one report per query, input order.

        The async analogue of :meth:`QuerySession.execute_many`:
        per-query budgets, and per-query failure isolation — one
        query's parse error or budget overrun is recorded in *its*
        report while the rest of the batch proceeds.
        """
        queries = list(queries)
        if budgets is not None:
            budgets = list(budgets)
            if len(budgets) != len(queries):
                raise ValueError(
                    f"got {len(budgets)} budgets for {len(queries)} queries"
                )
        else:
            budgets = [max_intermediate_tuples] * len(queries)
        return list(await asyncio.gather(*(
            self.execute(
                query,
                flat_output=flat_output,
                collect_output=collect_output,
                max_intermediate_tuples=budget,
                **plan_kwargs,
            )
            for query, budget in zip(queries, budgets)
        )))

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return (
            f"AsyncQueryService({state}, "
            f"max_concurrency={self.max_concurrency}, "
            f"planning_workers={self.planning_workers}, "
            f"completed={self.stats()['completed']})"
        )
