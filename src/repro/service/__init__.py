"""Service layer: cached planning, prepared statements, batch execution.

The subsystem a long-lived process (a server, a benchmark harness)
would use instead of calling the planner directly:

* :class:`QuerySession` — plan cache + stats cache + batched execution;
* :class:`AsyncQueryService` — the asyncio front end multiplexing many
  concurrent clients over one session (cache-hit fast path,
  process-pool planning, signal-driven admission);
* :class:`PreparedStatement` — plan once, execute many with new
  selection constants (``?`` placeholders);
* :class:`PlanCache` / :func:`normalized_query_key` — the cache layer,
  reusable on its own.
"""

from .async_service import AsyncQueryService
from .plancache import PlanCache, normalized_query_key
from .session import PreparedStatement, QueryReport, QuerySession

__all__ = [
    "AsyncQueryService",
    "PlanCache",
    "PreparedStatement",
    "QueryReport",
    "QuerySession",
    "normalized_query_key",
]
