"""The query-service layer: cached planning, prepared statements, batches.

:class:`QuerySession` wraps a :class:`~repro.planner.Planner` the way a
server would: every ``plan()`` goes through an LRU **plan cache** keyed
on normalized query structure + catalog fingerprint (so replanning a
repeated query is a dictionary lookup, and any data change invalidates
automatically), statistics derivation is memoized in a
:class:`~repro.core.stats.StatsCache`, **prepared statements** plan a
parameterized query once and re-execute it with fresh constants, and
``execute_many()`` runs a batch under per-query budgets with timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..core.parser import ParsedQuery, Placeholder, parse_query
from ..core.stats import QueryStats, StatsCache
from ..engine import (
    BudgetExceededError,
    CardinalityMonitor,
    ReplanSignal,
    corrected_stats,
)
from ..planner import Planner, filtered_table
from ..storage.partition import PartitionedTable
from .plancache import PlanCache

__all__ = ["PreparedStatement", "QueryReport", "QuerySession"]

#: default per-query intermediate-tuple budget (matches PhysicalPlan)
DEFAULT_BUDGET = 50_000_000


@dataclass
class QueryReport:
    """Outcome of one service-level query execution.

    ``planning_seconds`` covers cache lookup + (on a miss) planning;
    ``execution_seconds`` the engine run.  ``timed_out`` is set when the
    per-query intermediate-tuple budget was exceeded, ``error`` for any
    other planning or execution failure — service-level executions
    never raise; always check :attr:`ok` (or :attr:`error`) before
    using :attr:`result`.
    """

    query: object
    plan: object = None
    result: object = None
    cache_hit: bool = False
    planning_seconds: float = 0.0
    execution_seconds: float = 0.0
    #: hash-shard fan-out the execution ran with (1 = unpartitioned)
    shards_used: int = 1
    #: wall time the engine spent building phase-2 hash indexes
    #: (per-phase breakdown of ``execution_seconds``; benchmark and
    #: service callers read this one consistent shape)
    index_build_seconds: float = 0.0
    #: wall time of the phase-1 semi-join reduction (SJ modes build
    #: their reduced indexes here, so read both phases for build cost)
    reduction_seconds: float = 0.0
    #: worker processes a distributed execution gathered results from
    #: (0 = the query ran in-process)
    workers_used: int = 0
    #: wall time routing driver rows and shipping fragments to workers
    #: (distributed executions only)
    scatter_seconds: float = 0.0
    #: wall time merging per-worker rows and counters (distributed
    #: executions only)
    gather_seconds: float = 0.0
    #: worker deaths recovered by sibling retry during this execution
    worker_retries: int = 0
    #: human-readable partial-failure events (one per recovered death)
    worker_events: tuple = ()
    #: snapshot of :meth:`QuerySession.cache_stats` taken when the
    #: report was produced (``None`` outside session executions)
    cache_stats: dict = None
    #: residual predicates of a cyclic plan, in application order
    #: (empty for acyclic queries)
    residual_predicates: tuple = ()
    #: *observed* joint selectivity of the residual-filter stage —
    #: ``output_size / residual_input_tuples`` (1.0 when the query had
    #: no residuals or nothing reached them)
    residual_selectivity: float = 1.0
    #: static-verifier findings attached to the served plan
    #: (:mod:`repro.analysis`; empty when ``validate="off"`` or the
    #: plan was a cache hit from an unvalidated entry)
    diagnostics: tuple = ()
    #: runtime-feedback replans performed during this execution
    #: (``robustness="auto"`` only; 0 otherwise)
    replans: int = 0
    #: largest observed-vs-estimated per-join cardinality q-error seen
    #: across this execution's (possibly replanned) runs — 0.0 when the
    #: run was unmonitored, 1.0 means every estimate was exact
    observed_q_error: float = 0.0
    timed_out: bool = False
    error: Exception = None

    @property
    def ok(self):
        return self.error is None and not self.timed_out

    @property
    def total_seconds(self):
        return self.planning_seconds + self.execution_seconds

    def __repr__(self):
        status = "ok" if self.ok else ("timeout" if self.timed_out else "error")
        return (
            f"QueryReport({status}, cache_hit={self.cache_hit}, "
            f"plan={self.planning_seconds * 1e3:.2f}ms, "
            f"exec={self.execution_seconds * 1e3:.2f}ms)"
        )


def _reported_run(query, plan_phase, session=None):
    """Shared plan/execute/report scaffolding for service executions.

    ``plan_phase()`` returns ``(plan, cache_hit, run)`` where ``run()``
    performs the engine execution; any planning failure, budget overrun
    or engine error is recorded in the returned :class:`QueryReport`
    instead of raising — a mid-batch failure must never abort the rest
    of an ``execute_many`` batch.  A budget overrun is reported as
    ``timed_out`` no matter which phase raised it (a prepared
    statement's rebind, for example, executes inside its plan phase).
    With ``session``, the report carries a :meth:`QuerySession.cache_stats`
    snapshot for observability.
    """
    t0 = time.perf_counter()
    try:
        plan, cache_hit, run = plan_phase()
    except BudgetExceededError:
        report = QueryReport(
            query=query, timed_out=True,
            planning_seconds=time.perf_counter() - t0,
        )
        if session is not None:
            report.cache_stats = session.cache_stats()
        return report
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        report = QueryReport(
            query=query, error=exc,
            planning_seconds=time.perf_counter() - t0,
        )
        if session is not None:
            report.cache_stats = session.cache_stats()
        return report
    t1 = time.perf_counter()
    report = QueryReport(
        query=query, plan=plan, cache_hit=cache_hit,
        planning_seconds=t1 - t0,
        diagnostics=tuple(getattr(plan, "diagnostics", ()) or ()),
    )
    try:
        report.result = run()
    except BudgetExceededError:
        report.timed_out = True
    except Exception as exc:  # noqa: BLE001
        report.error = exc
    report.execution_seconds = time.perf_counter() - t1
    if report.result is not None:
        report.shards_used = getattr(report.result, "shards_used", 1)
        report.index_build_seconds = getattr(
            report.result, "index_build_seconds", 0.0
        )
        report.reduction_seconds = getattr(
            report.result, "reduction_seconds", 0.0
        )
        report.workers_used = getattr(report.result, "workers_used", 0)
        report.scatter_seconds = getattr(
            report.result, "scatter_seconds", 0.0
        )
        report.gather_seconds = getattr(report.result, "gather_seconds", 0.0)
        report.worker_retries = getattr(report.result, "worker_retries", 0)
        report.worker_events = tuple(
            getattr(report.result, "worker_events", ())
        )
        report.residual_predicates = tuple(getattr(plan, "residuals", ()))
        report.replans = getattr(report.result, "replans", 0)
        report.observed_q_error = getattr(
            report.result, "observed_q_error", 0.0
        )
        if report.replans:
            # the served plan is the replanned one the execution ended
            # on, not the optimistic plan the phase produced
            report.plan = getattr(report.result, "served_plan", report.plan)
        counters = getattr(report.result, "counters", None)
        residual_input = getattr(counters, "residual_input_tuples", 0)
        if residual_input:
            report.residual_selectivity = (
                report.result.output_size / residual_input
            )
    if session is not None:
        report.cache_stats = session.cache_stats()
    return report


class QuerySession:
    """A reusable planning/execution session over one catalog.

    Parameters
    ----------
    catalog:
        The :class:`~repro.storage.Catalog` to serve queries against.
    weights, eps:
        Forwarded to the underlying :class:`~repro.planner.Planner`.
    plan_cache_size:
        LRU capacity of the plan cache (``None`` for unbounded).
    stats_cache_size:
        LRU capacity of the statistics cache.
    idp_block_size, beam_width:
        Scaling-optimizer knobs, forwarded to the
        :class:`~repro.planner.Planner` (and part of the plan-cache
        key).  ``"auto"`` derives them from the measured scaling
        profile; the resolved integers are what the cache keys carry.
    planning_budget_ms:
        Optional per-query planning budget, forwarded to the
        :class:`~repro.planner.Planner` (the anytime
        exhaustive -> IDP -> beam ladder) and part of the plan-cache
        key — a plan produced under a tight budget must not be served
        to an unbudgeted request.
    partitioning:
        Default storage layout (``"auto"`` / ``"off"`` / shard count),
        forwarded to the :class:`~repro.planner.Planner`; the
        *resolved* shard count is part of the plan-cache key, so
        retuning the layout misses instead of serving a plan pinned to
        a differently-sharded catalog.
    max_spanning_trees:
        Candidate-tree cap for cyclic queries' joint spanning-tree +
        join-order search, forwarded to the
        :class:`~repro.planner.Planner` and part of the plan-cache key
        (a plan found under a wider tree search must not be mistaken
        for a narrower one's).
    execution:
        Default kernel path (``"vectorized"`` / ``"interpreted"`` /
        ``"auto"``), forwarded to the :class:`~repro.planner.Planner`;
        the *resolved* path is part of the plan-cache key, so switching
        kernels misses instead of serving a plan pinned to the other
        path.
    cyclic_execution:
        Default cyclic strategy knob (``"auto"`` / ``"tree_filter"`` /
        ``"wcoj"``), forwarded to the :class:`~repro.planner.Planner`.
        Keyed *raw* in the plan cache: ``"auto"`` resolves per query by
        the cost model (data-dependent), so it cannot share entries
        with a forced strategy the way resolution-stable knobs do.
    validate:
        Static-verification level for cold plans (``"off"`` /
        ``"basic"`` / ``"full"``), forwarded to the
        :class:`~repro.planner.Planner`.  Deliberately *not* part of
        the plan-cache key: verification never changes which plan is
        produced, and verdicts are cached per plan fingerprint so the
        warm path pays nothing.  Findings surface on
        :attr:`QueryReport.diagnostics`.
    robustness:
        Pessimistic-planning posture (``"off"`` / ``"bounded"`` /
        ``"auto"``), forwarded to the :class:`~repro.planner.Planner`
        and keyed *raw* in the plan cache (like ``cyclic_execution``:
        the postures produce differently-annotated — and possibly
        different — plans, so they must never share an entry).
        ``"auto"`` additionally arms runtime cardinality feedback:
        executions run monitored and replan mid-flight when the
        observed-vs-estimated q-error crosses ``replan_threshold``.
    regret_factor:
        Worst-case regret cap for ``robustness != "off"`` (forwarded to
        the :class:`~repro.planner.Planner`, part of the plan-cache
        key): the served plan's guaranteed cardinality bound never
        exceeds this multiple of the best achievable bound.
    replan_threshold:
        Running q-error (>= 1.0) at which a monitored execution aborts
        and replans with corrected statistics.  Runtime behaviour only
        — never part of the plan-cache key.
    max_replans:
        Replan budget per execution; after this many trips the original
        signal's plan finishes unmonitored (no livelock).  Runtime
        behaviour only — never part of the plan-cache key.
    placement:
        Default execution placement (``"local"`` / ``"distributed"``),
        forwarded to the :class:`~repro.planner.Planner` and part of
        the plan-cache key.  ``"distributed"`` executions scatter the
        driver rows across a lazily-started
        :class:`~repro.distributed.WorkerPool` (one per catalog
        fingerprint and worker count; see :meth:`close`) and gather
        bit-identical rows and counters back.
    num_workers:
        Worker-process count for distributed placement (``0`` = auto),
        forwarded to the :class:`~repro.planner.Planner`; the
        *resolved* count is part of the plan-cache key.
    """

    def __init__(self, catalog, weights=None, eps=0.01, plan_cache_size=128,
                 stats_cache_size=256, idp_block_size=8, beam_width=8,
                 planning_budget_ms=None, partitioning="off",
                 max_spanning_trees=16, execution="auto",
                 cyclic_execution="auto", validate="off",
                 robustness="off", regret_factor=4.0,
                 replan_threshold=8.0, max_replans=2,
                 placement="local", num_workers=0):
        self.catalog = catalog
        self.planner = Planner(
            catalog, weights=weights, eps=eps,
            stats_cache=StatsCache(stats_cache_size),
            idp_block_size=idp_block_size, beam_width=beam_width,
            planning_budget_ms=planning_budget_ms,
            partitioning=partitioning,
            max_spanning_trees=max_spanning_trees,
            execution=execution, cyclic_execution=cyclic_execution,
            validate=validate, robustness=robustness,
            regret_factor=regret_factor,
            placement=placement, num_workers=num_workers,
        )
        if isinstance(replan_threshold, bool) or not isinstance(
            replan_threshold, (int, float)
        ) or replan_threshold < 1.0:
            raise ValueError(
                "replan_threshold is a q-error (a number >= 1.0), got "
                f"{replan_threshold!r}"
            )
        if isinstance(max_replans, bool) or not isinstance(
            max_replans, int
        ) or max_replans < 0:
            raise ValueError(
                f"max_replans must be an integer >= 0, got {max_replans!r}"
            )
        self.replan_threshold = float(replan_threshold)
        self.max_replans = max_replans
        self.plan_cache = PlanCache(plan_cache_size)
        self._last_fingerprint = None
        # distributed execution: one lazily-started worker pool, keyed
        # by (catalog fingerprint, worker count); `_worker_pool_factory`
        # is the fault-injection seam (tests install a killing wrapper)
        self._worker_pool = None
        self._worker_pool_key = None
        self._worker_pool_factory = None

    # ------------------------------------------------------------------
    # Cached planning
    # ------------------------------------------------------------------

    def _plan_options(self, mode, resolved_optimizer, driver, stats,
                      flat_output, resolved_shards, partition_floor,
                      budget_ms, tree_search, resolved_execution,
                      cyclic_execution, robustness, resolved_placement,
                      resolved_workers):
        # Keyed on the *resolved* algorithm and shard count (never the
        # raw "auto"), so an auto-planned query and an explicit request
        # for the same resolution share one cache entry.  The scaling
        # knobs are part of the key: retuning block size / beam width
        # changes the plan the algorithm produces, so it must miss, not
        # serve stale; likewise the shard count pins the plan to the
        # partitioned catalog it was built against, and the planning
        # budget pins it to the anytime ladder that produced it.
        return (
            str(mode),
            resolved_optimizer,
            driver,
            str(stats),
            bool(flat_output),
            self.planner.eps,
            self.planner.weights,  # frozen dataclass: hashable as-is
            self.planner.idp_block_size,
            self.planner.beam_width,
            resolved_shards,
            # "auto" applies a post-selection size floor explicit
            # counts don't, so equal resolutions may shard differently
            partition_floor,
            budget_ms,
            # cyclic queries: the tree-search strategy and candidate cap
            # determine which spanning tree the plan resolved to
            tree_search,
            self.planner.max_spanning_trees,
            # resolved kernel path (never the raw "auto"): a plan pinned
            # to one path must not serve a request for the other
            resolved_execution,
            # cyclic strategy knob, keyed RAW: "auto" resolves per query
            # by data-dependent cost, so "auto" and a forced strategy
            # must never share an entry even when they resolve alike
            cyclic_execution,
            # robustness posture, keyed RAW: "off" plans carry no bound
            # annotations, "bounded"/"auto" may carry a *different order*
            # (the regret gate is data-dependent), so postures must
            # never share an entry; the regret_factor rides along
            # because it decides whether the gate swaps the order
            robustness,
            self.planner.regret_factor,
            # placement + resolved worker count: plans are stamped with
            # both (they reach workers through PlanSpec), so a "local"
            # plan must never serve a "distributed" request or
            # vice versa, and retuning num_workers re-stamps
            resolved_placement,
            resolved_workers,
        )

    @staticmethod
    def _num_relations(query):
        """Relation count of any accepted query form (for ``"auto"``)."""
        if isinstance(query, ParsedQuery):
            return len(query.relations)
        return query.num_relations

    def cache_key(self, query, mode="auto", optimizer="exhaustive",
                  driver="fixed", stats="exact", flat_output=True,
                  partitioning=None, planning_budget_ms=None,
                  tree_search="joint", execution=None,
                  cyclic_execution=None, validate=None, robustness=None,
                  placement=None, num_workers=None):
        """The plan-cache key :meth:`plan` would use for this request.

        ``validate`` is accepted (so callers can forward uniform plan
        kwargs) but never keyed: verification cannot change which plan
        is produced.

        Also maintains the fingerprint guard (a catalog content change
        clears entries pinned to superseded data).  Exposed for front
        ends that manage cache population themselves — the async
        service peeks with it to route cache hits straight to
        execution and inserts worker-planned specs under it.  ``query``
        must already be parsed (a :class:`ParsedQuery` or
        :class:`~repro.core.query.JoinQuery`).
        """
        fingerprint = self.catalog.fingerprint()
        if self._last_fingerprint != fingerprint:
            # Entries for superseded data are unreachable by key
            # (plans pin their whole derived catalog, so letting
            # them linger until LRU churn wastes real memory).
            if self._last_fingerprint is not None:
                self.plan_cache.clear()
            self._last_fingerprint = fingerprint
        if planning_budget_ms is None:
            planning_budget_ms = self.planner.planning_budget_ms
        resolved = Planner.resolve_optimizer(
            optimizer, self._num_relations(query), planning_budget_ms
        )
        resolved_shards = self.planner.resolve_partitioning(
            partitioning, query
        )
        partition_floor = self.planner.resolve_partition_floor(
            partitioning
        )
        resolved_execution = self.planner.resolve_execution(execution)
        if cyclic_execution is None:
            cyclic_execution = self.planner.cyclic_execution
        if robustness is None:
            robustness = self.planner.robustness
        resolved_placement = self.planner.resolve_placement(placement)
        resolved_workers = self.planner.resolve_num_workers(
            num_workers, resolved_placement
        )
        return self.plan_cache.key(
            query,
            fingerprint,
            self._plan_options(mode, resolved, driver, stats,
                               flat_output, resolved_shards,
                               partition_floor, planning_budget_ms,
                               tree_search, resolved_execution,
                               cyclic_execution, robustness,
                               resolved_placement, resolved_workers),
        )

    def plan(self, query, mode="auto", optimizer="exhaustive", driver="fixed",
             stats="exact", flat_output=True, use_cache=True,
             partitioning=None, planning_budget_ms=None,
             tree_search="joint", execution=None, cyclic_execution=None,
             validate=None, robustness=None, placement=None,
             num_workers=None):
        """A :class:`~repro.planner.PhysicalPlan`, via the plan cache.

        Accepts the same arguments as :meth:`Planner.plan` (including
        ``optimizer="auto"``, which picks exhaustive / IDP / beam by
        relation count, and ``partitioning``, which defaults to the
        session's configured layout).  Plans are cached per (normalized
        query structure, catalog fingerprint, planning options
        **including the resolved algorithm, the scaling knobs, the
        resolved shard count and the planning budget**) — so ``"auto"``
        shares entries with an explicit request for the resolution it
        maps to, while retuning ``idp_block_size`` / ``beam_width`` /
        ``partitioning`` misses instead of serving a stale plan;
        prebuilt :class:`QueryStats` bypass the cache (they are caller
        state the key cannot see).
        """
        return self._plan_with_hit(
            query, mode=mode, optimizer=optimizer, driver=driver,
            stats=stats, flat_output=flat_output, use_cache=use_cache,
            partitioning=partitioning,
            planning_budget_ms=planning_budget_ms,
            tree_search=tree_search, execution=execution,
            cyclic_execution=cyclic_execution, validate=validate,
            robustness=robustness, placement=placement,
            num_workers=num_workers,
        )[0]

    def _plan_with_hit(self, query, mode="auto", optimizer="exhaustive",
                       driver="fixed", stats="exact", flat_output=True,
                       use_cache=True, partitioning=None,
                       planning_budget_ms=None, tree_search="joint",
                       execution=None, cyclic_execution=None,
                       validate=None, robustness=None, placement=None,
                       num_workers=None):
        """``(plan, cache_hit)`` — :meth:`plan` plus a race-free hit flag.

        The flag comes from *this call's own* cache lookup, never from
        a before/after delta on the shared counters (concurrent
        sessions — the async service's thread pool — would otherwise
        attribute another query's hit to a cold plan).
        """
        if isinstance(query, str):
            # parse once: the cache key and the planner share the result
            query = parse_query(query)
        if use_cache and not isinstance(stats, QueryStats):
            key = self.cache_key(
                query, mode=mode, optimizer=optimizer, driver=driver,
                stats=stats, flat_output=flat_output,
                partitioning=partitioning,
                planning_budget_ms=planning_budget_ms,
                tree_search=tree_search, execution=execution,
                cyclic_execution=cyclic_execution, robustness=robustness,
                placement=placement, num_workers=num_workers,
            )
            plan = self.plan_cache.get(key)
            if plan is not None:
                return plan, True
            plan = self.planner.plan(
                query, mode=mode, optimizer=optimizer, driver=driver,
                stats=stats, flat_output=flat_output,
                partitioning=partitioning,
                planning_budget_ms=planning_budget_ms,
                tree_search=tree_search, execution=execution,
                cyclic_execution=cyclic_execution, validate=validate,
                robustness=robustness, placement=placement,
                num_workers=num_workers,
            )
            self.plan_cache.put(key, plan)
            return plan, False
        return self.planner.plan(
            query, mode=mode, optimizer=optimizer, driver=driver,
            stats=stats, flat_output=flat_output, partitioning=partitioning,
            planning_budget_ms=planning_budget_ms, tree_search=tree_search,
            execution=execution, cyclic_execution=cyclic_execution,
            validate=validate, robustness=robustness, placement=placement,
            num_workers=num_workers,
        ), False

    def explain(self, query, **plan_kwargs):
        """The ``explain()`` text of the (possibly cached) plan."""
        return self.plan(query, **plan_kwargs).explain()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, query, flat_output=True, collect_output=False,
                max_intermediate_tuples=DEFAULT_BUDGET, **plan_kwargs):
        """Plan (through the cache) and run one query; returns a report.

        Plans carrying ``robustness="auto"`` run under runtime
        cardinality feedback: see :meth:`_run_with_feedback`.
        """

        def plan_phase():
            plan, cache_hit = self._plan_with_hit(
                query, flat_output=flat_output, **plan_kwargs
            )

            def run():
                return self._run_with_feedback(
                    plan, query, flat_output, collect_output,
                    max_intermediate_tuples, plan_kwargs,
                )

            return plan, cache_hit, run

        return _reported_run(query, plan_phase, session=self)

    def _run_with_feedback(self, plan, query, flat_output, collect_output,
                           max_intermediate_tuples, plan_kwargs):
        """Execute a plan, replanning on runtime cardinality feedback.

        Acyclic plans carrying ``robustness="auto"`` run monitored: the
        pipelines report each join step's (probes, matches) to a
        :class:`~repro.engine.CardinalityMonitor`, and when the running
        observed-vs-estimated q-error crosses ``replan_threshold`` the
        execution aborts with a :class:`~repro.engine.ReplanSignal`.
        The loop then folds the observations into corrected statistics
        (:func:`~repro.engine.corrected_stats`), asks the planner for a
        fresh order under them (:meth:`Planner.replan`) and re-executes
        — at most ``max_replans`` times; the attempt after the last
        trip runs unmonitored, so pathological data degrades to
        finishing a plan rather than looping.  When a replanned
        execution succeeds, the corrected plan replaces the optimistic
        one in the plan cache (same key), so future warm traffic serves
        the corrected order directly.

        Everything else (``robustness`` off/bounded, cyclic plans,
        empty orders) takes the plain single-execution path untouched.
        Semijoin-mode executions run unmonitored too: they probe
        *reduced* indexes, so the observed per-join selectivity is a
        post-reduction fanout the ``m * fo`` edge estimate is not
        comparable against — a monitor there would manufacture
        q-errors out of the reduction itself.

        Distributed plans route first, always unmonitored: the
        cardinality monitor lives in the driver process and cannot
        observe fragments executing in workers.
        """
        if getattr(plan, "placement", "local") == "distributed":
            return self._execute_plan(
                plan, query, flat_output, collect_output,
                max_intermediate_tuples, plan_kwargs,
            )
        if (getattr(plan, "robustness", "off") != "auto"
                or plan.is_cyclic or not plan.order):
            return plan.execute(
                flat_output=flat_output, collect_output=collect_output,
                max_intermediate_tuples=max_intermediate_tuples,
            )
        current = plan
        replans = 0
        observed_q = 1.0
        budget = self.max_replans
        while True:
            monitor = None
            if replans < budget and not current.mode.uses_semijoin:
                monitor = CardinalityMonitor(
                    {
                        relation: current.stats.selectivity(relation)
                        for relation in current.order
                    },
                    threshold=self.replan_threshold,
                )
            try:
                result = current.execute(
                    flat_output=flat_output, collect_output=collect_output,
                    max_intermediate_tuples=max_intermediate_tuples,
                    monitor=monitor,
                )
            except ReplanSignal as signal:
                replans += 1
                observed_q = max(observed_q, signal.q_error)
                try:
                    current = self.planner.replan(
                        current,
                        corrected_stats(current.stats, signal.observed),
                        mode=plan_kwargs.get("mode", "auto"),
                        optimizer=plan_kwargs.get("optimizer", "exhaustive"),
                        flat_output=flat_output,
                    )
                except Exception:
                    # replanning itself failed (e.g. a budget deadline):
                    # finish the plan we have, unmonitored, rather than
                    # dropping the query
                    budget = replans
                continue
            if monitor is not None:
                observed_q = max(observed_q, monitor.max_q_error)
            result.replans = replans
            result.observed_q_error = observed_q
            if replans and current is not plan:
                result.served_plan = current
                key = self._feedback_cache_key(query, flat_output,
                                               plan_kwargs)
                if key is not None:
                    # future warm traffic serves the corrected plan
                    self.plan_cache.put(key, current)
            return result

    def _execute_plan(self, plan, query, flat_output, collect_output,
                      max_intermediate_tuples, plan_kwargs):
        """Run one plan in-process or through the worker pool.

        Distributed routing needs a driver-decomposable execution:
        flat output (factorized results cannot be concatenated across
        workers) and a non-wcoj cyclic strategy (the wcoj frontier is
        not a per-driver-row computation).  Requests outside that
        envelope fall back to the in-process path, which is always
        correct — the plan itself executes identically either way.
        """
        if (getattr(plan, "placement", "local") == "distributed"
                and getattr(plan, "num_workers", 0) >= 1
                and flat_output
                and getattr(plan, "cyclic_strategy", None) != "wcoj"):
            pool = self._worker_pool_for(plan)
            if isinstance(query, str):
                query = parse_query(query)
            # pin to the *base* catalog: workers hold (and rehydrate
            # against) the session catalog, not the plan's derived one
            spec = plan.to_spec(self.catalog.fingerprint())
            return pool.run(
                plan, spec, query,
                partitioning=plan_kwargs.get("partitioning"),
                collect_output=collect_output,
                max_intermediate_tuples=max_intermediate_tuples,
            )
        return plan.execute(
            flat_output=flat_output, collect_output=collect_output,
            max_intermediate_tuples=max_intermediate_tuples,
        )

    def _worker_pool_for(self, plan):
        """The (lazily started) worker pool for a distributed plan.

        One pool lives at a time, keyed by (catalog fingerprint,
        worker count); a key change closes the old pool and starts a
        fresh one — workers hold a pickled catalog replica, so a
        superseded catalog must not serve new queries.
        """
        from ..distributed.workerpool import WorkerPool

        key = (self.catalog.fingerprint(), plan.num_workers)
        if self._worker_pool is not None and self._worker_pool_key != key:
            self._worker_pool.close()
            self._worker_pool = None
        if self._worker_pool is None:
            planner = self.planner
            factory = self._worker_pool_factory or WorkerPool
            self._worker_pool = factory(
                self.catalog,
                planner_config={
                    "weights": planner.weights,
                    "eps": planner.eps,
                    "idp_block_size": planner.idp_block_size,
                    "beam_width": planner.beam_width,
                    "planning_budget_ms": planner.planning_budget_ms,
                    "partitioning": planner.partitioning,
                    "max_spanning_trees": planner.max_spanning_trees,
                    "execution": planner.execution,
                    "cyclic_execution": planner.cyclic_execution,
                    "validate": planner.validate,
                    "robustness": planner.robustness,
                    "regret_factor": planner.regret_factor,
                },
                num_workers=plan.num_workers,
            )
            self._worker_pool_key = key
        return self._worker_pool

    def close(self):
        """Release the distributed worker pool, if one was started.

        Idempotent, and the session stays usable — a later distributed
        execution lazily starts a fresh pool.
        """
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
            self._worker_pool_key = None

    def _feedback_cache_key(self, query, flat_output, plan_kwargs):
        """The cache key a replanned plan should replace, or ``None``.

        Mirrors :meth:`_plan_with_hit`'s caching conditions: requests
        with ``use_cache=False`` or prebuilt :class:`QueryStats` never
        touched the cache, so their corrected plans must not either.
        """
        kwargs = dict(plan_kwargs)
        use_cache = kwargs.pop("use_cache", True)
        kwargs.pop("validate", None)
        if not use_cache or isinstance(kwargs.get("stats"), QueryStats):
            return None
        if isinstance(query, str):
            query = parse_query(query)
        return self.cache_key(query, flat_output=flat_output, **kwargs)

    def execute_many(self, queries, budgets=None,
                     max_intermediate_tuples=DEFAULT_BUDGET,
                     flat_output=True, collect_output=False, **plan_kwargs):
        """Run a batch of queries; one :class:`QueryReport` each.

        ``budgets`` optionally gives a per-query intermediate-tuple
        budget (a sequence aligned with ``queries``); otherwise
        ``max_intermediate_tuples`` applies to every query.  Failures
        and budget overruns are recorded in the reports — the batch
        always completes.  Each report carries the per-phase timing
        shape benchmarks and service callers share: planning /
        execution wall time plus :attr:`QueryReport.shards_used` and
        :attr:`QueryReport.index_build_seconds` from the engine run.
        """
        queries = list(queries)
        if budgets is not None:
            budgets = list(budgets)
            if len(budgets) != len(queries):
                raise ValueError(
                    f"got {len(budgets)} budgets for {len(queries)} queries"
                )
        else:
            budgets = [max_intermediate_tuples] * len(queries)
        return [
            self.execute(
                query,
                flat_output=flat_output,
                collect_output=collect_output,
                max_intermediate_tuples=budget,
                **plan_kwargs,
            )
            for query, budget in zip(queries, budgets)
        ]

    # ------------------------------------------------------------------
    # Prepared statements
    # ------------------------------------------------------------------

    def prepare(self, query, **plan_kwargs):
        """A :class:`PreparedStatement` for a ``?``-parameterized query."""
        if isinstance(query, str):
            query = parse_query(query)
        if not isinstance(query, ParsedQuery):
            raise TypeError(
                f"prepare() takes SQL text or a ParsedQuery; "
                f"got {type(query).__name__}"
            )
        return PreparedStatement(self, query, plan_kwargs)

    def cache_info(self):
        """Plan- and stats-cache counters, for monitoring.

        Returns the live :class:`~repro.core.lru.CacheStats` objects
        (they keep counting); :meth:`cache_stats` returns a plain-dict
        point-in-time snapshot instead.
        """
        return {
            "plan_cache": self.plan_cache.stats,
            "stats_cache": self.planner.stats_cache.stats,
        }

    def cache_stats(self):
        """A point-in-time snapshot of plan- and stats-cache counters.

        Plain nested dicts (hits / misses / evictions / invalidations /
        size / hit_rate per cache), safe to store in a
        :class:`QueryReport`, serialize into benchmark output, or diff
        across calls — unlike :meth:`cache_info`, nothing in the
        snapshot keeps counting.
        """

        def snapshot(stats, size):
            return {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
                "size": size,
                "hit_rate": round(stats.hit_rate, 4),
            }

        return {
            "plan_cache": snapshot(self.plan_cache.stats,
                                   len(self.plan_cache)),
            "stats_cache": snapshot(self.planner.stats_cache.stats,
                                    len(self.planner.stats_cache)),
        }

    def __repr__(self):
        return (
            f"QuerySession(tables={len(self.catalog.table_names)}, "
            f"plans={len(self.plan_cache)})"
        )


@dataclass
class PreparedStatement:
    """Plan once, execute many times with fresh selection constants.

    The join *structure* (driver, join order, execution mode, semi-join
    child orders) is optimized on the first execution and reused for
    every subsequent binding — only the selection push-down and the
    engine run are repeated.  The structural plan is tied to the
    catalog fingerprint observed when it was built; if the data
    changes, the next execution transparently replans.

    Note the reused order is the one optimal for the *first* binding's
    statistics; a binding with wildly different selectivities executes
    correctly but may run a suboptimal order — call :meth:`invalidate`
    to force a replan.
    """

    session: QuerySession
    parsed: ParsedQuery
    plan_kwargs: dict = field(default_factory=dict)
    _template: object = None
    _template_fingerprint: str = None
    _template_flat_output: bool = None
    executions: int = 0

    @property
    def num_params(self):
        return self.parsed.num_placeholders

    @property
    def _dynamic_aliases(self):
        """Aliases whose selection carries a ``?`` (re-filtered per bind)."""
        return [
            alias
            for alias, predicate in self.parsed.selections.items()
            if any(isinstance(v, Placeholder) for v in predicate.values())
        ]

    def _rebind_catalog(self, bound):
        """Derived catalog for a new binding, re-filtering only the
        placeholder-bearing relations.

        Unchanged relations (and their already-built hash indexes) are
        shared from the template's catalog, so re-execution cost is
        proportional to the parameterized tables only.  A re-filtered
        relation the template holds hash-partitioned is re-clustered
        into the same layout, so every binding — not just the first —
        keeps the sharded fan-out.
        """
        replacements = {}
        for alias in self._dynamic_aliases:
            table = filtered_table(
                self.session.catalog.table(self.parsed.relations[alias]),
                alias,
                bound.selections.get(alias, {}),
            )
            current = self._template.catalog.table(alias)
            if isinstance(current, PartitionedTable) and \
                    PartitionedTable.can_shard(table.column(current.shard_key)):
                # same shardability gate as partition_replacements: a
                # binding admitting e.g. keys >= 2**53 falls back to
                # the merged index instead of failing
                table = PartitionedTable.from_table(
                    table, current.shard_key, current.num_shards
                )
            replacements[alias] = table
        return self._template.catalog.derived_with(replacements)

    def invalidate(self):
        """Drop the structural plan; the next execution replans."""
        self._template = None
        self._template_fingerprint = None
        self._template_flat_output = None

    def _structural_plan(self, bound, flat_output):
        """(template plan, fresh?, served from any cache?) for the shape.

        The template is keyed to the catalog fingerprint *and* the
        requested output shape: ``flat_output`` feeds the cost model's
        mode choice, so executing a template planned for the other
        shape would lock in a systematically suboptimal strategy.

        Even a "fresh" template may be served from the session's plan
        cache (e.g. a second statement prepared over the same SQL);
        that still counts as a cache hit for reporting.
        """
        fingerprint = self.session.catalog.fingerprint()
        if (
            self._template is None
            or self._template_fingerprint != fingerprint
            or self._template_flat_output != flat_output
        ):
            kwargs = dict(self.plan_kwargs)
            kwargs["flat_output"] = flat_output
            self._template, cache_hit = self.session._plan_with_hit(
                bound, **kwargs
            )
            self._template_fingerprint = fingerprint
            self._template_flat_output = flat_output
            return self._template, True, cache_hit
        return self._template, False, True

    def execute(self, *params, flat_output=None, collect_output=False,
                max_intermediate_tuples=DEFAULT_BUDGET):
        """Bind ``params`` to the placeholders and run; returns a report.

        ``flat_output`` defaults to the shape requested at
        :meth:`QuerySession.prepare` time (via its ``plan_kwargs``),
        falling back to flat; passing it here overrides per execution.
        """
        if flat_output is None:
            flat_output = self.plan_kwargs.get("flat_output", True)
        bound = self.parsed.bind(*params)

        def plan_phase():
            template, fresh, cache_hit = self._structural_plan(
                bound, flat_output
            )
            if fresh:
                # The template was planned against exactly this binding;
                # its derived catalog already has the selections pushed
                # down.
                catalog = template.catalog
            else:
                catalog = self._rebind_catalog(bound)

            def run():
                # Same plan, re-bound catalog: the session helper keeps
                # the engine / worker-pool invocation in one place.
                return self.session._execute_plan(
                    replace(template, catalog=catalog), bound,
                    flat_output, collect_output, max_intermediate_tuples,
                    self.plan_kwargs,
                )

            return template, cache_hit, run

        report = _reported_run(bound, plan_phase, session=self.session)
        self.executions += 1
        return report

    def __repr__(self):
        return (
            f"PreparedStatement(params={self.num_params}, "
            f"planned={self._template is not None}, "
            f"executions={self.executions})"
        )
