"""Persistent execution workers: scatter/gather distributed queries.

A :class:`WorkerPool` owns ``num_workers`` single-process executors.
Each worker process is initialized exactly once per catalog fingerprint
with the content-addressed pickled catalog (the same shipping layer the
async service's planning pool uses) and builds its hash indexes
worker-locally on first use; after that, queries ship only a picklable
:class:`~repro.planner.PlanSpec`, the (parsed) query, and a driver-row
subset.

The scatter model partitions the *driver row set*, not the plan: every
worker holds a full catalog replica, routes its driver subset through
the identical plan, and the per-worker runs compose exactly because an
inner-join pipeline decomposes over any disjoint cover of the driver
rows.  Routing follows :class:`~repro.distributed.placement.ShardPlacement`:
when the query's first root-attached join child is hash-partitioned on
the join key, driver rows route to that child's shards via the same
splitmix64 probe hash the sharded indexes use — so each worker mostly
probes its own shards — and shards map to workers by rendezvous
hashing.  Otherwise driver rows are cut into contiguous stripes, one
per worker.

The gather reconstructs the single-process result bit-identically:

* rows: per-worker flat outputs are concatenated and stable-sorted by
  the root (driver) column.  Each worker's output is ascending in
  driver id, a driver id's whole output group lives in exactly one
  worker, and within-group order depends only on that driver row — so
  the merged order equals the local pipeline's.
* counters: probe/tuple counters are per-driver-row work and sum;
  ``semijoin_probes`` is driver-independent (every worker computes the
  identical global reduction) and is taken once;
  ``peak_intermediate_tuples`` is rebuilt as the max over the summed
  per-stage totals of ``intermediate_tuples_by_stage`` (each labeled
  stage runs once per execution, so per-stage sizes are additive).

Partial failure: a worker death surfaces as ``BrokenProcessPool`` on
its fragment future; the pool retires the executor (a fresh one is
lazily respawned for the next query), reassigns only the victim's
shards via :meth:`ShardPlacement.without` (rendezvous keeps every other
shard in place, so survivors' warm caches stay useful), and resubmits
to the siblings — up to ``max_retries`` deaths per query, after which a
:class:`DistributedExecutionError` is raised rather than hanging.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from ..engine.executor import (
    BudgetExceededError,
    ExecutionCounters,
    ExecutionResult,
)
from ..storage.partition import _probe_shard_ids
from .placement import ShardPlacement

__all__ = [
    "DistributedExecutionError",
    "WorkerPool",
]


class DistributedExecutionError(RuntimeError):
    """A distributed execution could not complete.

    Raised when worker deaths exceed the retry budget (or no worker
    survives), or when a worker reports a non-retryable failure.  Always
    raised promptly on the driver — a dead worker is detected through
    its broken executor, never awaited indefinitely.
    """


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

_worker_planner = None
_worker_plans: dict = {}

#: rehydrated plans cached per plan fingerprint inside each worker —
#: small, since the driver's plan cache already bounds live plans
_WORKER_PLAN_CACHE = 8


def _init_exec_worker(catalog, planner_config):
    """Process-pool initializer: one planner per worker, created once.

    Mirrors the async service's ``_init_planning_worker``: the catalog
    crosses the process boundary exactly once (content-addressed by the
    fingerprint inside every shipped ``PlanSpec``), and everything
    derived from it — partitioned layouts, hash indexes, stats — is
    built worker-locally and reused across queries.
    """
    global _worker_planner, _worker_plans
    from ..planner import Planner

    _worker_planner = Planner(catalog, stats_cache=True, **planner_config)
    _worker_plans = {}


def _plan_for(token, spec, query, partitioning):
    """Rehydrate (or fetch the cached) plan for a fingerprint token."""
    plan = _worker_plans.get(token)
    if plan is None:
        plan = _worker_planner.rehydrate(spec, query, partitioning=partitioning)
        if len(_worker_plans) >= _WORKER_PLAN_CACHE:
            _worker_plans.pop(next(iter(_worker_plans)))
        _worker_plans[token] = plan
    return plan


def _execute_fragment(token, spec, query, partitioning, driver_rows, options):
    """Run one driver-row fragment; returns a picklable payload dict.

    Failures are returned as data rather than raised: exceptions with
    non-trivial constructors do not round-trip through the result
    pickle, and an unpicklable exception would break the whole pool.
    """
    try:
        plan = _plan_for(token, spec, query, partitioning)
        result = plan.execute(
            flat_output=True,
            collect_output=options["collect_output"],
            max_intermediate_tuples=options["max_intermediate_tuples"],
            driver_rows=np.asarray(driver_rows, dtype=np.int64),
        )
        return {
            "ok": True,
            "output_size": result.output_size,
            "output_rows": result.output_rows,
            "counters": result.counters,
            "wall_time": result.wall_time,
            "index_build_seconds": result.index_build_seconds,
            "reduction_seconds": result.reduction_seconds,
            "shards_used": result.shards_used,
            "execution": result.execution,
        }
    except BudgetExceededError as exc:
        return {
            "ok": False,
            "budget": (str(exc.mode), exc.relation, int(exc.size),
                       int(exc.budget)),
        }
    except Exception as exc:  # noqa: BLE001 — keep worker failures picklable
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def _fragment_sketches(token, spec, query, partitioning, relation, shards):
    """Per-shard summaries of the shards this worker owns.

    The distributed semi-join exchange: each worker summarizes its own
    shards of the routing relation from its worker-local sharded index
    (building it here also warms the index the fragment execution is
    about to probe), and the driver merges the summaries into the
    placement descriptor.
    """
    try:
        plan = _plan_for(token, spec, query, partitioning)
        table = plan.catalog.table(relation)
        index = plan.catalog.hash_index(relation, table.shard_key)
        sketches = index.sketches()
        return {
            int(shard): (sketches[shard].num_rows, sketches[shard].num_distinct)
            for shard in shards
            if shard < len(sketches)
        }
    except Exception as exc:  # noqa: BLE001 — sketches are advisory
        return {"error": f"{type(exc).__name__}: {exc}"}


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------


def _merge_counters(counter_list):
    """Merge per-worker counters bit-identically to a single-process run."""
    merged = ExecutionCounters()
    for counters in counter_list:
        merged.hash_probes += counters.hash_probes
        merged.bitvector_probes += counters.bitvector_probes
        merged.tuples_generated += counters.tuples_generated
        merged.residual_checks += counters.residual_checks
        merged.residual_input_tuples += counters.residual_input_tuples
        for relation, probes in counters.hash_probes_by_relation.items():
            merged.hash_probes_by_relation[relation] = (
                merged.hash_probes_by_relation.get(relation, 0) + probes
            )
        for stage, size in counters.intermediate_tuples_by_stage.items():
            merged.intermediate_tuples_by_stage[stage] = (
                merged.intermediate_tuples_by_stage.get(stage, 0) + size
            )
    if counter_list:
        # driver-independent: every worker computed the identical global
        # semi-join reduction, so the count is taken once, not summed
        merged.semijoin_probes = counter_list[0].semijoin_probes
    merged.peak_intermediate_tuples = max(
        merged.intermediate_tuples_by_stage.values(), default=0
    )
    return merged


def _merge_rows(rows_list, root):
    """Concatenate per-worker outputs and restore driver order."""
    rows_list = [rows for rows in rows_list if rows is not None]
    if not rows_list:
        return None
    if len(rows_list) == 1:
        return rows_list[0]
    merged = {
        relation: np.concatenate([rows[relation] for rows in rows_list])
        for relation in rows_list[0]
    }
    if len(merged[root]):
        # each driver id's whole group lives in one worker and workers
        # emit ascending driver ids, so a stable sort on the root column
        # reproduces the single-process output order exactly
        order = np.argsort(merged[root], kind="stable")
        merged = {relation: rows[order] for relation, rows in merged.items()}
    return merged


class WorkerPool:
    """A pool of persistent execution workers for one catalog snapshot.

    ``planner_config`` is forwarded to each worker's
    :class:`~repro.planner.Planner` (the same knob dict the async
    planning pool ships) so rehydrated plans resolve identically to the
    driver's.  ``_submit`` is the single seam every worker-bound task
    goes through — the fault-injection test helper overrides it to kill
    a chosen worker mid-query.
    """

    def __init__(self, catalog, planner_config=None, num_workers=2,
                 max_retries=2):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.catalog = catalog
        self.catalog_fingerprint = catalog.fingerprint()
        self.planner_config = dict(planner_config or {})
        self.num_workers = num_workers
        self.max_retries = max_retries
        self._executors = [None] * num_workers
        self._sketches_cache = {}

    # -- worker lifecycle ----------------------------------------------

    def _executor(self, worker):
        """The (lazily spawned) executor backing one logical worker."""
        executor = self._executors[worker]
        if executor is None:
            executor = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_exec_worker,
                initargs=(self.catalog, self.planner_config),
            )
            self._executors[worker] = executor
        return executor

    def _submit(self, worker, fn, *args):
        """Submit a task to one worker (the fault-injection seam)."""
        return self._executor(worker).submit(fn, *args)

    def _retire(self, worker):
        """Drop a dead worker's executor; a successor respawns lazily."""
        executor = self._executors[worker]
        if executor is not None:
            executor.shutdown(wait=False)
        self._executors[worker] = None

    def close(self):
        """Shut down every worker process."""
        for worker in range(self.num_workers):
            executor = self._executors[worker]
            if executor is not None:
                executor.shutdown(wait=False)
            self._executors[worker] = None
        self._sketches_cache.clear()

    # -- scatter --------------------------------------------------------

    @staticmethod
    def _routing_edge(plan):
        """The root-attached join edge driver rows can shard-route on."""
        if plan.num_shards <= 1:
            return None
        query = plan.query
        for edge in query.edges:
            if edge.parent != query.root:
                continue
            child = plan.catalog.table(edge.child)
            if (
                getattr(child, "num_shards", 1) == plan.num_shards
                and getattr(child, "shard_key", None) == edge.child_attr
            ):
                return edge
        return None

    def _scatter(self, plan):
        """(placement, {shard: ascending driver-row ids}) for a plan."""
        root_table = plan.catalog.table(plan.query.root)
        num_rows = len(root_table)
        workers = tuple(range(self.num_workers))
        edge = self._routing_edge(plan)
        if edge is not None:
            placement = ShardPlacement.rendezvous(
                plan.num_shards, workers,
                routing="hash",
                routing_relation=edge.child,
                routing_attr=edge.child_attr,
            )
            keys = root_table.column(edge.parent_attr)
            shard_of_row = _probe_shard_ids(keys, plan.num_shards)
        else:
            placement = ShardPlacement.striped(self.num_workers)
            shard_of_row = (
                np.arange(num_rows, dtype=np.int64) * placement.num_shards
            ) // max(num_rows, 1)
        shard_rows = {
            shard: np.flatnonzero(shard_of_row == shard).astype(np.int64)
            for shard in range(placement.num_shards)
        }
        return placement, shard_rows

    def _exchange_sketches(self, placement, task_args):
        """Gather per-shard summaries from the workers that own them."""
        token = task_args[0]
        cached = self._sketches_cache.get(token)
        if cached is not None:
            return cached
        futures = []
        for worker in sorted(placement.workers):
            shards = placement.shards_of(worker)
            if not shards:
                continue
            try:
                futures.append(self._submit(
                    worker, _fragment_sketches,
                    *task_args, placement.routing_relation, shards,
                ))
            except BrokenProcessPool:
                return {}
        merged = {}
        for future in futures:
            try:
                part = future.result()
            except BrokenProcessPool:
                # advisory only — the execution path detects and
                # handles the death with its own retry budget
                return {}
            if "error" in part:
                return {}
            merged.update(part)
        self._sketches_cache[token] = merged
        return merged

    # -- execute --------------------------------------------------------

    def run(self, plan, spec, query, *, partitioning=None,
            collect_output=False, max_intermediate_tuples=50_000_000):
        """Scatter a plan across the pool and gather the merged result."""
        start = time.perf_counter()
        placement, shard_rows = self._scatter(plan)
        placement.validate()
        task_args = (plan.fingerprint(), spec, query, partitioning)
        if placement.routing == "hash":
            sketches = self._exchange_sketches(placement, task_args)
            if sketches:
                placement = placement.with_sketches(sketches)
        options = {
            "collect_output": collect_output,
            "max_intermediate_tuples": int(max_intermediate_tuples),
        }

        live = set(placement.workers)
        pending = []

        def submit(worker, shards):
            chunks = [shard_rows[s] for s in shards if len(shard_rows[s])]
            if not chunks:
                rows = np.empty(0, dtype=np.int64)
            elif len(chunks) == 1:
                rows = chunks[0]
            else:
                rows = np.sort(np.concatenate(chunks))
            try:
                future = self._submit(
                    worker, _execute_fragment, *task_args, rows, options
                )
            except BrokenProcessPool as exc:
                # a worker already found dead at submit time is handled
                # exactly like one dying mid-flight
                future = Future()
                future.set_exception(BrokenProcessPool(str(exc)))
            pending.append((worker, tuple(shards), future))

        by_worker = {}
        for shard in range(placement.num_shards):
            if len(shard_rows[shard]):
                by_worker.setdefault(placement.worker_of(shard), []).append(shard)
        if not by_worker:
            # all-empty driver: run one empty fragment anyway so the
            # driver-independent counters (semi-join reduction, zeroed
            # stage totals) still match the single-process run
            by_worker = {min(live): []}
        for worker in sorted(by_worker):
            submit(worker, by_worker[worker])
        scatter_seconds = time.perf_counter() - start

        payloads = []
        events = []
        used_workers = set()
        retries = 0
        while pending:
            worker, shards, future = pending.pop(0)
            try:
                payload = future.result()
            except BrokenProcessPool:
                self._retire(worker)
                live.discard(worker)
                retries += 1
                events.append(
                    f"worker {worker} died executing shards {list(shards)}; "
                    f"retry {retries}/{self.max_retries}"
                )
                if retries > self.max_retries:
                    raise DistributedExecutionError(
                        f"worker deaths exceeded max_retries="
                        f"{self.max_retries}: " + "; ".join(events)
                    ) from None
                if not live:
                    raise DistributedExecutionError(
                        "no live workers left to retry on: "
                        + "; ".join(events)
                    ) from None
                placement = placement.without(worker)
                regroup = {}
                for shard in shards:
                    regroup.setdefault(placement.worker_of(shard), []).append(shard)
                if not regroup:
                    regroup = {min(live): []}
                for sibling in sorted(regroup):
                    submit(sibling, regroup[sibling])
                continue
            if not payload.get("ok"):
                budget = payload.get("budget")
                if budget is not None:
                    mode, relation, size, limit = budget
                    raise BudgetExceededError(mode, relation, size, limit)
                raise DistributedExecutionError(
                    f"worker {worker} failed: "
                    f"{payload.get('error', 'unknown error')}"
                )
            payloads.append(payload)
            used_workers.add(worker)

        gather_start = time.perf_counter()
        counters = _merge_counters([p["counters"] for p in payloads])
        output_rows = _merge_rows(
            [p["output_rows"] for p in payloads], plan.query.root
        )
        result = ExecutionResult(
            mode=plan.mode,
            order=list(plan.order),
            output_size=sum(p["output_size"] for p in payloads),
            counters=counters,
            wall_time=time.perf_counter() - start,
            output_rows=output_rows,
            factorized=None,
            index_build_seconds=max(p["index_build_seconds"] for p in payloads),
            reduction_seconds=max(p["reduction_seconds"] for p in payloads),
            shards_used=max(p["shards_used"] for p in payloads),
            execution=payloads[0]["execution"],
        )
        result.workers_used = len(used_workers)
        result.scatter_seconds = scatter_seconds
        result.gather_seconds = time.perf_counter() - gather_start
        result.worker_retries = retries
        result.worker_events = tuple(events)
        result.placement = placement.describe()
        return result
