"""Shard-to-worker placement policy for distributed execution.

:class:`ShardPlacement` maps each shard of a hash-partitioned layout to
one worker process of a :class:`~repro.distributed.workerpool.WorkerPool`.
The default assignment is rendezvous (highest-random-weight) hashing:
every (shard, worker) pair gets a deterministic pseudo-random score and
each shard goes to its highest-scoring worker.  The property that makes
rendezvous the right default here is *minimal movement* — removing a
worker reassigns only the shards that worker owned (every other shard's
argmax is unchanged), so a worker death during a query moves exactly the
victim's shards to siblings and the warm worker-local index caches of
the survivors stay valid.

Two routing flavors exist:

``"hash"``
    Shards are the probe-hash shards of a root-attached
    :class:`~repro.storage.partition.PartitionedTable` join child;
    driver rows route to shards via
    :func:`~repro.storage.partition._probe_shard_ids` on the root join
    column, so each worker probes (mostly) its own shards' keys.
``"stripe"``
    No root-attached shardable edge exists (unpartitioned catalog, or
    the first join is not on the shard key); the driver row range is
    cut into ``num_workers`` contiguous stripes, one per worker, with
    the identity assignment.

Either way the placement is a partition of the shard/stripe ids — every
shard owned by exactly one worker — which :meth:`ShardPlacement.validate`
checks and the planlint ``PLACE001`` pass re-checks statically.
:meth:`ShardPlacement.describe` renders the explain-able descriptor that
ends up on distributed :class:`~repro.engine.executor.ExecutionResult` s.

This module is dependency-free (stdlib only) so the planner and the
analysis layer can import :data:`PLACEMENT_CHOICES` without pulling in
process-pool machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "DEFAULT_MAX_WORKERS",
    "PLACEMENT_CHOICES",
    "ShardPlacement",
    "rendezvous_score",
]

#: valid values of the ``placement`` knob
PLACEMENT_CHOICES: Tuple[str, ...] = ("local", "distributed")

#: cap on the auto-resolved worker count (``num_workers=0`` resolves to
#: ``min(DEFAULT_MAX_WORKERS, cpu_count)``) — execution workers are
#: memory-heavy (each holds a full catalog replica), so the default
#: stays modest and explicit ``num_workers`` overrides it
DEFAULT_MAX_WORKERS = 4

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(value: int) -> int:
    """The splitmix64 finalizer — same mixer the shard router uses."""
    value = (value + _GOLDEN) & _MASK
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK
    value ^= value >> 31
    return value


def rendezvous_score(shard: int, worker: int) -> int:
    """Deterministic highest-random-weight score for a (shard, worker).

    Pure integer arithmetic — identical in every process on every
    platform, which is what lets driver and workers agree on the
    assignment without exchanging it.
    """
    return _splitmix64(_splitmix64(shard + 1) ^ ((worker + 1) * _GOLDEN & _MASK))


@dataclass(frozen=True)
class ShardPlacement:
    """An explainable assignment of shards to workers.

    ``assignment[shard]`` is the worker owning that shard; ``workers``
    are the live worker ids the assignment draws from (a placement
    after failures may use fewer workers than the pool was sized for).
    """

    num_shards: int
    workers: Tuple[int, ...]
    assignment: Tuple[int, ...]
    #: how driver rows map to shards: "hash" (probe-hash of the routing
    #: join column) or "stripe" (contiguous driver-row stripes)
    routing: str = "hash"
    #: the join child/attribute whose partitioned layout defined the
    #: shards (hash routing only)
    routing_relation: Optional[str] = None
    routing_attr: Optional[str] = None
    #: per-shard (num_rows, num_distinct) summaries of the routing
    #: relation, exchanged from the workers that own each shard
    sketches: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def rendezvous(
        cls,
        num_shards: int,
        workers: Tuple[int, ...],
        *,
        routing: str = "hash",
        routing_relation: Optional[str] = None,
        routing_attr: Optional[str] = None,
    ) -> "ShardPlacement":
        """Rendezvous-hash every shard onto the given workers."""
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        workers = tuple(sorted(set(workers)))
        if not workers:
            raise ValueError("placement needs at least one worker")
        assignment = tuple(
            # ties (never observed with splitmix64, but cheap to pin)
            # break toward the lower worker id
            max(workers, key=lambda w: (rendezvous_score(shard, w), -w))
            for shard in range(num_shards)
        )
        return cls(
            num_shards=num_shards,
            workers=workers,
            assignment=assignment,
            routing=routing,
            routing_relation=routing_relation,
            routing_attr=routing_attr,
        )

    @classmethod
    def striped(cls, num_workers: int) -> "ShardPlacement":
        """One contiguous driver stripe per worker, identity-assigned."""
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        workers = tuple(range(num_workers))
        return cls(
            num_shards=num_workers,
            workers=workers,
            assignment=workers,
            routing="stripe",
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def worker_of(self, shard: int) -> int:
        return self.assignment[shard]

    def shards_of(self, worker: int) -> Tuple[int, ...]:
        return tuple(
            shard for shard, owner in enumerate(self.assignment)
            if owner == worker
        )

    def without(self, worker: int) -> "ShardPlacement":
        """The placement after losing ``worker``.

        Only the dead worker's shards are reassigned (rendezvous among
        the survivors); every other shard keeps its owner — for hash
        routing this equals a full rendezvous recompute over the
        survivor set (the minimal-movement property), and for stripe
        routing it avoids shuffling healthy stripes.
        """
        survivors = tuple(w for w in self.workers if w != worker)
        if not survivors:
            raise ValueError("placement would have no workers left")
        assignment = tuple(
            owner if owner != worker
            else max(survivors, key=lambda w: (rendezvous_score(shard, w), -w))
            for shard, owner in enumerate(self.assignment)
        )
        return ShardPlacement(
            num_shards=self.num_shards,
            workers=survivors,
            assignment=assignment,
            routing=self.routing,
            routing_relation=self.routing_relation,
            routing_attr=self.routing_attr,
            sketches=dict(self.sketches),
        )

    def with_sketches(
        self, sketches: Dict[int, Tuple[int, int]]
    ) -> "ShardPlacement":
        """The same placement annotated with per-shard summaries."""
        return ShardPlacement(
            num_shards=self.num_shards,
            workers=self.workers,
            assignment=self.assignment,
            routing=self.routing,
            routing_relation=self.routing_relation,
            routing_attr=self.routing_attr,
            sketches=dict(sketches),
        )

    def validate(self) -> None:
        """Raise unless every shard is owned by exactly one live worker."""
        if len(self.assignment) != self.num_shards:
            raise ValueError(
                f"placement covers {len(self.assignment)} shards, "
                f"expected {self.num_shards}"
            )
        live = set(self.workers)
        for shard, owner in enumerate(self.assignment):
            if owner not in live:
                raise ValueError(
                    f"shard {shard} assigned to non-member worker {owner}"
                )
        owned = [s for w in self.workers for s in self.shards_of(w)]
        if sorted(owned) != list(range(self.num_shards)):
            raise ValueError(
                "shards_of() partition disagrees with the assignment"
            )

    def describe(self) -> Dict[str, Any]:
        """The explain-able placement descriptor."""
        descriptor: Dict[str, Any] = {
            "routing": self.routing,
            "num_shards": self.num_shards,
            "workers": list(self.workers),
            "assignment": {
                shard: owner for shard, owner in enumerate(self.assignment)
            },
            "shards_by_worker": {
                worker: list(self.shards_of(worker)) for worker in self.workers
            },
        }
        if self.routing_relation is not None:
            descriptor["routing_relation"] = self.routing_relation
            descriptor["routing_attr"] = self.routing_attr
        if self.sketches:
            descriptor["shard_sketches"] = {
                shard: {"num_rows": rows, "num_distinct": distinct}
                for shard, (rows, distinct) in sorted(self.sketches.items())
            }
        return descriptor
