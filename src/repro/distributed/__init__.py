"""Distributed shard placement and scatter/gather execution.

See :mod:`repro.distributed.placement` for the shard-to-worker policy
and :mod:`repro.distributed.workerpool` for the persistent worker
processes and the scatter/gather data path.  The subsystem sits behind
the ``placement="local"|"distributed"`` planner/session knob; results
and :class:`~repro.engine.executor.ExecutionCounters` are bit-identical
to single-process execution by construction (property-tested in
``tests/properties/test_prop_distributed.py``).
"""

from .placement import (
    DEFAULT_MAX_WORKERS,
    PLACEMENT_CHOICES,
    ShardPlacement,
    rendezvous_score,
)
from .workerpool import DistributedExecutionError, WorkerPool

__all__ = [
    "DEFAULT_MAX_WORKERS",
    "DistributedExecutionError",
    "PLACEMENT_CHOICES",
    "ShardPlacement",
    "WorkerPool",
    "rendezvous_score",
]
