"""Figure 11: synthetic benchmark — relative runtimes of the approaches.

Four query shapes (7-star, 11-path, 3-2 snowflake, 5-1 snowflake), four
match-probability ranges, fanouts in [1, 10].  Every mode executes the
survival-heuristic join order; runtimes are normalized by COM, once
with flat output for everyone and once with factorized output for the
COM variants.  Budget overruns are reported as timeouts (as in the
paper, where several STD variants timed out).
"""

from __future__ import annotations

from ..core.optimizer import greedy_order, optimize_sj
from ..core.stats import stats_from_data
from ..modes import ExecutionMode
from ..workloads.shapes import PAPER_SHAPES
from ..workloads.synthetic import generate_dataset, specs_from_ranges
from .runner import relative_to, render_table, run_all_modes

__all__ = ["run", "main"]

M_RANGES = [(0.05, 0.2), (0.05, 0.5), (0.1, 0.5), (0.5, 0.9)]
FO_RANGE = (1.0, 10.0)


def run(
    driver_size=10_000,
    shapes=None,
    m_ranges=None,
    seed=0,
    max_intermediate_tuples=20_000_000,
    max_expected_output=8_000_000.0,
):
    """Return Figure 11 rows: per (shape, m-range, mode) relative times.

    Configurations whose expected flat output would exceed
    ``max_expected_output`` are run with a proportionally smaller driver
    (reported in the ``driver`` column): every mode's cost is linear in
    the driver cardinality, so relative comparisons are preserved while
    the pure-Python run stays within memory/time limits.  The paper's
    C++ prototype instead relied on long timeouts.
    """
    shapes = shapes or list(PAPER_SHAPES)
    m_ranges = m_ranges or M_RANGES
    rows = []
    for shape_name in shapes:
        query = PAPER_SHAPES[shape_name]()
        for m_range in m_ranges:
            data_seed = seed + hash((shape_name, m_range)) % 10_000
            specs = specs_from_ranges(query, m_range, FO_RANGE, seed=data_seed)
            output_per_driver_tuple = 1.0
            for spec in specs.values():
                output_per_driver_tuple *= spec.m * spec.fo
            effective_driver = driver_size
            if driver_size * output_per_driver_tuple > max_expected_output:
                effective_driver = max(
                    500,
                    int(max_expected_output / max(output_per_driver_tuple, 1e-9)),
                )
            dataset = generate_dataset(
                query, effective_driver, specs, seed=data_seed
            )
            stats = stats_from_data(dataset.catalog, query)
            plan = greedy_order(query, stats, "survival")
            sj_plan = optimize_sj(query, stats, factorized=True)
            for flat_output in (True, False):
                runs = run_all_modes(
                    dataset.catalog,
                    query,
                    plan.order,
                    flat_output=flat_output,
                    child_orders=sj_plan.child_orders,
                    max_intermediate_tuples=max_intermediate_tuples,
                )
                rel_time = relative_to(runs, metric="wall_time")
                rel_probes = relative_to(runs, metric="weighted_cost")
                for mode in ExecutionMode.all_modes():
                    rows.append(
                        {
                            "shape": shape_name,
                            "m_range": f"[{m_range[0]}-{m_range[1]}]",
                            "driver": effective_driver,
                            "output": "flat" if flat_output else "factorized",
                            "mode": str(mode),
                            "rel_time": rel_time[mode],
                            "rel_weighted_probes": rel_probes[mode],
                            "output_size": runs[mode].output_size,
                        }
                    )
    return rows


def main(**kwargs):
    rows = run(**kwargs)
    print(render_table(
        rows,
        ["shape", "m_range", "driver", "output", "mode",
         "rel_time", "rel_weighted_probes", "output_size"],
        title="Figure 11: relative execution vs COM (synthetic benchmark)",
    ))
    return rows


if __name__ == "__main__":
    main()
