"""Benchmark drivers — one per figure of the paper's evaluation."""

from . import fig04, fig06, fig10, fig11, fig12, fig13, fig14, fig15, fig16
from .runner import (
    SMOKE_PARAMS,
    FigureResult,
    ModeRun,
    geometric_mean,
    relative_to,
    render_table,
    run_all_modes,
    run_figures,
)

#: figure id -> driver module
FIGURES = {
    "4": fig04,
    "6": fig06,
    "10": fig10,
    "11": fig11,
    "12": fig12,
    "13": fig13,
    "14": fig14,
    "15": fig15,
    "16": fig16,
}

__all__ = [
    "FIGURES",
    "FigureResult",
    "ModeRun",
    "SMOKE_PARAMS",
    "geometric_mean",
    "relative_to",
    "render_table",
    "run_all_modes",
    "run_figures",
]
