"""Figure 6: sensitivity of plan choice to estimation errors.

A 10-relation star query; per (match-probability range, fanout range,
error range) cell, 100 random statistics draws; reports the percentage
cost difference between the plan chosen from perturbed estimates and
the true optimum, for the selectivity-based model and the new
match-probability-based model.
"""

from __future__ import annotations

from ..core.robustness import estimation_error_experiment
from .runner import render_table

__all__ = ["run", "main"]

#: the paper's two m ranges (top and bottom plot rows)
M_RANGES = [(0.05, 0.2), (0.5, 0.9)]
#: fanout ranges (plot x axis groups)
FO_RANGES = [(1.0, 2.0), (1.0, 10.0), (10.0, 100.0)]
#: low (15-20%) and high (90-95%) estimation error
ERROR_RANGES = [(0.15, 0.2), (0.9, 0.95)]


def run(num_samples=100, num_dimensions=10, seed=0):
    """Return Figure 6 rows: mean/median/p90 pct cost difference."""
    rows = []
    for error_range in ERROR_RANGES:
        for m_range in M_RANGES:
            for fo_range in FO_RANGES:
                results = estimation_error_experiment(
                    m_range=m_range,
                    fo_range=fo_range,
                    error_range=error_range,
                    num_dimensions=num_dimensions,
                    num_samples=num_samples,
                    seed=seed,
                )
                for model in ("selectivity", "match"):
                    res = results[model]
                    rows.append(
                        {
                            "error": f"{error_range[0]:.0%}-{error_range[1]:.0%}",
                            "m_range": f"[{m_range[0]}-{m_range[1]}]",
                            "fo_range": f"[{fo_range[0]:g}-{fo_range[1]:g}]",
                            "model": res.model,
                            "mean_pct_diff": res.mean,
                            "median_pct_diff": res.median,
                            "p90_pct_diff": res.p90,
                        }
                    )
    return rows


def main(**kwargs):
    rows = run(**kwargs)
    print(render_table(
        rows,
        ["error", "m_range", "fo_range", "model",
         "mean_pct_diff", "median_pct_diff", "p90_pct_diff"],
        title=("Figure 6: % cost difference of estimate-chosen plan vs true "
               "optimum (10-relation star)"),
    ))
    return rows


if __name__ == "__main__":
    main()
