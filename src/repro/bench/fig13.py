"""Figure 13: analytic simulation of the five approaches.

All relations the same size, all match probabilities and fanouts
identical; estimated best cost (weighted probes: bitvector/semi-join
probe = 1/2 hash probe, tuple generation = 1/14) as the match
probability sweeps 0.1-0.9, for fanouts 2 and 5, on the four query
shapes.  Pure cost-model computation — no data is generated.
"""

from __future__ import annotations

import numpy as np

from ..core.costmodel import CostWeights, plan_cost
from ..core.stats import EdgeStats, QueryStats
from ..modes import ExecutionMode
from ..workloads.shapes import PAPER_SHAPES
from .runner import render_table

__all__ = ["run", "main"]

#: the five plotted approaches (plain STD is omitted, as in the paper,
#: because its cost dwarfs the others and distorts the plots)
APPROACHES = [
    ExecutionMode.BVP_STD,
    ExecutionMode.SJ_STD,
    ExecutionMode.COM,
    ExecutionMode.BVP_COM,
    ExecutionMode.SJ_COM,
]


def run(
    driver_size=100_000,
    fanouts=(2.0, 5.0),
    m_values=None,
    eps=0.01,
    seed=0,
):
    """Return Figure 13 rows: estimated best cost per (shape, fo, m, mode)."""
    del seed  # deterministic: analytic computation only
    if m_values is None:
        m_values = [round(m, 2) for m in np.arange(0.1, 0.95, 0.1)]
    weights = CostWeights()
    rows = []
    for shape_name, builder in PAPER_SHAPES.items():
        query = builder()
        for fo in fanouts:
            for m in m_values:
                stats = QueryStats(
                    driver_size,
                    {
                        relation: EdgeStats(m=m, fo=fo)
                        for relation in query.non_root_relations
                    },
                    relation_sizes={
                        relation: driver_size for relation in query.relations
                    },
                )
                order = list(query.non_root_relations)
                for mode in APPROACHES:
                    cost = plan_cost(
                        query, stats, order, mode, eps=eps, flat_output=True
                    ).total(weights)
                    rows.append(
                        {
                            "shape": shape_name,
                            "fanout": fo,
                            "m": m,
                            "mode": str(mode),
                            "estimated_cost": cost,
                        }
                    )
    return rows


def main(**kwargs):
    rows = run(**kwargs)
    print(render_table(
        rows,
        ["shape", "fanout", "m", "mode", "estimated_cost"],
        title=("Figure 13: estimated cost vs match probability "
               "(uniform stats, equal-size relations)"),
        float_format="{:.4g}",
    ))
    return rows


if __name__ == "__main__":
    main()
