"""CLI: regenerate any figure of the paper.

Usage::

    python -m repro.bench --figure 11
    python -m repro.bench --all
    python -m repro.bench --smoke --jobs 4      # CI smoke suite, parallel
    repro-bench --all --jobs 8                  # console entry point

``--smoke`` runs every figure (or the ``--figure`` subset) on reduced
problem sizes; ``--jobs N`` fans the independent figures out over N
worker processes.
"""

from __future__ import annotations

import argparse
import sys

from . import FIGURES
from .runner import run_figures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures from the reproduction.",
    )
    parser.add_argument(
        "--figure", choices=sorted(FIGURES, key=int),
        help="figure number to regenerate",
    )
    parser.add_argument(
        "--all", action="store_true", help="regenerate every figure"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced problem sizes (runs every figure unless --figure)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for running figures in parallel (default 1)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.figure and args.all:
        parser.error("--figure and --all are mutually exclusive")
    if not args.figure and not args.all and not args.smoke:
        parser.error("pass --figure N, --all or --smoke")
    figures = [args.figure] if args.figure else sorted(FIGURES, key=int)
    streamed = args.jobs == 1 or len(figures) == 1

    def report(result):
        label = f"Figure {result.figure}"
        if args.smoke:
            label += " (smoke)"
        print(f"\n=== {label}: "
              f"{'ok' if result.ok else 'FAILED'} in {result.seconds:.1f}s ===")
        if result.output and not streamed:
            print(result.output, end="")
        if result.error:
            print(result.error, file=sys.stderr, end="")

    results = run_figures(
        figures, jobs=args.jobs, smoke=args.smoke, on_result=report,
        stream=streamed,
    )
    failed = [result.figure for result in results if not result.ok]
    if failed:
        print(f"\nFAILED figures: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"\nAll {len(results)} figure(s) completed "
          f"in {sum(r.seconds for r in results):.1f}s of driver time.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
