"""CLI: regenerate any figure of the paper.

Usage::

    python -m repro.bench --figure 11
    python -m repro.bench --all
"""

from __future__ import annotations

import argparse
import sys

from . import FIGURES


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures from the reproduction.",
    )
    parser.add_argument(
        "--figure", choices=sorted(FIGURES, key=int),
        help="figure number to regenerate",
    )
    parser.add_argument(
        "--all", action="store_true", help="regenerate every figure"
    )
    args = parser.parse_args(argv)
    if not args.figure and not args.all:
        parser.error("pass --figure N or --all")
    targets = sorted(FIGURES, key=int) if args.all else [args.figure]
    for figure in targets:
        print(f"\n=== Figure {figure} ===")
        FIGURES[figure].main()
    return 0


if __name__ == "__main__":
    sys.exit(main())
