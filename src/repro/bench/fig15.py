"""Figure 15: impact of the constant-fanout assumption.

3-2 snowflake query; datasets where per-key fanouts follow a truncated
normal (increasing sigma) or an exponential distribution (increasing
mean, hence variance).  The cost model assumes constant fanout; the
figure plots the ratio of actual to estimated probe counts as the
fanout variance grows — the paper (and this reproduction) find the
ratio stays near 1.
"""

from __future__ import annotations

import numpy as np

from ..core.costmodel import com_probes_per_join
from ..core.stats import EdgeStats, QueryStats, stats_from_data
from ..engine import execute
from ..modes import ExecutionMode
from ..workloads.shapes import paper_snowflake_3_2
from ..workloads.synthetic import EdgeSpec, generate_dataset
from .runner import render_table

__all__ = ["run", "main"]


def _designed_stats(query, specs, catalog):
    """Cost-model inputs that keep the *designed* mean fanouts.

    The true match probabilities are measured (rounding during
    generation perturbs them slightly), but the fanout fed to the model
    is the designed mean — the constant-fanout assumption under test.
    """
    measured = stats_from_data(catalog, query)
    edge_stats = {
        relation: EdgeStats(m=measured.m(relation), fo=specs[relation].fo)
        for relation in query.non_root_relations
    }
    return QueryStats(measured.driver_size, edge_stats,
                      relation_sizes=measured.relation_sizes)


def run(
    driver_size=8_000,
    mean_fanout=10.0,
    m=0.4,
    normal_sigmas=(0.5, 2.0, 4.0, 6.0, 9.0),
    exponential_means=(2.0, 5.0, 10.0, 20.0, 45.0),
    seed=0,
):
    """Return Figure 15 rows: probe ratio vs fanout variance."""
    query = paper_snowflake_3_2()
    rows = []

    def measure(dist_label, specs, data_seed):
        dataset = generate_dataset(query, driver_size, specs, seed=data_seed)
        stats = _designed_stats(query, specs, dataset.catalog)
        order = list(query.non_root_relations)
        estimated = sum(com_probes_per_join(query, stats, order).values())
        result = execute(
            dataset.catalog, query, order, ExecutionMode.COM,
            flat_output=False,
        )
        actual = result.counters.hash_probes
        # Empirical fanout variance across matched keys of the first edge.
        first = query.non_root_relations[0]
        edge = query.edge_to(first)
        child_keys = dataset.catalog.table(first).column(edge.child_attr)
        counts = np.unique(child_keys, return_counts=True)[1]
        return {
            "distribution": dist_label,
            "fanout_variance": float(counts.var()),
            "mean_fanout": float(counts.mean()),
            "estimated_probes": float(estimated),
            "actual_probes": float(actual),
            "probe_ratio": float(actual / max(estimated, 1e-12)),
        }

    for i, sigma in enumerate(normal_sigmas):
        specs = {
            relation: EdgeSpec(
                m=m, fo=mean_fanout, fanout_dist="normal", fanout_sigma=sigma
            )
            for relation in query.non_root_relations
        }
        rows.append(measure("normal", specs, seed + i))
    for i, mean in enumerate(exponential_means):
        specs = {
            relation: EdgeSpec(m=m, fo=float(mean), fanout_dist="exponential")
            for relation in query.non_root_relations
        }
        rows.append(measure("exponential", specs, seed + 100 + i))
    return rows


def main(**kwargs):
    rows = run(**kwargs)
    print(render_table(
        rows,
        ["distribution", "fanout_variance", "mean_fanout",
         "estimated_probes", "actual_probes", "probe_ratio"],
        title=("Figure 15: actual/estimated probes under skewed fanout "
               "distributions (3-2 snowflake)"),
    ))
    return rows


if __name__ == "__main__":
    main()
