"""Figure 16: robustness of the six approaches to the join order.

For each query, ten random join orders (driver fixed) are executed
under all six modes; per mode, execution metrics are normalized by that
mode's own worst order, so the spread (min / median of the normalized
values, and max/min ratio) measures *relative* robustness.  COM+SJ
shows almost no variation (Theorem 3.5); STD is the most fragile.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.optimizer import optimize_sj
from ..core.stats import stats_from_data
from ..modes import ExecutionMode
from ..workloads.cebench import build_dataset
from ..workloads.shapes import paper_snowflake_3_2, paper_snowflake_5_1
from ..workloads.synthetic import generate_dataset, specs_from_ranges
from .runner import render_table, run_all_modes

__all__ = ["run", "main"]


def _robustness_rows(label, catalog, query, num_orders, seed,
                     max_intermediate_tuples, metric="wall_time"):
    stats = stats_from_data(catalog, query)
    sj_plan = optimize_sj(query, stats, factorized=True)
    rng = np.random.default_rng(seed)
    orders = [query.random_order(rng) for _ in range(num_orders)]
    per_mode = {mode: [] for mode in ExecutionMode.all_modes()}
    timeouts = {mode: 0 for mode in ExecutionMode.all_modes()}
    for order in orders:
        runs = run_all_modes(
            catalog, query, order, flat_output=True,
            child_orders=sj_plan.child_orders,
            max_intermediate_tuples=max_intermediate_tuples,
        )
        for mode, run_result in runs.items():
            if run_result.timed_out:
                timeouts[mode] += 1
            else:
                per_mode[mode].append(getattr(run_result, metric))
    rows = []
    for mode in ExecutionMode.all_modes():
        values = np.asarray(per_mode[mode], dtype=float)
        if len(values) == 0 or values.max() <= 0:
            rows.append({
                "query": label, "mode": str(mode),
                "norm_min": math.nan, "norm_median": math.nan,
                "spread_max_over_min": math.inf,
                "timeouts": timeouts[mode],
            })
            continue
        normalized = values / values.max()
        rows.append(
            {
                "query": label,
                "mode": str(mode),
                "norm_min": float(normalized.min()),
                "norm_median": float(np.median(normalized)),
                "spread_max_over_min": float(
                    values.max() / max(values.min(), 1e-12)
                ),
                "timeouts": timeouts[mode],
            }
        )
    return rows


def run(
    driver_size=8_000,
    num_orders=10,
    seed=0,
    ce_datasets=("epinions", "imdb", "watdiv", "dblp"),
    ce_scale=0.35,
    max_intermediate_tuples=20_000_000,
    metric="wall_time",
):
    """Return Figure 16 rows for synthetic and CE-style queries."""
    rows = []
    synthetic_cases = [
        ("snowflake_5_1 m=[0.05-0.2]", paper_snowflake_5_1(), (0.05, 0.2)),
        ("snowflake_5_1 m=[0.5-0.9]", paper_snowflake_5_1(), (0.5, 0.9)),
        ("snowflake_3_2 m=[0.05-0.2]", paper_snowflake_3_2(), (0.05, 0.2)),
        ("snowflake_3_2 m=[0.5-0.9]", paper_snowflake_3_2(), (0.5, 0.9)),
    ]
    for label, query, m_range in synthetic_cases:
        data_seed = seed + hash(label) % 10_000
        specs = specs_from_ranges(query, m_range, (1.0, 6.0), seed=data_seed)
        # Bound the expected flat output by shrinking the driver when a
        # configuration explodes (every mode scales linearly in the
        # driver, so relative robustness is unaffected).
        output_per_tuple = 1.0
        for spec in specs.values():
            output_per_tuple *= spec.m * spec.fo
        effective_driver = driver_size
        if driver_size * output_per_tuple > 4_000_000.0:
            effective_driver = max(
                500, int(4_000_000.0 / max(output_per_tuple, 1e-9))
            )
        dataset = generate_dataset(
            query, effective_driver, specs, seed=data_seed
        )
        rows.extend(_robustness_rows(
            label, dataset.catalog, query, num_orders, seed + 3,
            max_intermediate_tuples, metric,
        ))
    for name in ce_datasets:
        dataset = build_dataset(name, scale=ce_scale, seed=seed)
        query = dataset.random_queries(
            1, size_range=(4, 5), seed=seed + 5,
            max_expected_output=500_000.0,
        )[0]
        rows.extend(_robustness_rows(
            f"ce:{name}", dataset.catalog, query, num_orders, seed + 7,
            max_intermediate_tuples, metric,
        ))
    return rows


def main(**kwargs):
    rows = run(**kwargs)
    print(render_table(
        rows,
        ["query", "mode", "norm_min", "norm_median",
         "spread_max_over_min", "timeouts"],
        title=("Figure 16: per-mode execution spread over 10 random join "
               "orders (normalized by each mode's worst order)"),
    ))
    return rows


if __name__ == "__main__":
    main()
