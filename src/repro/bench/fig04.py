"""Figure 4: sampling vs naive estimation of match probability and fanout.

Random two-relation joins with random predicates over the DBLP-like
dataset; average q-error of the naive estimator and of correlated
samples of three sizes, split by low (< 0.05) and high match
probability.  The paper's 0.1% / 0.5% / 1% sample fractions refer to
multi-million-row relations; on the scaled-down stand-in the fractions
are scaled so the *absolute* sample sizes are comparable (documented in
EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from ..estimation import (
    CorrelatedSample,
    naive_estimate_from_tables,
    q_error,
    true_join_stats,
)
from ..workloads.dblp_like import build_estimation_dataset
from .runner import render_table

__all__ = ["run", "main"]

#: paper label -> sample fraction on the stand-in dataset.  The paper's
#: relations have millions of rows, so its 0.1% samples hold thousands
#: of tuples; these fractions give comparable absolute sample sizes on
#: the scaled-down stand-in.
SAMPLE_FRACTIONS = {"0.1%": 0.04, "0.5%": 0.12, "1%": 0.25}
#: the paper splits results at this match probability
M_SPLIT = 0.05


def run(num_tasks=80, scale=2.0, seed=0, q_error_floor=1e-3):
    """Return Figure 4 rows: avg q-error per estimator / bucket / quantity."""
    dataset = build_estimation_dataset(scale=scale, seed=seed)
    tasks = dataset.random_tasks(num_tasks, seed=seed + 1)
    errors = {}  # (estimator, bucket, quantity) -> list of q-errors
    sample_cache = {}
    for task in tasks:
        probe = dataset.catalog.table(task.probe_relation)
        build = dataset.catalog.table(task.build_relation)
        truth = true_join_stats(
            probe, build, task.probe_attr, task.build_attr,
            task.probe_predicate, task.build_predicate,
        )
        bucket = "m<0.05" if truth.m < M_SPLIT else "m>0.05"
        estimates = {
            "naive": naive_estimate_from_tables(
                probe, build, task.probe_attr, task.build_attr,
                task.build_predicate, task.probe_predicate,
            )
        }
        for label, fraction in SAMPLE_FRACTIONS.items():
            key = (task.probe_relation, task.build_relation,
                   task.probe_attr, task.build_attr, label)
            sample = sample_cache.get(key)
            if sample is None:
                # Floor the absolute sample size: the paper's relations
                # have millions of rows, so even its 0.1% samples are
                # thousands of tuples; tiny stand-in relations would
                # otherwise yield single-digit samples.
                effective = max(fraction, min(1.0, 60.0 / len(probe)))
                sample = CorrelatedSample(
                    probe, build, task.probe_attr, task.build_attr,
                    sample_fraction=effective, seed=seed + 2,
                )
                sample_cache[key] = sample
            estimates[label] = sample.estimate(
                task.probe_predicate, task.build_predicate
            )
        for estimator, est in estimates.items():
            errors.setdefault((estimator, bucket, "match_prob"), []).append(
                q_error(est.m, truth.m, floor=q_error_floor)
            )
            errors.setdefault((estimator, bucket, "fanout"), []).append(
                q_error(est.fo, truth.fo, floor=q_error_floor)
            )
    rows = []
    for estimator in ["naive"] + list(SAMPLE_FRACTIONS):
        for bucket in ("m<0.05", "m>0.05"):
            for quantity in ("match_prob", "fanout"):
                values = errors.get((estimator, bucket, quantity), [])
                if not values:
                    continue
                arr = np.asarray(values)
                rows.append(
                    {
                        "estimator": estimator,
                        "bucket": bucket,
                        "quantity": quantity,
                        "avg_q_error": float(arr.mean()),
                        "std": float(arr.std()),
                        "n": len(arr),
                    }
                )
    return rows


def main(**kwargs):
    rows = run(**kwargs)
    print(render_table(
        rows,
        ["estimator", "bucket", "quantity", "avg_q_error", "std", "n"],
        title="Figure 4: q-error of match probability / fanout estimators",
    ))
    return rows


if __name__ == "__main__":
    main()
