"""Figure 12: CE benchmark — relative runtimes on graph-like datasets.

Five simulated CE datasets (epinions, imdb, watdiv, dblp, yago), ten
random queries each; every mode executes the survival-heuristic order;
runtimes normalized by COM, for flat and factorized output formats.
"""

from __future__ import annotations

from ..core.optimizer import greedy_order, optimize_sj
from ..core.stats import stats_from_data
from ..modes import ExecutionMode
from ..workloads.cebench import DATASET_FLAVORS, build_dataset
from .runner import geometric_mean, relative_to, render_table, run_all_modes

__all__ = ["run", "main"]


def run(
    datasets=None,
    num_queries=10,
    scale=0.5,
    seed=0,
    max_expected_output=1_000_000.0,
    max_intermediate_tuples=20_000_000,
    min_probe_ratio=5.0,
):
    """Return Figure 12 rows: per-dataset geometric-mean relative times.

    ``min_probe_ratio`` biases query sampling toward the CE benchmark's
    defining property: many-to-many joins with substantial redundant
    probing (predicted STD/COM probe ratio at least that factor).
    """
    datasets = datasets or list(DATASET_FLAVORS)
    rows = []
    for name in datasets:
        dataset = build_dataset(name, scale=scale, seed=seed)
        queries = dataset.random_queries(
            num_queries, seed=seed + 1,
            max_expected_output=max_expected_output,
            min_probe_ratio=min_probe_ratio,
        )
        per_mode = {
            mode: {"time": [], "probes": [], "timeouts": 0}
            for mode in ExecutionMode.all_modes()
        }
        for query in queries:
            stats = stats_from_data(dataset.catalog, query)
            plan = greedy_order(query, stats, "survival")
            sj_plan = optimize_sj(query, stats, factorized=True)
            runs = run_all_modes(
                dataset.catalog,
                query,
                plan.order,
                flat_output=True,
                child_orders=sj_plan.child_orders,
                max_intermediate_tuples=max_intermediate_tuples,
            )
            rel_time = relative_to(runs, metric="wall_time")
            rel_probes = relative_to(runs, metric="weighted_cost")
            for mode in ExecutionMode.all_modes():
                if runs[mode].timed_out:
                    per_mode[mode]["timeouts"] += 1
                else:
                    per_mode[mode]["time"].append(rel_time[mode])
                    per_mode[mode]["probes"].append(rel_probes[mode])
        for mode in ExecutionMode.all_modes():
            stats_bucket = per_mode[mode]
            rows.append(
                {
                    "dataset": name,
                    "mode": str(mode),
                    "gmean_rel_time": geometric_mean(stats_bucket["time"]),
                    "gmean_rel_probes": geometric_mean(stats_bucket["probes"]),
                    "timeouts": stats_bucket["timeouts"],
                    "queries": len(queries),
                }
            )
    return rows


def main(**kwargs):
    rows = run(**kwargs)
    print(render_table(
        rows,
        ["dataset", "mode", "gmean_rel_time", "gmean_rel_probes",
         "timeouts", "queries"],
        title="Figure 12: relative execution vs COM (simulated CE benchmark)",
    ))
    return rows


if __name__ == "__main__":
    main()
