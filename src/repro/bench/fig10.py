"""Figure 10: greedy join-ordering heuristics vs the exhaustive optimum.

Random join trees (root degree 2-5, other nodes 0-3 children); for each
match-probability range, the cost ratio of each heuristic's plan to the
exhaustive (Algorithm 1) optimum under the COM cost model.
"""

from __future__ import annotations

import numpy as np

from ..core.costmodel import com_probes_per_join
from ..core.optimizer import exhaustive_optimal, greedy_order
from ..workloads.random_trees import (
    MATCH_PROBABILITY_RANGES,
    random_join_tree,
    random_stats,
)
from .runner import render_table

__all__ = ["run", "main"]

HEURISTICS = ["rank", "result_size", "survival"]


def _order_cost(query, stats, order):
    """Total expected COM hash probes of a join order."""
    return sum(com_probes_per_join(query, stats, order).values())


def run(num_trees=100, max_nodes=16, fo_range=(1.0, 10.0), seed=0):
    """Return Figure 10 rows: cost-ratio distribution per heuristic/range.

    ``max_nodes`` defaults to 16 (the paper uses up to 20); the
    exhaustive DP is exponential in the worst case and pure-Python, so
    the default keeps the bench fast.  Pass ``max_nodes=20`` for the
    paper's exact setting.
    """
    rows = []
    for m_range in MATCH_PROBABILITY_RANGES:
        ratios = {heuristic: [] for heuristic in HEURISTICS}
        for i in range(num_trees):
            tree_seed = seed * 100_003 + i
            query = random_join_tree(max_nodes=max_nodes, seed=tree_seed)
            stats = random_stats(
                query, m_range, fo_range, seed=tree_seed + 1
            )
            optimal = exhaustive_optimal(query, stats)
            optimal_cost = _order_cost(query, stats, optimal.order)
            for heuristic in HEURISTICS:
                plan = greedy_order(query, stats, heuristic)
                cost = _order_cost(query, stats, plan.order)
                ratios[heuristic].append(cost / max(optimal_cost, 1e-12))
        for heuristic in HEURISTICS:
            arr = np.asarray(ratios[heuristic])
            rows.append(
                {
                    "m_range": f"[{m_range[0]}-{m_range[1]}]",
                    "heuristic": heuristic,
                    "median_ratio": float(np.median(arr)),
                    "p75_ratio": float(np.percentile(arr, 75)),
                    "p95_ratio": float(np.percentile(arr, 95)),
                    "max_ratio": float(arr.max()),
                    "frac_optimal": float((arr < 1.0 + 1e-9).mean()),
                }
            )
    return rows


def main(**kwargs):
    rows = run(**kwargs)
    print(render_table(
        rows,
        ["m_range", "heuristic", "median_ratio", "p75_ratio",
         "p95_ratio", "max_ratio", "frac_optimal"],
        title=("Figure 10: cost ratio of greedy heuristics vs exhaustive "
               "optimum (COM cost model)"),
    ))
    return rows


if __name__ == "__main__":
    main()
