"""Shared experiment-running helpers for the figure benchmarks.

Besides the per-figure helpers (:func:`run_all_modes`,
:func:`render_table`, ...), this module hosts the **figure suite
runner**: :func:`run_figures` executes any subset of the paper's
figures, optionally fanned out over a :class:`ProcessPoolExecutor`
(``jobs > 1``) and optionally in **smoke mode** — drastically reduced
problem sizes per figure (:data:`SMOKE_PARAMS`) that exercise every
driver end-to-end in seconds, which is what CI runs on every push.
"""

from __future__ import annotations

import io
import math
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import redirect_stdout
from dataclasses import dataclass, field

from ..core.costmodel import CostWeights
from ..engine import BudgetExceededError, execute
from ..modes import ExecutionMode

__all__ = [
    "FigureResult",
    "ModeRun",
    "SMOKE_PARAMS",
    "run_all_modes",
    "run_figures",
    "relative_to",
    "render_table",
    "geometric_mean",
]

#: the paper's operation weights (Section 5.4)
PAPER_WEIGHTS = CostWeights()


@dataclass
class ModeRun:
    """Execution metrics of one mode on one query (or a timeout)."""

    mode: ExecutionMode
    wall_time: float = math.nan
    hash_probes: int = 0
    bitvector_probes: int = 0
    semijoin_probes: int = 0
    tuples_generated: int = 0
    output_size: int = 0
    weighted_cost: float = math.nan
    timed_out: bool = False

    @classmethod
    def from_result(cls, result):
        return cls(
            mode=result.mode,
            wall_time=result.wall_time,
            hash_probes=result.counters.hash_probes,
            bitvector_probes=result.counters.bitvector_probes,
            semijoin_probes=result.counters.semijoin_probes,
            tuples_generated=result.counters.tuples_generated,
            output_size=result.output_size,
            weighted_cost=result.counters.weighted_cost(PAPER_WEIGHTS),
        )

    @classmethod
    def timeout(cls, mode):
        return cls(mode=ExecutionMode(mode), timed_out=True)


def run_all_modes(
    catalog,
    query,
    order,
    modes=None,
    flat_output=True,
    child_orders=None,
    max_intermediate_tuples=20_000_000,
):
    """Execute a query under every mode; budget overruns become timeouts."""
    modes = modes or ExecutionMode.all_modes()
    runs = {}
    for mode in modes:
        try:
            result = execute(
                catalog,
                query,
                order,
                mode,
                flat_output=flat_output,
                child_orders=child_orders if ExecutionMode(mode).uses_semijoin else None,
                max_intermediate_tuples=max_intermediate_tuples,
            )
        except BudgetExceededError:
            runs[ExecutionMode(mode)] = ModeRun.timeout(mode)
            continue
        runs[ExecutionMode(mode)] = ModeRun.from_result(result)
    return runs


def relative_to(runs, baseline=ExecutionMode.COM, metric="wall_time"):
    """Per-mode metric normalized by the baseline mode's value."""
    base = getattr(runs[baseline], metric)
    ratios = {}
    for mode, run in runs.items():
        if run.timed_out or base in (0, 0.0) or math.isnan(base):
            ratios[mode] = math.inf if run.timed_out else math.nan
        else:
            ratios[mode] = getattr(run, metric) / base
    return ratios


def geometric_mean(values):
    """Geometric mean ignoring NaN; returns inf if any value is inf."""
    cleaned = [v for v in values if not (isinstance(v, float) and math.isnan(v))]
    if not cleaned:
        return math.nan
    if any(math.isinf(v) for v in cleaned):
        return math.inf
    log_sum = sum(math.log(max(v, 1e-12)) for v in cleaned)
    return math.exp(log_sum / len(cleaned))


# ----------------------------------------------------------------------
# Figure-suite runner (serial or process-parallel, full or smoke)
# ----------------------------------------------------------------------

#: per-figure reduced parameters for --smoke: every driver runs its full
#: code path on problem sizes that finish in seconds, so the whole
#: suite is CI-runnable on every push.
SMOKE_PARAMS = {
    "4": {"num_tasks": 8, "scale": 1.0},
    "6": {"num_samples": 8, "num_dimensions": 6},
    "10": {"num_trees": 8, "max_nodes": 10},
    "11": {"driver_size": 1_500, "shapes": ["star", "snowflake_3_2"],
           "m_ranges": [(0.1, 0.5)]},
    "12": {"num_queries": 2, "scale": 0.25},
    "13": {"driver_size": 50_000, "m_values": [0.2, 0.5, 0.8]},
    "14": {"driver_size": 1_500, "orders_per_query": 6},
    "15": {"driver_size": 1_500, "normal_sigmas": (0.5, 4.0),
           "exponential_means": (2.0, 10.0)},
    "16": {"driver_size": 600, "num_orders": 2,
           "ce_datasets": ("dblp",), "ce_scale": 0.15},
}


@dataclass
class FigureResult:
    """Outcome of one figure driver run (possibly in a worker process)."""

    figure: str
    ok: bool = True
    seconds: float = 0.0
    #: everything the driver printed (tables), shown by the CLI
    output: str = ""
    #: formatted traceback when the driver raised
    error: str = None
    rows: object = field(default=None, repr=False)


class _TeeIO(io.StringIO):
    """StringIO that also mirrors writes to another stream (live output)."""

    def __init__(self, mirror):
        super().__init__()
        self._mirror = mirror

    def write(self, text):
        self._mirror.write(text)
        return super().write(text)

    def flush(self):
        self._mirror.flush()
        super().flush()


def _run_figure(figure, smoke=False, mirror=None):
    """Run one figure driver, capturing stdout; never raises.

    ``mirror`` optionally receives the driver's output live as well
    (serial runs), so long full-scale figures stream instead of
    printing only on completion.  Module-level so it pickles for
    :class:`ProcessPoolExecutor`.
    """
    from . import FIGURES  # local import: avoids a circular module import

    kwargs = SMOKE_PARAMS.get(figure, {}) if smoke else {}
    buffer = _TeeIO(mirror) if mirror is not None else io.StringIO()
    start = time.perf_counter()
    try:
        with redirect_stdout(buffer):
            rows = FIGURES[figure].main(**kwargs)
    except Exception:  # noqa: BLE001 - reported to the caller
        return FigureResult(
            figure=figure,
            ok=False,
            seconds=time.perf_counter() - start,
            output=buffer.getvalue(),
            error=traceback.format_exc(),
        )
    return FigureResult(
        figure=figure,
        ok=True,
        seconds=time.perf_counter() - start,
        output=buffer.getvalue(),
        rows=rows,
    )


def run_figures(figures=None, jobs=1, smoke=False, on_result=None,
                stream=False):
    """Run figure drivers, serially or across worker processes.

    Parameters
    ----------
    figures:
        Figure ids (strings) to run; ``None`` means the full suite.
    jobs:
        Number of worker processes; ``1`` runs in-process.  The figures
        are independent, so this is an embarrassingly-parallel fan-out.
    smoke:
        Use the reduced :data:`SMOKE_PARAMS` problem sizes.
    on_result:
        Optional callable invoked with each :class:`FigureResult` as it
        completes (e.g. to stream output); results are also returned as
        a list in the order of ``figures``.
    stream:
        Serial runs only: mirror each driver's output to stdout live
        (long full-scale figures print as they go) in addition to
        capturing it in the result.  Ignored when ``jobs > 1`` (worker
        output would interleave).
    """
    from . import FIGURES

    if figures is None:
        figures = sorted(FIGURES, key=int)
    # dedupe (order-preserving): results are keyed per figure id, and
    # running the same deterministic driver twice is never useful
    figures = list(dict.fromkeys(str(figure) for figure in figures))
    unknown = [figure for figure in figures if figure not in FIGURES]
    if unknown:
        raise ValueError(
            f"unknown figure(s) {unknown}; available: {sorted(FIGURES, key=int)}"
        )
    results = {}
    if jobs > 1 and len(figures) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(figures))) as pool:
            futures = {
                pool.submit(_run_figure, figure, smoke): figure
                for figure in figures
            }
            for future in as_completed(futures):
                figure = futures[future]
                try:
                    result = future.result()
                except Exception:  # noqa: BLE001 - e.g. a killed worker
                    # Keep _run_figure's never-raises contract: a dead
                    # worker becomes a FAILED figure, not a lost suite.
                    result = FigureResult(
                        figure=figure, ok=False,
                        error=traceback.format_exc(),
                    )
                results[figure] = result
                if on_result is not None:
                    on_result(result)
    else:
        mirror = sys.stdout if stream else None
        for figure in figures:
            results[figure] = _run_figure(figure, smoke, mirror=mirror)
            if on_result is not None:
                on_result(results[figure])
    return [results[figure] for figure in figures]


def render_table(rows, columns, title=None, float_format="{:.3g}"):
    """Render dict-rows as an aligned text table (the bench output)."""
    lines = []
    if title:
        lines.append(title)

    def fmt(value):
        if isinstance(value, float):
            if math.isnan(value):
                return "-"
            if math.isinf(value):
                return "timeout"
            return float_format.format(value)
        return str(value)

    cells = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
