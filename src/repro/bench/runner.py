"""Shared experiment-running helpers for the figure benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.costmodel import CostWeights
from ..engine import BudgetExceededError, execute
from ..modes import ExecutionMode

__all__ = [
    "ModeRun",
    "run_all_modes",
    "relative_to",
    "render_table",
    "geometric_mean",
]

#: the paper's operation weights (Section 5.4)
PAPER_WEIGHTS = CostWeights()


@dataclass
class ModeRun:
    """Execution metrics of one mode on one query (or a timeout)."""

    mode: ExecutionMode
    wall_time: float = math.nan
    hash_probes: int = 0
    bitvector_probes: int = 0
    semijoin_probes: int = 0
    tuples_generated: int = 0
    output_size: int = 0
    weighted_cost: float = math.nan
    timed_out: bool = False

    @classmethod
    def from_result(cls, result):
        return cls(
            mode=result.mode,
            wall_time=result.wall_time,
            hash_probes=result.counters.hash_probes,
            bitvector_probes=result.counters.bitvector_probes,
            semijoin_probes=result.counters.semijoin_probes,
            tuples_generated=result.counters.tuples_generated,
            output_size=result.output_size,
            weighted_cost=result.counters.weighted_cost(PAPER_WEIGHTS),
        )

    @classmethod
    def timeout(cls, mode):
        return cls(mode=ExecutionMode(mode), timed_out=True)


def run_all_modes(
    catalog,
    query,
    order,
    modes=None,
    flat_output=True,
    child_orders=None,
    max_intermediate_tuples=20_000_000,
):
    """Execute a query under every mode; budget overruns become timeouts."""
    modes = modes or ExecutionMode.all_modes()
    runs = {}
    for mode in modes:
        try:
            result = execute(
                catalog,
                query,
                order,
                mode,
                flat_output=flat_output,
                child_orders=child_orders if ExecutionMode(mode).uses_semijoin else None,
                max_intermediate_tuples=max_intermediate_tuples,
            )
        except BudgetExceededError:
            runs[ExecutionMode(mode)] = ModeRun.timeout(mode)
            continue
        runs[ExecutionMode(mode)] = ModeRun.from_result(result)
    return runs


def relative_to(runs, baseline=ExecutionMode.COM, metric="wall_time"):
    """Per-mode metric normalized by the baseline mode's value."""
    base = getattr(runs[baseline], metric)
    ratios = {}
    for mode, run in runs.items():
        if run.timed_out or base in (0, 0.0) or math.isnan(base):
            ratios[mode] = math.inf if run.timed_out else math.nan
        else:
            ratios[mode] = getattr(run, metric) / base
    return ratios


def geometric_mean(values):
    """Geometric mean ignoring NaN; returns inf if any value is inf."""
    cleaned = [v for v in values if not (isinstance(v, float) and math.isnan(v))]
    if not cleaned:
        return math.nan
    if any(math.isinf(v) for v in cleaned):
        return math.inf
    log_sum = sum(math.log(max(v, 1e-12)) for v in cleaned)
    return math.exp(log_sum / len(cleaned))


def render_table(rows, columns, title=None, float_format="{:.3g}"):
    """Render dict-rows as an aligned text table (the bench output)."""
    lines = []
    if title:
        lines.append(title)

    def fmt(value):
        if isinstance(value, float):
            if math.isnan(value):
                return "-"
            if math.isinf(value):
                return "timeout"
            return float_format.format(value)
        return str(value)

    cells = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
