"""Figure 14: predicted cost tracks measured execution time.

Synthetic queries of the four shapes; for each, random join orders are
executed under COM and the measured wall-clock time is compared with
the cost model's prediction (weighted probes per driver tuple).  The
paper shows a scatter plot; this driver reports the Pearson and
Spearman correlations plus representative scatter points.
"""

from __future__ import annotations

import numpy as np

from ..core.costmodel import CostWeights, plan_cost
from ..core.stats import stats_from_data
from ..engine import execute
from ..modes import ExecutionMode
from ..workloads.shapes import PAPER_SHAPES
from ..workloads.synthetic import generate_dataset, specs_from_ranges
from .runner import render_table

__all__ = ["run", "main"]


def _spearman(x, y):
    rx = np.argsort(np.argsort(x)).astype(float)
    ry = np.argsort(np.argsort(y)).astype(float)
    if rx.std() == 0 or ry.std() == 0:
        return float("nan")
    return float(np.corrcoef(rx, ry)[0, 1])


def run(
    driver_size=10_000,
    orders_per_query=40,
    m_range=(0.1, 0.5),
    fo_range=(1.0, 6.0),
    repeats=1,
    seed=0,
):
    """Return (summary_rows, scatter) for Figure 14.

    ``scatter`` is a list of (shape, predicted_cost, measured_seconds)
    triples; summary rows carry per-shape and pooled correlations.
    """
    weights = CostWeights()
    scatter = []
    summary = []
    all_pred, all_time = [], []
    for shape_name, builder in PAPER_SHAPES.items():
        query = builder()
        data_seed = seed + hash(shape_name) % 10_000
        specs = specs_from_ranges(query, m_range, fo_range, seed=data_seed)
        dataset = generate_dataset(query, driver_size, specs, seed=data_seed)
        stats = stats_from_data(dataset.catalog, query)
        rng = np.random.default_rng(seed + 17)
        predicted, measured = [], []
        for _ in range(orders_per_query):
            order = query.random_order(rng)
            cost = plan_cost(
                query, stats, order, ExecutionMode.COM, flat_output=True
            ).total(weights)
            times = []
            for _ in range(repeats):
                result = execute(
                    dataset.catalog, query, order, ExecutionMode.COM,
                    flat_output=True,
                )
                times.append(result.wall_time)
            elapsed = min(times)
            predicted.append(cost)
            measured.append(elapsed)
            scatter.append((shape_name, cost, elapsed))
        predicted = np.asarray(predicted)
        measured = np.asarray(measured)
        all_pred.extend(predicted)
        all_time.extend(measured)
        if predicted.std() > 0 and measured.std() > 0:
            pearson = float(np.corrcoef(predicted, measured)[0, 1])
        else:
            pearson = float("nan")
        summary.append(
            {
                "shape": shape_name,
                "orders": orders_per_query,
                "pearson_r": pearson,
                "spearman_r": _spearman(predicted, measured),
                "cost_spread": float(predicted.max() / max(predicted.min(), 1e-12)),
                "time_spread": float(measured.max() / max(measured.min(), 1e-12)),
            }
        )
    all_pred = np.asarray(all_pred)
    all_time = np.asarray(all_time)
    summary.append(
        {
            "shape": "ALL",
            "orders": len(all_pred),
            "pearson_r": float(np.corrcoef(all_pred, all_time)[0, 1]),
            "spearman_r": _spearman(all_pred, all_time),
            "cost_spread": float(all_pred.max() / max(all_pred.min(), 1e-12)),
            "time_spread": float(all_time.max() / max(all_time.min(), 1e-12)),
        }
    )
    return summary, scatter


def main(**kwargs):
    summary, _scatter = run(**kwargs)
    print(render_table(
        summary,
        ["shape", "orders", "pearson_r", "spearman_r",
         "cost_spread", "time_spread"],
        title=("Figure 14: predicted cost vs measured execution time "
               "(COM, random join orders)"),
    ))
    return summary


if __name__ == "__main__":
    main()
