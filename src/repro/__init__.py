"""repro: reproduction of "Optimizing Queries with Many-to-Many Joins".

Kalumin & Deshpande, ICDE 2025 (arXiv:2412.16323).

Public API highlights
---------------------
* :class:`repro.JoinQuery`, :class:`repro.JoinEdge` — acyclic join
  trees rooted at a driver relation.
* :class:`repro.QueryStats`, :class:`repro.EdgeStats` — match
  probability / fanout statistics (Section 3.1).
* :func:`repro.plan_cost`, :func:`repro.exhaustive_optimal`,
  :func:`repro.greedy_order` — the cost model and optimizers
  (Sections 3.3-3.6).
* :func:`repro.execute`, :class:`repro.ExecutionMode` — the vectorized
  engine with all six strategies (Section 4).
* :mod:`repro.workloads` — synthetic benchmark, simulated CE datasets.
"""

from .analysis import (
    Diagnostic,
    PlanVerificationError,
    PlanVerifier,
    Severity,
    VerificationResult,
    verify_plan,
    verify_spec,
)
from .core import (
    Contradiction,
    CostWeights,
    EdgeStats,
    JoinEdge,
    JoinQuery,
    OptimizedPlan,
    ParseError,
    ParsedQuery,
    PlanCost,
    QueryStats,
    beam_order,
    best_driver,
    choose_optimizer,
    execute_cyclic,
    exhaustive_optimal,
    expected_output_size,
    greedy_order,
    idp_order,
    incremental_order_cost,
    optimize_sj,
    parse_query,
    plan_cost,
    spanning_tree_decomposition,
    stats_from_data,
    survival_probability,
)
from .engine import (
    BudgetExceededError,
    ExecutionResult,
    execute,
)
from .modes import ExecutionMode
from .planner import PhysicalPlan, PlanSpec, Planner
from .service import (
    AsyncQueryService,
    PlanCache,
    PreparedStatement,
    QueryReport,
    QuerySession,
)
from .storage import (
    Catalog,
    PartitionedTable,
    ShardedHashIndex,
    Table,
    load_catalog,
    partitioned_catalog,
    save_catalog,
)

__version__ = "1.1.0"

__all__ = [
    "AsyncQueryService",
    "BudgetExceededError",
    "Catalog",
    "Contradiction",
    "CostWeights",
    "Diagnostic",
    "EdgeStats",
    "ExecutionMode",
    "ExecutionResult",
    "JoinEdge",
    "JoinQuery",
    "OptimizedPlan",
    "ParseError",
    "ParsedQuery",
    "PartitionedTable",
    "PhysicalPlan",
    "PlanCache",
    "PlanCost",
    "PlanSpec",
    "PlanVerificationError",
    "PlanVerifier",
    "Planner",
    "PreparedStatement",
    "QueryReport",
    "QuerySession",
    "QueryStats",
    "Severity",
    "ShardedHashIndex",
    "Table",
    "VerificationResult",
    "beam_order",
    "best_driver",
    "choose_optimizer",
    "execute",
    "execute_cyclic",
    "exhaustive_optimal",
    "expected_output_size",
    "greedy_order",
    "idp_order",
    "incremental_order_cost",
    "load_catalog",
    "optimize_sj",
    "parse_query",
    "partitioned_catalog",
    "plan_cost",
    "save_catalog",
    "spanning_tree_decomposition",
    "stats_from_data",
    "survival_probability",
    "verify_plan",
    "verify_spec",
    "__version__",
]
