"""Vectorized query execution engine (Section 4)."""

from .bitvector import BitvectorFilter, default_num_bits
from .executor import (
    BudgetExceededError,
    ExecutionCounters,
    ExecutionResult,
    execute,
)
from .factorized import FactorizedNode, FactorizedResult
from .semijoin import ReductionResult, full_reduction

__all__ = [
    "BitvectorFilter",
    "BudgetExceededError",
    "ExecutionCounters",
    "ExecutionResult",
    "FactorizedNode",
    "FactorizedResult",
    "ReductionResult",
    "default_num_bits",
    "execute",
    "full_reduction",
]
