"""Query execution engine (Section 4): pipelines + swappable kernels.

The pipelines (:mod:`~repro.engine.executor`,
:mod:`~repro.engine.semijoin`, :mod:`~repro.engine.factorized`) encode
the paper's six strategies; the data-plane primitives they run on —
probes, gathers, repeats, mask evaluation — live behind the kernel
interface of :mod:`~repro.engine.kernels`, selectable per execution via
the ``execution`` knob (``"vectorized"`` NumPy kernels or the
pure-Python ``"interpreted"`` oracle, bit-identical by construction).
"""

from .bitvector import BitvectorFilter, default_num_bits
from .executor import (
    BudgetExceededError,
    ExecutionCounters,
    ExecutionResult,
    execute,
)
from .factorized import FactorizedNode, FactorizedResult
from .feedback import CardinalityMonitor, ReplanSignal, corrected_stats
from .kernels import (
    EXECUTION_CHOICES,
    InterpretedKernels,
    VectorizedKernels,
    get_kernels,
    resolve_execution,
)
from .semijoin import ReductionResult, full_reduction

__all__ = [
    "BitvectorFilter",
    "BudgetExceededError",
    "CardinalityMonitor",
    "EXECUTION_CHOICES",
    "ExecutionCounters",
    "ExecutionResult",
    "FactorizedNode",
    "FactorizedResult",
    "InterpretedKernels",
    "ReductionResult",
    "ReplanSignal",
    "VectorizedKernels",
    "corrected_stats",
    "default_num_bits",
    "execute",
    "full_reduction",
    "get_kernels",
    "resolve_execution",
]
