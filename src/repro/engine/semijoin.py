"""Phase-1 semi-join full reduction (Sections 3.6 and 4.5).

The practical Yannakakis variant used by the paper: relations are
reduced bottom-up — each internal node keeps only tuples with a match
in every (already reduced) child — ending with a fully reduced driver.
Leaves are never reduced.  Phase 2 (the actual joins) then runs with
the reduced row sets and needs no further match checks from parents.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReductionResult", "full_reduction"]


class ReductionResult:
    """Outcome of the phase-1 reduction pass.

    Attributes
    ----------
    reduced_rows:
        Mapping relation -> int64 array of surviving row indices.
    semijoin_probes:
        Total semi-join probes performed (the phase-1 cost metric).
    """

    def __init__(self, query):
        self.query = query
        self.reduced_rows = {}
        self.semijoin_probes = 0
        self._reduced_indexes = {}

    def rows(self, relation):
        return self.reduced_rows[relation]

    def reduction_ratio(self, relation, original_size):
        """Fraction of the relation surviving phase 1."""
        if original_size == 0:
            return 1.0
        return len(self.reduced_rows[relation]) / original_size

    def reduced_index(self, catalog, relation, attribute):
        """Hash index on ``attribute`` over the *reduced* rows.

        Built through :meth:`~repro.storage.Table.build_hash_index`, so
        a partitioned relation reduced on its shard key yields a
        sharded index (the surviving rows are re-routed shard by shard)
        and the reduction probes against it fan out like phase 2.
        """
        key = (relation, attribute)
        index = self._reduced_indexes.get(key)
        if index is None:
            index = catalog.table(relation).build_hash_index(
                attribute, rows=self.reduced_rows[relation]
            )
            self._reduced_indexes[key] = index
        return index


def full_reduction(query, catalog, child_orders=None, kernels=None):
    """Run the bottom-up semi-join pass; return a :class:`ReductionResult`.

    ``child_orders`` optionally fixes, per internal relation, the order
    in which its children are semi-joined (the optimizer picks
    increasing adjusted match probability ``m'``; any order yields the
    same reduction, only the probe count differs).  ``kernels`` selects
    the execution kernels the membership probes run on (defaults to the
    vectorized set); index builds are structure work and stay shared.
    """
    if kernels is None:
        from .kernels import get_kernels

        kernels = get_kernels("vectorized")
    child_orders = child_orders or {}
    result = ReductionResult(query)
    for relation in query.postorder():
        table = catalog.table(relation)
        rows = np.arange(len(table), dtype=np.int64)
        children = query.children(relation)
        order = child_orders.get(relation, children)
        if sorted(order) != sorted(children):
            raise ValueError(
                f"child order {order} does not cover the children of "
                f"{relation!r} ({children})"
            )
        for child in order:
            if len(rows) == 0:
                break
            edge = query.edge_to(child)
            keys = table.column(edge.parent_attr)[rows]
            index = result.reduced_index(catalog, child, edge.child_attr)
            result.semijoin_probes += len(rows)
            rows = rows[kernels.contains(index, keys)]
        result.reduced_rows[relation] = rows
    return result
