"""Bitvector filters for early pruning (Section 4.4).

Each join operator builds one bitvector from its build-side equi-join
column: keys are hashed into a power-of-two bit table.  Probing is a
hash-only membership check, so false positives occur (and are priced by
``eps`` in the Section 3.5 cost model); false negatives never occur, so
correctness is unaffected — spurious tuples are eliminated by the real
join later.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitvectorFilter", "default_num_bits"]

#: multiplier of build-side cardinality used to size the bit table
_BITS_PER_KEY = 16


def default_num_bits(num_keys):
    """Power-of-two bit-table size for a build side of ``num_keys``."""
    target = max(64, _BITS_PER_KEY * max(1, num_keys))
    return 1 << int(np.ceil(np.log2(target)))


def _mix(keys):
    """SplitMix64 finalizer: avalanche int64 keys into uint64 hashes."""
    h = keys.astype(np.uint64)
    h = (h + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    h ^= h >> np.uint64(30)
    h = (h * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    h ^= h >> np.uint64(27)
    h = (h * np.uint64(0x94D049BB133111EB)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    h ^= h >> np.uint64(31)
    return h


class BitvectorFilter:
    """A single-hash bitvector filter over a build-side key column."""

    def __init__(self, keys, num_bits=None):
        keys = np.asarray(keys)
        if num_bits is None:
            num_bits = default_num_bits(len(keys))
        if num_bits & (num_bits - 1):
            raise ValueError(f"num_bits must be a power of two, got {num_bits}")
        self.num_bits = num_bits
        self._mask = np.uint64(num_bits - 1)
        self.bits = np.zeros(num_bits, dtype=bool)
        if len(keys):
            self.bits[_mix(keys) & self._mask] = True
        self.num_keys = len(keys)

    def might_contain(self, keys):
        """Vectorized membership check; one bitvector probe per key."""
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        return self.bits[_mix(keys) & self._mask]

    def contains_one(self, key):
        """Single-key membership check (the interpreted kernels' probe).

        Hashes through the same vectorized mixer on a 1-element array,
        so a tuple-at-a-time loop over ``contains_one`` is bit-identical
        to one :meth:`might_contain` batch.
        """
        return bool(self.might_contain(np.asarray([key]))[0])

    @property
    def fill_fraction(self):
        """Fraction of set bits — the expected false-positive rate."""
        return float(self.bits.sum()) / self.num_bits

    def measured_false_positive_rate(self, absent_keys):
        """Empirical false-positive rate on keys known to be absent."""
        absent_keys = np.asarray(absent_keys)
        if len(absent_keys) == 0:
            return 0.0
        return float(self.might_contain(absent_keys).mean())

    def __repr__(self):
        return (
            f"BitvectorFilter(bits={self.num_bits}, keys={self.num_keys}, "
            f"fill={self.fill_fraction:.4f})"
        )
