"""Worst-case-optimal (generic) join for residual-heavy cyclic cores.

:func:`execute_cyclic <repro.core.cyclic.execute_cyclic>` evaluates a
cyclic query as *tree join + residual filters*: the spanning tree runs
on the full engine and every residual predicate is re-applied to the
expanded flat result.  On dense cyclic graphs with skewed keys that
tree join materializes intermediates a worst-case-optimal evaluation
would never produce — the classic triangle-query blowup the generic
join (NPRR / LeapFrog TrieJoin family) avoids by joining one
*attribute* at a time instead of one relation at a time.

:func:`execute_wcoj` is that operator, built over the existing storage
structures and kernel split:

* **variables** are the equivalence classes of ``(relation, attribute)``
  pairs connected by the query's join predicates — tree edges and
  residuals alike, each applied exactly once (the edge XOR residual
  invariant the plan linter checks holds for both strategies);
* per relation, a *chain index* binds its attributes in the global
  variable order: after binding attribute ``k`` every row carries a
  dense group id for its value combination over the first ``k`` bound
  attributes, and the sorted code array ``group_id * d + value_rank``
  supports both prefix-extension scans
  (:meth:`~repro.engine.kernels.VectorizedKernels.bounded_ranges`) and
  membership probes
  (:meth:`~repro.engine.kernels.VectorizedKernels.find_positions`) —
  the intersection work of the generic join, vectorized;
* every per-candidate step routes through the kernel object, so the
  operator has the same two data planes as the rest of the engine: the
  NumPy path and the pure-Python interpreted oracle produce
  bit-identical results and :class:`~repro.engine.executor.ExecutionCounters`.

Exactness mirrors the tree+filter strategy predicate for predicate:
a predicate the spanning tree covers compares keys with hash-index
probe semantics (``find_positions``: the searchsorted common dtype,
lossy collisions resolve leftmost), a residual predicate compares with
exact numeric semantics (``find_positions_exact`` /
:func:`~repro.core.cyclic.exact_equal`), and values *propagate* — a
membership hit assigns the matched relation its own stored value, which
is what later predicates compare against.  That is what makes results
bit-identical to tree+filter even on NaN / bool / ``>= 2**53`` keys.

All structures are built from base-row-ordered columns
(:meth:`~repro.storage.Table.gather`), so results and counters are
independent of the catalog's physical layout (shard counts included).
"""

from __future__ import annotations

import time

import numpy as np

from ..modes import ExecutionMode
from ..storage.hashindex import HashIndex
from .executor import BudgetExceededError, ExecutionCounters, ExecutionResult
from .kernels import get_kernels, resolve_execution

__all__ = [
    "execute_wcoj",
    "plan_variable_order",
    "variable_classes",
]


def variable_classes(predicates):
    """The join variables of a predicate set.

    ``predicates`` is an iterable of the parser's 4-tuples
    ``(rel_a, attr_a, rel_b, attr_b)`` (tree edges and residuals
    together).  Returns a list of *classes* — tuples of sorted
    ``(relation, attribute)`` members transitively connected by
    predicates — in canonical (sorted) order.  Each class is one
    variable of the generic join: all its members must hold equal
    values in every result tuple.
    """
    parent = {}

    def find(member):
        while parent[member] != member:
            parent[member] = parent[parent[member]]
            member = parent[member]
        return member

    for rel_a, attr_a, rel_b, attr_b in predicates:
        a, b = (rel_a, attr_a), (rel_b, attr_b)
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b
    groups = {}
    for member in sorted(parent):
        groups.setdefault(find(member), []).append(member)
    return [tuple(members) for members in sorted(groups.values())]


def plan_variable_order(classes, distincts):
    """A deterministic greedy variable-elimination order.

    Starts at the globally smallest variable (minimum distinct count
    over its members), then repeatedly picks the cheapest variable that
    shares a relation with an already-bound one (falling back to the
    global minimum when none connects), ties broken on the canonical
    member rendering.  ``distincts`` maps ``(relation, attribute)`` to
    a (possibly estimated) distinct-value count; the executor derives
    it from the actual per-attribute uniques, the planner from cached
    statistics — any order is *correct*, the heuristic only shapes the
    frontier sizes.
    """
    remaining = list(range(len(classes)))
    bound_rels = set()
    order = []
    while remaining:
        def rank(index):
            members = classes[index]
            connected = any(rel in bound_rels for rel, _ in members)
            smallest = min(distincts.get(m, 0) for m in members)
            return (bool(order) and not connected, smallest, members)

        pick = min(remaining, key=rank)
        remaining.remove(pick)
        order.append(classes[pick])
        bound_rels.update(rel for rel, _ in classes[pick])
    return tuple(order)


class _Level:
    """The per-variable micro-plan: expand one member, check the rest."""

    __slots__ = ("members", "ops")

    def __init__(self, members, ops):
        self.members = members
        #: ordered micro-ops:
        #: ``("expand", member)`` — enumerate candidate values of a
        #: member (constrained by its relation's chain group when the
        #: relation is already bound);
        #: ``("assign", kind, source, target)`` — one-to-one membership
        #: assignment of an unvalued member from a valued one;
        #: ``("check", kind, parent_member, child_member)`` — pairwise
        #: filter between two valued members.
        self.ops = ops


def _plan_levels(order, predicates, distincts):
    """One :class:`_Level` per variable of ``order``.

    ``predicates`` is a list of ``(key4, kind)`` with ``kind`` in
    ``("tree", "residual")``.  Predicate semantics dictate the op
    shapes:

    * a *tree* predicate carries hash-index probe semantics, which are
      **directional** — parent values probe the child's key set, and a
      lossy-upcast collision resolves to the child's leftmost colliding
      key.  It may therefore only ``assign`` parent→child; with both
      ends already valued it becomes a collision-aware ``check``
      (probe position must equal the child's assigned value rank).
    * a *residual* predicate is exact numeric equality — symmetric, and
      one-to-one on a unique-value array (two distinct stored values of
      one dtype cannot both exactly equal the same number), so it may
      ``assign`` in either direction or ``check`` pairwise.

    When no predicate can value a remaining member (e.g. a tree child
    is valued but its parent is not), a secondary ``expand`` enumerates
    a deterministically-chosen unvalued member and the blocked
    predicates become checks.  Expansion choices prefer already-bound
    relations, then members that are not tree children (so the common
    two-member tree class expands at the parent and assigns forward),
    then small distinct counts, with a canonical tie-break.
    """
    member_class = {
        member: index
        for index, members in enumerate(order)
        for member in members
    }
    class_predicates = [[] for _ in order]
    for key, kind in predicates:
        class_predicates[member_class[(key[0], key[1])]].append((key, kind))

    bound_rels = set()
    levels = []
    for index, members in enumerate(order):
        ranked = sorted(
            class_predicates[index],
            key=lambda entry: (entry[1] != "tree", entry[0]),
        )
        tree_children = {
            (key[2], key[3]) for key, kind in ranked if kind == "tree"
        }

        def expand_rank(member):
            return (
                member[0] not in bound_rels,
                member in tree_children,
                distincts.get(member, 0),
                member,
            )

        ops = []
        valued = set()
        pending = list(ranked)
        ops.append(("expand", min(members, key=expand_rank)))
        valued.add(ops[0][1])
        while True:
            progressed = False
            for position, (key, kind) in enumerate(pending):
                parent_m = (key[0], key[1])
                child_m = (key[2], key[3])
                if parent_m in valued and child_m in valued:
                    ops.append(("check", kind, parent_m, child_m))
                elif kind == "tree":
                    if parent_m in valued:
                        ops.append(("assign", kind, parent_m, child_m))
                        valued.add(child_m)
                    else:
                        continue
                elif parent_m in valued:
                    ops.append(("assign", kind, parent_m, child_m))
                    valued.add(child_m)
                elif child_m in valued:
                    ops.append(("assign", kind, child_m, parent_m))
                    valued.add(parent_m)
                else:
                    continue
                pending.pop(position)
                progressed = True
                break
            if progressed:
                continue
            unvalued = [m for m in members if m not in valued]
            if not unvalued:
                break
            pick = min(unvalued, key=expand_rank)
            ops.append(("expand", pick))
            valued.add(pick)
        levels.append(_Level(tuple(members), tuple(ops)))
        bound_rels.update(rel for rel, _ in members)
    return levels


def _base_column(table, attr):
    """A column in base-row order (layout-independent structure build)."""
    return table.gather(
        np.arange(len(table), dtype=np.int64), columns=[attr]
    )[attr]


def execute_wcoj(
    catalog,
    plan,
    mode=ExecutionMode.COM,
    order=None,
    collect_output=False,
    expansion_batch=8192,
    max_intermediate_tuples=50_000_000,
    variable_order=None,
    execution="auto",
):
    """Evaluate a cyclic plan with the worst-case-optimal strategy.

    Same calling convention and return shape as
    :func:`~repro.core.cyclic.execute_cyclic` —
    ``(output_size, execution_result, output_rows)`` — so
    :meth:`~repro.planner.PhysicalPlan.execute` can route either
    strategy.  ``mode`` and ``order`` are recorded on the result for
    plan compatibility but do not steer the evaluation: the operator
    joins one variable at a time, not one relation at a time.

    ``variable_order`` optionally pins the elimination order (the
    planner passes the order it costed, which plan fingerprints cover);
    ``None`` derives the same greedy order from the actual per-attribute
    distinct counts.  Any order over the query's variable classes is
    correct — a mismatched set of classes raises ``ValueError``.

    Counters: each level counts one ``hash_probe`` per frontier prefix
    against the expansion relation and every generated candidate as
    ``tuples_generated``; membership checks count per candidate —
    ``semijoin_probes`` for tree-covered predicates, ``residual_checks``
    for residual predicates (each predicate applied exactly once, same
    as tree+filter).  The final expansion mirrors the flat driver's
    accounting.  ``peak_intermediate_tuples`` tracks the widest
    candidate pool / frontier / expansion batch — the quantity the
    strategy exists to shrink.
    """
    mode = ExecutionMode(mode)
    execution = resolve_execution(execution)
    kernels = get_kernels(execution)
    query = plan.query
    start = time.perf_counter()
    counters = ExecutionCounters()

    predicates = [
        ((edge.parent, edge.parent_attr, edge.child, edge.child_attr),
         "tree")
        for edge in query.edges
    ]
    predicates += [(residual.key, "residual") for residual in plan.residuals]
    classes = variable_classes(key for key, _ in predicates)

    # -- phase A: per-attribute value ranks (shared structure build) ---
    build_start = time.perf_counter()
    uniques = {}
    ranks = {}
    for members in classes:
        for rel, attr in members:
            if (rel, attr) in uniques:
                continue
            column = _base_column(catalog.table(rel), attr)
            uniques[(rel, attr)], ranks[(rel, attr)] = np.unique(
                column, return_inverse=True
            )
    distincts = {member: len(values) for member, values in uniques.items()}

    if variable_order is not None:
        supplied = [tuple(tuple(member) for member in members)
                    for members in variable_order]
        if sorted(supplied) != classes:
            raise ValueError(
                "variable_order does not cover this query's variable "
                f"classes: got {supplied}, expected {classes}"
            )
        resolved_order = tuple(supplied)
    else:
        resolved_order = plan_variable_order(classes, distincts)
    levels = _plan_levels(resolved_order, predicates, distincts)

    # -- phase B: per-relation chain indexes in binding order ----------
    # After binding attribute k of a relation, every row carries a dense
    # group id over its first k bound values; the sorted code array
    # ``group * d + rank`` is re-densified per step, so codes never
    # exceed |R|**2 and int64 never overflows.
    binding_sequence = []
    for level in levels:
        for op in level.ops:
            if op[0] == "expand":
                binding_sequence.append(op[1])
            elif op[0] == "assign":
                binding_sequence.append(op[3])
    row_groups = {}
    step_codes = {}
    for rel, attr in binding_sequence:
        if rel not in row_groups:
            row_groups[rel] = np.zeros(
                len(catalog.table(rel)), dtype=np.int64
            )
        codes_per_row = (
            row_groups[rel] * np.int64(distincts[(rel, attr)])
            + ranks[(rel, attr)]
        )
        codes = np.unique(codes_per_row)
        row_groups[rel] = np.searchsorted(codes, codes_per_row)
        step_codes[(rel, attr)] = codes
    last_step = {}
    for rel, attr in binding_sequence:
        last_step[rel] = (rel, attr)
    final_index = {
        rel: HashIndex(groups) for rel, groups in row_groups.items()
    }
    group_counts = {
        rel: np.bincount(groups, minlength=len(step_codes[last_step[rel]]))
        for rel, groups in row_groups.items()
    }
    index_build_seconds = time.perf_counter() - build_start

    # -- variable elimination ------------------------------------------
    frontier = {}  # relation -> dense group id per frontier prefix
    width = 1
    for level in levels:
        parent = np.arange(width, dtype=np.int64)
        new_groups = {}
        values = {}
        value_ranks = {}

        def current_group(rel):
            if rel in new_groups:
                return new_groups[rel]
            if rel in frontier:
                return frontier[rel][parent]
            return None

        for op in level.ops:
            if op[0] == "expand":
                member = op[1]
                rel = member[0]
                codes = step_codes[member]
                d = np.int64(distincts[member])
                counters.count_hash_probes(rel, len(parent))
                groups = current_group(rel)
                if groups is not None:
                    starts, counts = kernels.bounded_ranges(
                        codes, groups * d, (groups + 1) * d
                    )
                    positions = kernels.concat_ranges(starts, counts)
                    spread = kernels.repeat_rows(
                        np.arange(len(parent), dtype=np.int64), counts
                    )
                    rank = codes[positions] % d
                else:
                    # first binding of this relation: step codes are the
                    # value ranks themselves, every candidate extends
                    # with all of them
                    fanout = np.full(len(parent), int(d), dtype=np.int64)
                    positions = kernels.concat_ranges(
                        np.zeros(len(parent), dtype=np.int64), fanout
                    )
                    spread = kernels.repeat_rows(
                        np.arange(len(parent), dtype=np.int64), fanout
                    )
                    rank = positions
                parent = parent[spread]
                new_groups = {
                    r: g[spread] for r, g in new_groups.items()
                }
                values = {m: v[spread] for m, v in values.items()}
                value_ranks = {
                    m: r[spread] for m, r in value_ranks.items()
                }
                new_groups[rel] = positions
                values[member] = uniques[member][rank]
                value_ranks[member] = rank
                counters.tuples_generated += len(parent)
                counters.note_intermediate(len(parent))
                if len(parent) > max_intermediate_tuples:
                    raise BudgetExceededError(
                        "WCOJ", rel, len(parent), max_intermediate_tuples
                    )
            elif op[0] == "assign":
                _, kind, source, target = op
                source_values = values[source]
                if kind == "tree":
                    counters.semijoin_probes += len(source_values)
                    rank = kernels.find_positions(
                        uniques[target], source_values
                    )
                else:
                    counters.residual_checks += len(source_values)
                    rank = kernels.find_positions_exact(
                        uniques[target], source_values
                    )
                target_rel = target[0]
                previous = current_group(target_rel)
                if previous is None:
                    previous = np.zeros(len(parent), dtype=np.int64)
                code = previous * np.int64(distincts[target]) + rank
                support = kernels.find_positions(step_codes[target], code)
                keep = np.flatnonzero((rank >= 0) & (support >= 0))
                parent = parent[keep]
                new_groups = {
                    r: g[keep] for r, g in new_groups.items()
                }
                values = {m: v[keep] for m, v in values.items()}
                value_ranks = {
                    m: r[keep] for m, r in value_ranks.items()
                }
                new_groups[target_rel] = support[keep]
                values[target] = uniques[target][rank[keep]]
                value_ranks[target] = rank[keep]
            else:
                _, kind, parent_member, child_member = op
                if kind == "tree":
                    # collision-aware pairwise form of the hash probe:
                    # the parent value must land on the child's assigned
                    # rank (a lossy-upcast collision resolves leftmost,
                    # exactly as a HashIndex probe would)
                    counters.semijoin_probes += len(parent)
                    probe = kernels.find_positions(
                        uniques[child_member], values[parent_member]
                    )
                    keep = np.flatnonzero(
                        probe == value_ranks[child_member]
                    )
                else:
                    counters.residual_checks += len(parent)
                    match = kernels.equal_mask(
                        values[parent_member], values[child_member]
                    )
                    keep = np.flatnonzero(match)
                parent = parent[keep]
                new_groups = {
                    r: g[keep] for r, g in new_groups.items()
                }
                values = {m: v[keep] for m, v in values.items()}
                value_ranks = {
                    m: r[keep] for m, r in value_ranks.items()
                }

        frontier = {
            rel: groups[parent] for rel, groups in frontier.items()
            if rel not in new_groups
        }
        frontier.update(new_groups)
        width = len(parent)
        counters.note_intermediate(width)

    # -- final expansion (mirrors the flat driver's accounting) --------
    expansion_order = sorted(frontier)
    weights = np.ones(width, dtype=np.float64)
    for rel in expansion_order:
        weights *= group_counts[rel][frontier[rel]]
    total_estimate = float(weights.sum())
    if total_estimate > max_intermediate_tuples:
        raise BudgetExceededError(
            "WCOJ", "<expansion>", int(total_estimate),
            max_intermediate_tuples,
        )

    output_size = 0
    collected = [] if collect_output else None
    begin = 0
    while begin < width:
        end = begin + 1
        batch_rows = weights[begin]
        while (
            end < width
            and end - begin < expansion_batch
            and batch_rows + weights[end] <= 4_000_000
        ):
            batch_rows += weights[end]
            end += 1
        chunk = slice(begin, end)
        frame = {}
        pointer = np.arange(end - begin, dtype=np.int64)
        for rel in expansion_order:
            group_keys = frontier[rel][chunk][pointer]
            counters.count_hash_probes(rel, len(group_keys))
            lookup = kernels.lookup(final_index[rel], group_keys)
            matches = lookup.matching_rows()
            for other in frame:
                frame[other] = kernels.repeat_rows(
                    frame[other], lookup.counts
                )
            pointer = kernels.repeat_rows(pointer, lookup.counts)
            frame[rel] = matches
            counters.tuples_generated += len(matches)
            counters.note_intermediate(len(matches))
        output_size += len(pointer)
        if collected is not None and len(pointer):
            collected.append(frame)
        begin = end

    output_rows = None
    if collect_output:
        if collected:
            output_rows = {
                rel: np.concatenate([batch[rel] for batch in collected])
                for rel in collected[0]
            }
        else:
            output_rows = {
                rel: np.empty(0, dtype=np.int64) for rel in query.relations
            }

    shards_used = max(
        (getattr(catalog.table(rel), "num_shards", 1)
         for rel in query.relations),
        default=1,
    )
    result = ExecutionResult(
        mode=mode,
        order=list(order) if order is not None
        else list(query.non_root_relations),
        output_size=output_size,
        counters=counters,
        wall_time=time.perf_counter() - start,
        output_rows=output_rows,
        factorized=None,
        index_build_seconds=index_build_seconds,
        shards_used=shards_used,
        execution=execution,
    )
    return output_size, result, output_rows
