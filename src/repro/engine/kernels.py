"""The execution-kernel layer: vectorized data plane, interpreted oracle.

Every data-plane primitive the engine executes per tuple batch — hash
probes, semi-join membership tests, bitvector probes, match expansion
(repeat / range concatenation), residual-predicate key comparison, and
base-row-id gather/remap — is routed through a *kernel object* so the
whole data plane can be swapped as a unit:

* :class:`VectorizedKernels` (the default) delegates to the NumPy
  implementations that live with their data structures
  (:meth:`~repro.storage.hashindex.HashIndex.lookup`, ``np.repeat``,
  :func:`~repro.storage.hashindex.concat_ranges`,
  :func:`~repro.core.cyclic.exact_equal`, ...) — array in, array out,
  no per-tuple interpreter work;
* :class:`InterpretedKernels` is the pure-Python tuple-at-a-time
  **oracle**: dict-based group lookups, list-append expansion, scalar
  comparisons.  It exists so the vectorized path has something
  bit-identical to be tested against — results, expansion order *and*
  every :class:`~repro.engine.executor.ExecutionCounters` field must
  match exactly, which is what keeps the cost model calibrated.

The boundary is the *data plane*: per-batch structure builds (hash
indexes, the partitioned layout, the factorized grouping tables) stay
shared — they are built once per execution, not per tuple, and both
paths must probe the same build-side structures for the counters to
agree.  The interpreted kernels derive their dict views *from* those
structures (:meth:`~repro.storage.hashindex.HashIndex.iter_groups`),
then do every per-key probe in the interpreter.

Selection is the ``execution`` knob (``"vectorized"`` /
``"interpreted"`` / ``"auto"``) threaded from
:class:`~repro.planner.Planner` / :class:`~repro.service.QuerySession`
down to :func:`~repro.engine.executor.execute`.  ``"auto"`` resolves to
the :data:`REPRO_EXECUTION` environment variable when set (CI forces
``interpreted`` there so the oracle cannot rot) and to ``"vectorized"``
otherwise; explicit choices are never overridden by the environment.
"""

from __future__ import annotations

import bisect
import os
import weakref

import numpy as np

from ..storage.hashindex import concat_ranges as _np_concat_ranges

__all__ = [
    "EXECUTION_CHOICES",
    "INTERPRETED",
    "REPRO_EXECUTION",
    "VECTORIZED",
    "InterpretedKernels",
    "VectorizedKernels",
    "get_kernels",
    "resolve_execution",
]

#: accepted values of the ``execution`` knob
EXECUTION_CHOICES = ("vectorized", "interpreted", "auto")

#: environment variable that redirects ``execution="auto"`` (only
#: ``"auto"`` — explicit choices always win); CI sets it to
#: ``interpreted`` to run the whole suite on the oracle path
REPRO_EXECUTION = "REPRO_EXECUTION"

_exact_equal = None  # lazily bound to repro.core.cyclic.exact_equal


def resolve_execution(execution=None):
    """The concrete kernel set a request resolves to.

    ``None`` means ``"auto"``.  ``"auto"`` resolves to the
    :data:`REPRO_EXECUTION` environment variable when it is set (it must
    name a concrete path), else ``"vectorized"``.  Explicit
    ``"vectorized"`` / ``"interpreted"`` resolve to themselves — the
    environment never overrides an explicit choice, so equivalence
    tests can pin both paths no matter how CI is configured.  The
    resolved string is what plan fingerprints, :class:`PlanSpec` s and
    the service plan-cache key carry.
    """
    if execution is None:
        execution = "auto"
    if execution not in EXECUTION_CHOICES:
        raise ValueError(
            f"execution must be one of {EXECUTION_CHOICES}, got {execution!r}"
        )
    if execution != "auto":
        return execution
    forced = os.environ.get(REPRO_EXECUTION)
    if forced:
        if forced not in ("vectorized", "interpreted"):
            raise ValueError(
                f'{REPRO_EXECUTION} must be "vectorized" or "interpreted", '
                f"got {forced!r}"
            )
        return forced
    return "vectorized"


def get_kernels(execution=None):
    """The kernel singleton for an ``execution`` request (resolves
    ``"auto"`` via :func:`resolve_execution`)."""
    return (
        VECTORIZED if resolve_execution(execution) == "vectorized"
        else INTERPRETED
    )


# ----------------------------------------------------------------------
# Vectorized kernels (the default data plane)
# ----------------------------------------------------------------------


class VectorizedKernels:
    """NumPy data plane: delegates to the storage layer's batch APIs."""

    name = "vectorized"

    def lookup(self, index, keys):
        """Probe a key batch; a result with ``counts`` / ``matched_mask``
        / ``matching_rows()`` grouped per probe key in probe order."""
        return index.lookup(keys)

    def contains(self, index, keys):
        """Semi-join membership mask for a probe batch."""
        return index.contains(keys)

    def bitvector_contains(self, bitvector, keys):
        """Bitvector probe mask for a key batch."""
        return bitvector.might_contain(keys)

    def repeat_rows(self, values, counts):
        """``values`` repeated elementwise ``counts`` times (the frame
        fan-out of one join step)."""
        return np.repeat(values, counts)

    def concat_ranges(self, starts, lengths):
        """Concatenated ``arange(s, s + l)`` ranges (match expansion)."""
        return _np_concat_ranges(starts, lengths)

    def find_positions(self, sorted_unique, values):
        """Position of each value in an ascending unique array, ``-1``
        for misses.

        Comparison happens in the searchsorted common dtype — the same
        hash-index probe semantics as :meth:`lookup`: a lossy float64
        upcast collision resolves to the leftmost colliding position
        (``side="left"``), NaN probes and NaN array entries never match.
        """
        sorted_unique = np.asarray(sorted_unique)
        values = np.asarray(values)
        out = np.full(len(values), -1, dtype=np.int64)
        if not len(sorted_unique) or not len(values):
            return out
        pos = np.searchsorted(sorted_unique, values)
        clipped = np.minimum(pos, len(sorted_unique) - 1)
        hit = sorted_unique[clipped] == values
        out[hit] = clipped[hit]
        return out

    def find_positions_exact(self, sorted_unique, values):
        """Position of each value under exact numeric-key semantics.

        The positional analogue of :meth:`equal_mask`
        (:func:`~repro.core.cyclic.exact_equal`): integer/float pairs
        compare in integer space where the float is finite, exactly
        integral and int64-convertible, so huge keys at or beyond
        ``2**53`` never spuriously match after a lossy upcast; NaN
        matches nothing.
        """
        sorted_unique = np.asarray(sorted_unique)
        values = np.asarray(values)
        if sorted_unique.dtype == bool:
            sorted_unique = sorted_unique.astype(np.int64)
        if values.dtype == bool:
            values = values.astype(np.int64)
        out = np.full(len(values), -1, dtype=np.int64)
        if not len(sorted_unique) or not len(values):
            return out
        a_int = np.issubdtype(sorted_unique.dtype, np.integer)
        b_int = np.issubdtype(values.dtype, np.integer)
        if a_int == b_int:
            # same numeric family: the searchsorted comparison is
            # already exact (float/float NaN probes miss the == check)
            return self.find_positions(sorted_unique, values)
        if b_int:
            # int probes into a float array: an int can only equal its
            # exact float64 representation, which must round-trip back
            as_float = sorted_unique.astype(np.float64)
            pos = self.find_positions(as_float, values.astype(np.float64))
            hit = np.flatnonzero(pos >= 0)
            if len(hit):
                found = as_float[pos[hit]]
                in_range = (
                    np.isfinite(found)
                    & (found >= float(-(2 ** 63)))
                    & (found < float(2 ** 63))
                )
                exact = np.zeros(len(hit), dtype=bool)
                idx = np.flatnonzero(in_range)
                if len(idx):
                    exact[idx] = (
                        found[idx].astype(np.int64) == values[hit][idx]
                    )
                out[hit[exact]] = pos[hit[exact]]
            return out
        # float probes into an int array: only finite, exactly integral,
        # int64-convertible probes can match, compared in integer space
        # (mirrors exact_equal's convertibility test bit for bit)
        convertible = np.flatnonzero(
            np.isfinite(values)
            & (values >= float(-(2 ** 63)))
            & (values < float(2 ** 63))
        )
        if len(convertible):
            as_int = values[convertible].astype(np.int64)
            integral = as_int.astype(values.dtype) == values[convertible]
            idx = convertible[integral]
            pos = self.find_positions(
                sorted_unique.astype(np.int64), as_int[integral]
            )
            keep = pos >= 0
            out[idx[keep]] = pos[keep]
        return out

    def bounded_ranges(self, sorted_codes, lows, highs):
        """Per bound pair, the ``[start, start + count)`` slice of an
        ascending int64 code array falling inside ``[low, high)`` (the
        prefix-extension scan of the wcoj operator)."""
        sorted_codes = np.asarray(sorted_codes)
        starts = np.searchsorted(sorted_codes, np.asarray(lows),
                                 side="left")
        stops = np.searchsorted(sorted_codes, np.asarray(highs),
                                side="left")
        return (starts.astype(np.int64),
                (stops - starts).astype(np.int64))

    def original_rows(self, table, rows):
        """Physical row ids mapped to base-table ids (identity for
        ordinary tables)."""
        return table.original_rows(rows)

    def gather(self, table, attr, rows):
        """Column values for *base* row ids (layout-independent)."""
        return table.gather(np.asarray(rows, dtype=np.int64),
                            columns=[attr])[attr]

    def equal_mask(self, values_a, values_b):
        """Elementwise exact-key equality (residual predicates)."""
        global _exact_equal
        if _exact_equal is None:
            from ..core.cyclic import exact_equal

            _exact_equal = exact_equal
        return _exact_equal(values_a, values_b)

    def __repr__(self):
        return "VectorizedKernels()"


# ----------------------------------------------------------------------
# Interpreted kernels (the tuple-at-a-time oracle)
# ----------------------------------------------------------------------


class _InterpretedLookup:
    """Probe outcome of the interpreted path.

    Same surface as :class:`~repro.storage.hashindex.LookupResult`:
    ``counts`` aligned with the probe batch, ``matched_mask``,
    ``total_matches()`` and ``matching_rows()`` (flattened matches
    grouped per probe key, in probe order).
    """

    __slots__ = ("counts", "_groups")

    def __init__(self, counts, groups):
        self.counts = counts
        self._groups = groups

    def __len__(self):
        return len(self.counts)

    @property
    def matched_mask(self):
        return self.counts > 0

    def total_matches(self):
        return int(self.counts.sum())

    def matching_rows(self):
        out = []
        for rows in self._groups:
            out.extend(rows)
        return np.asarray(out, dtype=np.int64)


class InterpretedKernels:
    """Pure-Python tuple-at-a-time data plane — the correctness oracle.

    Probes run against *dict views* of the engine's hash indexes: each
    view maps a key (cast to the probe batch's comparison dtype, the
    same common type ``np.searchsorted`` would compare in) to the list
    of matching build-side row ids in index order, built once per
    (index, dtype) from :meth:`HashIndex.iter_groups` and cached
    weakly.  Building the view walks an existing vectorized structure —
    that is the shared build side both paths must agree on — but every
    per-key probe, every repeat, every comparison after that is plain
    Python, which is what makes this path the oracle: it computes the
    same answers with none of the vectorized machinery under test.

    Exactness notes (mirroring the vectorized semantics bit for bit):

    * keys are compared in ``np.result_type(index dtype, probe dtype)``
      — two int64 columns compare exactly (huge ints never collide); a
      float on either side compares in float64, exactly like a
      ``searchsorted`` upcast;
    * when a float64 cast collides two build keys, the view keeps the
      *first* group in ascending key order — ``searchsorted``'s
      ``side="left"`` position;
    * NaN never matches (build keys holding NaN are not inserted, NaN
      probes miss unconditionally).
    """

    name = "interpreted"

    def __init__(self):
        #: index -> {dtype tag -> {key: [row ids]}}, weak so views die
        #: with their index
        self._group_views = weakref.WeakKeyDictionary()
        #: table -> {attr -> base-row-ordered value list}
        self._column_views = weakref.WeakKeyDictionary()
        #: table -> base-row-id list (None entries never cached)
        self._base_views = weakref.WeakKeyDictionary()

    # -- dict views ------------------------------------------------------

    def _view(self, index, common):
        views = self._group_views.get(index)
        if views is None:
            views = {}
            self._group_views[index] = views
        tag = np.dtype(common).str
        view = views.get(tag)
        if view is None:
            view = {}
            cast = np.dtype(common).type
            for key, rows in index.iter_groups():
                key = cast(key).item()
                if key != key:  # NaN build keys can never match
                    continue
                # first group wins on a lossy-cast collision, matching
                # searchsorted's side="left" position
                view.setdefault(key, rows)
            views[tag] = view
        return view

    def _probe_view(self, index, keys):
        keys = np.asarray(keys)
        common = np.result_type(index.key_dtype, keys.dtype)
        view = self._view(index, common)
        return view, keys.astype(common, copy=False).tolist()

    def lookup(self, index, keys):
        view, probe_keys = self._probe_view(index, keys)
        counts = np.zeros(len(probe_keys), dtype=np.int64)
        groups = []
        for position, key in enumerate(probe_keys):
            rows = view.get(key) if key == key else None
            if rows:
                counts[position] = len(rows)
                groups.append(rows)
            else:
                groups.append(())
        return _InterpretedLookup(counts, groups)

    def contains(self, index, keys):
        view, probe_keys = self._probe_view(index, keys)
        return np.asarray(
            [key == key and key in view for key in probe_keys], dtype=bool
        )

    def bitvector_contains(self, bitvector, keys):
        keys = np.asarray(keys)
        return np.asarray(
            [bitvector.contains_one(key) for key in keys.tolist()],
            dtype=bool,
        )

    # -- expansion -------------------------------------------------------

    def repeat_rows(self, values, counts):
        values = np.asarray(values)
        out = []
        for value, count in zip(values.tolist(),
                                np.asarray(counts).tolist()):
            out.extend([value] * count)
        return np.asarray(out, dtype=values.dtype)

    def concat_ranges(self, starts, lengths):
        out = []
        for start, length in zip(np.asarray(starts).tolist(),
                                 np.asarray(lengths).tolist()):
            out.extend(range(start, start + length))
        return np.asarray(out, dtype=np.int64)

    def find_positions(self, sorted_unique, values):
        # Dict of array entries cast to the searchsorted common dtype;
        # first position wins on a lossy-cast collision, matching
        # side="left" resolution, and NaN entries/probes never match —
        # the same semantics as the vectorized searchsorted probe.
        sorted_unique = np.asarray(sorted_unique)
        values = np.asarray(values)
        common = np.result_type(sorted_unique.dtype, values.dtype)
        cast = np.dtype(common).type
        table = {}
        for position, value in enumerate(sorted_unique.tolist()):
            value = cast(value).item()
            if value != value:
                continue
            table.setdefault(value, position)
        out = []
        for value in values.astype(common, copy=False).tolist():
            out.append(-1 if value != value else table.get(value, -1))
        return np.asarray(out, dtype=np.int64)

    def find_positions_exact(self, sorted_unique, values):
        # Python numeric equality is exact across int/float/bool (no
        # lossy upcast, equal numbers hash equal) and NaN-propagating —
        # the same semantics exact_equal implements vectorized.
        table = {}
        for position, value in enumerate(np.asarray(sorted_unique).tolist()):
            if value != value:
                continue
            table.setdefault(value, position)
        out = []
        for value in np.asarray(values).tolist():
            out.append(-1 if value != value else table.get(value, -1))
        return np.asarray(out, dtype=np.int64)

    def bounded_ranges(self, sorted_codes, lows, highs):
        codes = np.asarray(sorted_codes).tolist()
        starts = []
        counts = []
        for low, high in zip(np.asarray(lows).tolist(),
                             np.asarray(highs).tolist()):
            start = bisect.bisect_left(codes, low)
            starts.append(start)
            counts.append(bisect.bisect_left(codes, high) - start)
        return (np.asarray(starts, dtype=np.int64),
                np.asarray(counts, dtype=np.int64))

    # -- base-row-id remapping and value gather --------------------------

    def original_rows(self, table, rows):
        rows = np.asarray(rows, dtype=np.int64)
        if table.base_row_ids() is None:
            return rows.copy()
        base = self._base_views.get(table)
        if base is None:
            base = table.base_row_ids().tolist()
            self._base_views[table] = base
        return np.asarray([base[row] for row in rows.tolist()],
                          dtype=np.int64)

    def gather(self, table, attr, rows):
        columns = self._column_views.get(table)
        if columns is None:
            columns = {}
            self._column_views[table] = columns
        values = columns.get(attr)
        if values is None:
            # one-time structure build (base-row-ordered value list);
            # the per-row picks below are the interpreted data plane
            values = table.gather(
                np.arange(len(table), dtype=np.int64), columns=[attr]
            )[attr].tolist()
            columns[attr] = values
        rows = np.asarray(rows, dtype=np.int64)
        return np.asarray([values[row] for row in rows.tolist()],
                          dtype=table.column(attr).dtype)

    # -- residual comparison ---------------------------------------------

    def equal_mask(self, values_a, values_b):
        # Python scalar comparison is exact across int/float (no lossy
        # upcast) and NaN-propagating (nan == anything is False) — the
        # same semantics exact_equal implements vectorized.
        pairs = zip(np.asarray(values_a).tolist(),
                    np.asarray(values_b).tolist())
        return np.asarray([a == b for a, b in pairs], dtype=bool)

    def __repr__(self):
        return "InterpretedKernels()"


#: the process-wide kernel singletons ``get_kernels`` hands out
VECTORIZED = VectorizedKernels()
INTERPRETED = InterpretedKernels()
