"""The vectorized left-deep pipeline executor (Section 4).

:func:`execute` runs a join order under any of the six strategies of
Section 4.1 (STD, COM, BVP+STD, BVP+COM, SJ+STD, SJ+COM) and returns an
:class:`ExecutionResult` carrying the output plus the paper's abstract
cost metrics: hash-table probes (per relation), bitvector probes,
semi-join probes and tuples generated.

All strategies produce identical flat results — the integration tests
verify this against a brute-force evaluator — and differ only in how
much intermediate work they perform, which is precisely what the
paper's evaluation measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.costmodel import CostWeights
from ..modes import ExecutionMode
from .bitvector import BitvectorFilter
from .factorized import FactorizedResult
from .kernels import get_kernels, resolve_execution
from .semijoin import full_reduction

__all__ = [
    "BudgetExceededError",
    "ExecutionCounters",
    "ExecutionResult",
    "execute",
]


class BudgetExceededError(RuntimeError):
    """Raised when an execution exceeds ``max_intermediate_tuples``.

    The paper's experiments report timed-out queries (mostly STD
    variants whose intermediate results explode); this exception is the
    reproduction's equivalent of such a timeout.
    """

    def __init__(self, mode, relation, size, budget):
        super().__init__(
            f"{mode}: intermediate result reached {size} tuples at join "
            f"with {relation!r} (budget {budget})"
        )
        self.mode = mode
        self.relation = relation
        self.size = size
        self.budget = budget


@dataclass
class ExecutionCounters:
    """Operation counts accumulated during one execution."""

    hash_probes: int = 0
    bitvector_probes: int = 0
    semijoin_probes: int = 0
    tuples_generated: int = 0
    #: residual-filter key comparisons (cyclic plans only; progressive,
    #: so filter k only counts the tuples filters 1..k-1 kept)
    residual_checks: int = 0
    #: flat tuples that entered the residual-filter stage (cyclic plans
    #: only) — the observed residual selectivity is
    #: ``output_size / residual_input_tuples``
    residual_input_tuples: int = 0
    #: high-water mark of materialized intermediate tuples (widest join
    #: frame / factorized node / pre-filter expansion / wcoj frontier);
    #: a size, not work, so it carries no weight in :meth:`weighted_cost`
    peak_intermediate_tuples: int = 0
    hash_probes_by_relation: dict = field(default_factory=dict)
    #: per-stage intermediate-tuple totals, keyed by the stage label
    #: passed to :meth:`note_intermediate` (the joined relation for
    #: pipeline joins, ``"<residuals>"`` for the cyclic pre-filter
    #: expansion).  Additive over disjoint driver partitions, which is
    #: what lets a distributed gather reconstruct the single-process
    #: ``peak_intermediate_tuples`` exactly: each labeled stage runs
    #: once per execution, so the merged peak is the max of the summed
    #: per-stage totals.  Unlabeled notes (wcoj frontiers) update only
    #: the peak.
    intermediate_tuples_by_stage: dict = field(default_factory=dict)

    def note_intermediate(self, size, stage=None):
        """Record an intermediate materialization high-water mark."""
        if size > self.peak_intermediate_tuples:
            self.peak_intermediate_tuples = int(size)
        if stage is not None:
            self.intermediate_tuples_by_stage[stage] = (
                self.intermediate_tuples_by_stage.get(stage, 0) + int(size)
            )

    def count_hash_probes(self, relation, probes):
        self.hash_probes += probes
        self.hash_probes_by_relation[relation] = (
            self.hash_probes_by_relation.get(relation, 0) + probes
        )

    def weighted_cost(self, weights=CostWeights()):
        """Scalar cost under the paper's probe weights (Section 5.4)."""
        return (
            weights.hash_probe * self.hash_probes
            + weights.bitvector_probe * self.bitvector_probes
            # residual checks are one vectorized key comparison each —
            # priced like a semi-join probe, matching the planner's
            # residual_filter_cost term
            + weights.semijoin_probe
            * (self.semijoin_probes + self.residual_checks)
            + weights.tuple_generation * self.tuples_generated
        )


@dataclass
class ExecutionResult:
    """Outcome of one query execution."""

    mode: ExecutionMode
    order: list
    output_size: int
    counters: ExecutionCounters
    wall_time: float
    #: flat output rows ({relation: row-index array}) if collected
    output_rows: dict = None
    #: the factorized result object (COM variants) if kept
    factorized: FactorizedResult = None
    #: wall time of the phase-2 hash-index build (sharded or merged)
    index_build_seconds: float = 0.0
    #: wall time of the phase-1 semi-join reduction (SJ variants)
    reduction_seconds: float = 0.0
    #: max shard fan-out among the build-side indexes (1 = unpartitioned)
    shards_used: int = 1
    #: resolved kernel path the run used ("vectorized" / "interpreted")
    execution: str = "vectorized"

    def weighted_cost(self, weights=CostWeights()):
        return self.counters.weighted_cost(weights)


def _bitvector_check_schedule(query, order):
    """When each relation's bitvector is applied on the probe side.

    Identical scheduling to the cost model
    (:func:`repro.core.costmodel._bvp_check_schedule`): a bitvector is
    checked as soon as its parent attribute is available.
    """
    checks_after = {"scan": []}
    for relation in order:
        checks_after[relation] = []
    for relation in order:
        parent = query.parent(relation)
        event = "scan" if parent == query.root else parent
        checks_after[event].append(relation)
    return checks_after


def _build_bitvectors(query, catalog, reduction=None, num_bits=None):
    """One bitvector per non-root relation, over its build-side keys."""
    filters = {}
    for edge in query.edges:
        table = catalog.table(edge.child)
        keys = table.column(edge.child_attr)
        if reduction is not None:
            keys = keys[reduction.rows(edge.child)]
        filters[edge.child] = BitvectorFilter(keys, num_bits=num_bits)
    return filters


def _remap_factorized_rows(result, catalog, kernels):
    """Translate a finished factorized result to base-table row ids.

    During the pipeline, node rows are physical (re-clustered) ids —
    probes fetch key values through them.  Once every join and check
    has run they are pure payload, so mapping them through
    ``original_rows`` (the identity for ordinary tables) makes every
    expansion path — ``expand``, ``expand_all``,
    ``expand_depth_first`` — yield the same layout-independent ids as
    ``output_rows``.
    """
    for relation, node in result.nodes.items():
        node.rows = kernels.original_rows(catalog.table(relation), node.rows)


def _build_indexes(query, catalog, reduction=None):
    """Hash index per non-root relation on its join attribute."""
    indexes = {}
    for edge in query.edges:
        if reduction is not None:
            indexes[edge.child] = reduction.reduced_index(
                catalog, edge.child, edge.child_attr
            )
        else:
            indexes[edge.child] = catalog.hash_index(edge.child, edge.child_attr)
    return indexes


# ----------------------------------------------------------------------
# COM (factorized) pipeline
# ----------------------------------------------------------------------


def _run_factorized(query, catalog, order, indexes, bitvectors, checks_after,
                    counters, budget, driver_rows, kernels, monitor=None):
    result = FactorizedResult(query, driver_rows)

    def apply_check(relation_checked):
        edge = query.edge_to(relation_checked)
        parent_node = result.node(edge.parent)
        alive_idx = parent_node.alive_indices()
        keys = catalog.table(edge.parent).column(edge.parent_attr)[
            parent_node.rows[alive_idx]
        ]
        counters.bitvector_probes += len(keys)
        keep = kernels.bitvector_contains(bitvectors[relation_checked], keys)
        if not keep.all():
            parent_node.alive[alive_idx[~keep]] = False
            result.propagate_deaths()

    if bitvectors is not None:
        for relation in checks_after["scan"]:
            apply_check(relation)

    for relation in order:
        edge = query.edge_to(relation)
        parent_node = result.node(edge.parent)
        alive_idx = parent_node.alive_indices()
        keys = catalog.table(edge.parent).column(edge.parent_attr)[
            parent_node.rows[alive_idx]
        ]
        counters.count_hash_probes(relation, len(keys))
        lookup = kernels.lookup(indexes[relation], keys)
        matched = lookup.matched_mask
        if not matched.all():
            parent_node.alive[alive_idx[~matched]] = False
        total_matches = int(lookup.counts.sum())
        if monitor is not None:
            # before the budget check: a blown-up join should trigger a
            # replan (which may avoid the explosion) before a hard abort
            monitor.observe(relation, len(keys), total_matches)
        if total_matches > budget:
            raise BudgetExceededError("COM", relation, total_matches, budget)
        matches = lookup.matching_rows()
        parent_ptr = kernels.repeat_rows(alive_idx[matched],
                                         lookup.counts[matched])
        result.add_node(relation, matches, parent_ptr)
        counters.tuples_generated += len(matches)
        counters.note_intermediate(len(matches), stage=relation)
        result.propagate_deaths()
        if bitvectors is not None:
            for pending in checks_after[relation]:
                apply_check(pending)
    return result


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def execute(
    catalog,
    query,
    order=None,
    mode=ExecutionMode.COM,
    *,
    flat_output=True,
    collect_output=False,
    child_orders=None,
    bitvector_bits=None,
    expansion_batch=8192,
    max_intermediate_tuples=50_000_000,
    execution="auto",
    monitor=None,
    driver_rows=None,
):
    """Execute ``query`` in the given join ``order`` under ``mode``.

    Parameters
    ----------
    order:
        A precedence-respecting permutation of the non-root relations
        (default: the query's declaration order).
    flat_output:
        If True, COM variants pay the final expansion step (the flat
        result is generated batch-wise and counted; kept only when
        ``collect_output``).  STD variants always produce flat output.
    collect_output:
        Keep the output row indices on the result (memory permitting).
    child_orders:
        SJ variants: per-internal-relation semi-join child order
        (default: query declaration order; the optimizer supplies the
        increasing-``m'`` order).
    bitvector_bits:
        BVP variants: bit-table size override (power of two).
    max_intermediate_tuples:
        Abort with :class:`BudgetExceededError` beyond this size — the
        reproduction's equivalent of the paper's query timeouts.
    execution:
        ``"vectorized"`` (NumPy kernels, the default resolution),
        ``"interpreted"`` (the pure-Python tuple-at-a-time oracle) or
        ``"auto"`` (the :data:`~repro.engine.kernels.REPRO_EXECUTION`
        environment override, else vectorized).  Both paths produce
        bit-identical results and :class:`ExecutionCounters`.
    monitor:
        Optional :class:`~repro.engine.feedback.CardinalityMonitor`;
        each join step reports its probe/match counters to it (an O(1)
        check), and the monitor may abort the run by raising
        :class:`~repro.engine.feedback.ReplanSignal`.
    driver_rows:
        Optional subset of root-relation row ids to drive the pipeline
        with (default: every root row).  Semi-join variants intersect
        the subset with the phase-1 reduction, preserving reduction
        order.  The distributed scatter path partitions the driver row
        set across workers through this parameter; executing each
        disjoint subset and merging is exactly equivalent to one run
        over the union.
    """
    mode = ExecutionMode(mode)
    execution = resolve_execution(execution)
    kernels = get_kernels(execution)
    if order is None:
        order = list(query.non_root_relations)
    query.validate_order(order)
    counters = ExecutionCounters()
    start = time.perf_counter()

    reduction = None
    reduction_seconds = 0.0
    if mode.uses_semijoin:
        reduction = full_reduction(query, catalog, child_orders=child_orders,
                                   kernels=kernels)
        counters.semijoin_probes += reduction.semijoin_probes
        reduction_seconds = time.perf_counter() - start

    build_start = time.perf_counter()
    indexes = _build_indexes(query, catalog, reduction)
    index_build_seconds = time.perf_counter() - build_start
    shards_used = max(
        (getattr(index, "num_shards", 1) for index in indexes.values()),
        default=1,
    )
    bitvectors = None
    checks_after = None
    if mode.uses_bitvectors:
        bitvectors = _build_bitvectors(query, catalog, num_bits=bitvector_bits)
        checks_after = _bitvector_check_schedule(query, order)

    if reduction is not None:
        rows = reduction.rows(query.root)
        if driver_rows is not None:
            # keep the reduction's (ascending) order; drop rows outside
            # the requested driver subset
            mask = np.zeros(len(catalog.table(query.root)), dtype=bool)
            mask[np.asarray(driver_rows, dtype=np.int64)] = True
            rows = rows[mask[rows]]
        driver_rows = rows
    elif driver_rows is None:
        driver_rows = np.arange(len(catalog.table(query.root)), dtype=np.int64)
    else:
        driver_rows = np.asarray(driver_rows, dtype=np.int64)

    output_rows = None
    factorized = None
    if mode.factorized:
        factorized = _run_factorized(
            query, catalog, order, indexes, bitvectors, checks_after,
            counters, max_intermediate_tuples, driver_rows, kernels,
            monitor=monitor,
        )
        output_size = factorized.count_rows()
        _remap_factorized_rows(factorized, catalog, kernels)
        if flat_output:
            # Expansion step: generate the flat result batch-at-a-time
            # (kept only if requested); each generated tuple is work.
            if output_size > max_intermediate_tuples:
                raise BudgetExceededError(
                    str(mode), "<expansion>", output_size,
                    max_intermediate_tuples,
                )
            counters.tuples_generated += output_size
            collected = [] if collect_output else None
            for batch in factorized.expand(
                batch_entries=expansion_batch,
                max_rows=4_000_000,
                kernels=kernels,
            ):
                if collected is not None:
                    collected.append(batch)
            if collected is not None:
                if collected:
                    output_rows = {
                        rel: np.concatenate([b[rel] for b in collected])
                        for rel in collected[0]
                    }
                else:
                    output_rows = {
                        rel: np.empty(0, dtype=np.int64)
                        for rel in query.relations
                    }
    else:
        frame = _run_flat_driver(
            query, catalog, order, indexes, bitvectors, checks_after,
            counters, max_intermediate_tuples, driver_rows, kernels,
            monitor=monitor,
        )
        output_size = len(next(iter(frame.values()))) if frame else 0
        if collect_output:
            # Partitioned tables re-cluster rows; translate collected
            # row ids back to base-table ids so results are
            # layout-independent (the identity for ordinary tables).
            # The factorized branch already remapped its node rows.
            output_rows = {
                rel: kernels.original_rows(catalog.table(rel), rows)
                for rel, rows in frame.items()
            }

    wall_time = time.perf_counter() - start
    return ExecutionResult(
        mode=mode,
        order=list(order),
        output_size=output_size,
        counters=counters,
        wall_time=wall_time,
        output_rows=output_rows,
        factorized=factorized,
        index_build_seconds=index_build_seconds,
        reduction_seconds=reduction_seconds,
        shards_used=shards_used,
        execution=execution,
    )


def _run_flat_driver(query, catalog, order, indexes, bitvectors, checks_after,
                     counters, budget, driver_rows, kernels, monitor=None):
    """STD pipeline starting from an explicit driver row set."""
    frame = {query.root: np.asarray(driver_rows, dtype=np.int64)}

    def apply_check(relation_checked):
        edge = query.edge_to(relation_checked)
        parent_rows = frame[edge.parent]
        keys = catalog.table(edge.parent).column(edge.parent_attr)[parent_rows]
        counters.bitvector_probes += len(keys)
        keep = kernels.bitvector_contains(bitvectors[relation_checked], keys)
        for rel in list(frame):
            frame[rel] = frame[rel][keep]

    if bitvectors is not None:
        for relation in checks_after["scan"]:
            apply_check(relation)

    for relation in order:
        edge = query.edge_to(relation)
        parent_rows = frame[edge.parent]
        keys = catalog.table(edge.parent).column(edge.parent_attr)[parent_rows]
        counters.count_hash_probes(relation, len(keys))
        lookup = kernels.lookup(indexes[relation], keys)
        total_matches = int(lookup.counts.sum())
        if monitor is not None:
            # before the budget check: a blown-up join should trigger a
            # replan (which may avoid the explosion) before a hard abort
            monitor.observe(relation, len(keys), total_matches)
        if total_matches > budget:
            raise BudgetExceededError("STD", relation, total_matches, budget)
        matches = lookup.matching_rows()
        repeat = lookup.counts
        frame = {rel: kernels.repeat_rows(rows, repeat)
                 for rel, rows in frame.items()}
        frame[relation] = matches
        counters.tuples_generated += len(matches)
        counters.note_intermediate(len(matches), stage=relation)
        if bitvectors is not None:
            for pending in checks_after[relation]:
                apply_check(pending)
    return frame
