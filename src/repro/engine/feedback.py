"""Runtime cardinality feedback: observe, compare, signal a replan.

The execution pipelines already compute, at every join step, the two
integers an estimator cares about — how many keys were probed and how
many matches came back.  :class:`CardinalityMonitor` turns them into an
observed edge selectivity, compares it against the plan's estimate with
the running-maximum q-error helper
(:func:`repro.estimation.qerror.running_q_error` — one O(1) scalar
update per join, no arrays), and raises :class:`ReplanSignal` the
moment the running q-error crosses the configured threshold.

The signal is control flow, not an error (the same pattern as
:class:`~repro.engine.executor.BudgetExceededError`): the session-level
replan loop (:meth:`repro.service.session.QuerySession.execute` with
``robustness="auto"``) catches it, corrects the plan's statistics from
the monitor's observations via :func:`corrected_stats`, re-plans and
re-executes — bounded retries, with the final attempt running
unmonitored so repeated trips fall back to finishing a plan instead of
looping forever.
"""

from __future__ import annotations

from ..core.stats import edge_with_selectivity
from ..estimation.qerror import running_q_error

__all__ = ["CardinalityMonitor", "ReplanSignal", "corrected_stats"]


class ReplanSignal(Exception):
    """Observed cardinalities left the trusted region — abort and replan.

    Carries everything the replan loop needs: the join that tripped the
    threshold, the running q-error at that point, and every
    ``relation -> (probes, matches)`` observation made so far (the
    corrected statistics are built from these).
    """

    def __init__(self, relation, position, q_error, observed):
        super().__init__(
            f"running cardinality q-error {q_error:.3g} at join "
            f"{position} ({relation!r}) crossed the replan threshold"
        )
        self.relation = relation
        self.position = position
        self.q_error = q_error
        self.observed = dict(observed)


class CardinalityMonitor:
    """O(1)-per-join observed-vs-estimated selectivity tracker.

    ``expected`` maps each relation in the join order to its estimated
    edge selectivity ``m * fo``; :meth:`observe` is called once per join
    step with the probe/match counters the pipelines already hold, so
    monitoring adds two integer reads, one division and one comparison
    per join — nothing that can bend the warm-path throughput guard.
    """

    __slots__ = ("expected", "threshold", "observed", "_running",
                 "_position")

    def __init__(self, expected_selectivities, threshold):
        if threshold < 1.0:
            raise ValueError(
                f"replan threshold is a q-error (>= 1.0), got {threshold}"
            )
        self.expected = dict(expected_selectivities)
        self.threshold = float(threshold)
        #: relation -> (probes, matches), every join observed so far
        self.observed = {}
        self._running = 1.0  # an empty prefix is exact by definition
        self._position = 0

    @property
    def max_q_error(self):
        """Largest per-join q-error observed so far (1.0 = all exact)."""
        return self._running

    def observe(self, relation, probes, matches):
        """Record one join step; raises :class:`ReplanSignal` on a trip.

        A join probed with zero keys teaches nothing (the prefix frame
        already died) and is skipped, as is a relation the monitor has
        no estimate for.
        """
        self._position += 1
        expected = self.expected.get(relation)
        if expected is None or probes <= 0:
            return
        self.observed[relation] = (int(probes), int(matches))
        self._running = running_q_error(
            self._running, expected, matches / probes
        )
        if self._running > self.threshold:
            raise ReplanSignal(
                relation, self._position, self._running, self.observed
            )


def corrected_stats(stats, observed):
    """``QueryStats`` with every observed edge snapped to its measurement.

    ``observed`` is :attr:`CardinalityMonitor.observed` (or
    :attr:`ReplanSignal.observed`); each entry replaces the relation's
    estimated selectivity with ``matches / probes`` via
    :func:`repro.core.stats.edge_with_selectivity`.  Unobserved edges
    keep their estimates — the replanned suffix still needs them.
    """
    current = stats
    for relation, (probes, matches) in observed.items():
        if probes <= 0 or relation not in current.edge_stats:
            continue
        current = current.with_edge(
            relation,
            edge_with_selectivity(current.stats(relation),
                                  matches / probes),
        )
    return current
