"""Factorized intermediate results (the COM representation, Section 4).

A factorized result is a tree of per-relation entry arrays mirroring the
join tree.  Each :class:`FactorizedNode` holds, per entry:

* ``rows`` — the base-table row index the entry refers to;
* ``parent_ptr`` — the index of the entry of the *parent node* this
  entry was generated from (``-1`` for the driver);
* ``alive`` — the selection vector: cleared when a probe fails, and
  propagated both upward (a parent entry with no surviving children in
  some evaluated child node is dead) and downward (entries under a dead
  parent entry are dead), so that later joins probe exactly the entries
  that Eq. (1) prices.

The flat result is recovered by :meth:`FactorizedResult.expand`, a
vectorized breadth-first expansion (Section 4.3's "Result Expansion",
breadth-first variant), or merely counted by
:meth:`FactorizedResult.count_rows` without materialization.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FactorizedNode", "FactorizedResult"]


class FactorizedNode:
    """Entries of one relation inside a factorized result."""

    __slots__ = ("relation", "rows", "parent_ptr", "alive")

    def __init__(self, relation, rows, parent_ptr):
        self.relation = relation
        self.rows = np.asarray(rows, dtype=np.int64)
        self.parent_ptr = np.asarray(parent_ptr, dtype=np.int64)
        self.alive = np.ones(len(self.rows), dtype=bool)

    def __len__(self):
        return len(self.rows)

    @property
    def num_alive(self):
        return int(self.alive.sum())

    def alive_indices(self):
        return np.nonzero(self.alive)[0]

    def __repr__(self):
        return (
            f"FactorizedNode({self.relation!r}, entries={len(self)}, "
            f"alive={self.num_alive})"
        )


class FactorizedResult:
    """A factorized (compressed) intermediate or final query result.

    Nodes are added in join order by the executor; the driver node is
    created at scan time.  ``materialized_children`` tracks which join
    tree children of each node have been joined so far.
    """

    def __init__(self, query, driver_rows):
        self.query = query
        driver = FactorizedNode(
            query.root,
            driver_rows,
            np.full(len(driver_rows), -1, dtype=np.int64),
        )
        self.nodes = {query.root: driver}
        #: join order so far (relations with materialized nodes)
        self.joined = [query.root]

    def node(self, relation):
        try:
            return self.nodes[relation]
        except KeyError:
            raise KeyError(
                f"relation {relation!r} has not been joined yet; "
                f"joined so far: {self.joined}"
            ) from None

    def add_node(self, relation, rows, parent_ptr):
        """Attach a freshly joined relation's entries."""
        if relation in self.nodes:
            raise ValueError(f"relation {relation!r} already joined")
        node = FactorizedNode(relation, rows, parent_ptr)
        self.nodes[relation] = node
        self.joined.append(relation)
        return node

    # ------------------------------------------------------------------
    # Death propagation
    # ------------------------------------------------------------------

    def _materialized_children(self, relation):
        return [c for c in self.query.children(relation) if c in self.nodes]

    def propagate_deaths(self):
        """Restore up/down consistency of the alive masks.

        Upward: a parent entry must have at least one alive child entry
        in every *materialized* child node.  Downward: entries whose
        parent entry is dead are dead.  Two sweeps suffice because the
        structure is a tree.
        """
        # Upward sweep: children before parents.
        for relation in reversed(self._joined_preorder()):
            node = self.nodes[relation]
            for child_rel in self._materialized_children(relation):
                child = self.nodes[child_rel]
                counts = np.bincount(
                    child.parent_ptr[child.alive], minlength=len(node)
                )
                node.alive &= counts > 0
        # Downward sweep: parents before children.
        for relation in self._joined_preorder():
            node = self.nodes[relation]
            if relation == self.query.root:
                continue
            parent = self.nodes[self.query.parent(relation)]
            node.alive &= parent.alive[node.parent_ptr]

    def _joined_preorder(self):
        """Materialized relations, parents before children."""
        return [rel for rel in self.query.preorder() if rel in self.nodes]

    # ------------------------------------------------------------------
    # Counting and expansion
    # ------------------------------------------------------------------

    def _subtree_weights(self):
        """Per-entry count of flat result tuples below each entry.

        ``weights[rel][i]`` is the number of flat tuples the subtree of
        entry ``i`` of node ``rel`` represents (0 for dead entries).
        """
        weights = {}
        for relation in reversed(self._joined_preorder()):
            node = self.nodes[relation]
            w = node.alive.astype(np.float64)
            for child_rel in self._materialized_children(relation):
                child = self.nodes[child_rel]
                child_sums = np.bincount(
                    child.parent_ptr,
                    weights=weights[child_rel],
                    minlength=len(node),
                )
                w *= child_sums
            weights[relation] = w
        return weights

    def count_rows(self):
        """Number of flat result tuples, without materializing them."""
        weights = self._subtree_weights()
        return int(round(weights[self.query.root].sum()))

    def total_entries(self):
        """Total factorized entries (the compressed size)."""
        return sum(len(node) for node in self.nodes.values())

    def expand(self, batch_entries=None, max_rows=None, kernels=None):
        """Yield flat result batches as ``{relation: row_index_array}``.

        Breadth-first expansion: driver entries are processed in batches
        (``batch_entries`` alive driver entries per batch) and each
        batch is crossed with every joined node in pre-order.  The
        concatenation of batches is the full flat join result, one
        row-index per relation per output tuple.

        ``max_rows`` additionally caps the *output rows* per batch:
        driver entries are grouped so that each batch expands to at most
        ``max_rows`` tuples (single entries exceeding the cap get a
        batch of their own), bounding peak memory during expansion.

        ``kernels`` selects the execution kernels the per-entry cross
        products run on (defaults to the vectorized set); the one-time
        grouping of child entries by parent pointer is structure work
        and stays shared.
        """
        if kernels is None:
            from .kernels import get_kernels

            kernels = get_kernels("vectorized")
        driver = self.nodes[self.query.root]
        alive_driver = driver.alive_indices()
        if len(alive_driver) == 0:
            return
        if batch_entries is None:
            batch_entries = max(1, len(alive_driver))
        if max_rows is not None:
            weights = self._subtree_weights()[self.query.root][alive_driver]
            yield from self._expand_weight_bounded(
                alive_driver, weights, batch_entries, max_rows, kernels
            )
            return
        grouped = self._grouped_children()
        for begin in range(0, len(alive_driver), batch_entries):
            batch = alive_driver[begin:begin + batch_entries]
            yield self._expand_batch(batch, grouped, kernels)

    def _grouped_children(self):
        """Per node: alive entries grouped (sorted) by parent pointer."""
        grouped = {}
        for relation in self._joined_preorder():
            if relation == self.query.root:
                continue
            node = self.nodes[relation]
            alive_idx = node.alive_indices()
            sorter = np.argsort(node.parent_ptr[alive_idx], kind="stable")
            sorted_entries = alive_idx[sorter]
            sorted_parents = node.parent_ptr[sorted_entries]
            parent_size = len(self.nodes[self.query.parent(relation)])
            counts = np.bincount(sorted_parents, minlength=parent_size)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            grouped[relation] = (sorted_entries, starts, counts)
        return grouped

    def _expand_batch(self, driver_entries, grouped, kernels):
        """Cross one batch of driver entries with every joined node."""
        frame = {self.query.root: driver_entries}
        for relation in self._joined_preorder():
            if relation == self.query.root:
                continue
            parent_rel = self.query.parent(relation)
            parent_entries = frame[parent_rel]
            sorted_entries, starts, counts = grouped[relation]
            per_tuple_counts = counts[parent_entries]
            positions = kernels.concat_ranges(
                starts[parent_entries], per_tuple_counts
            )
            frame = {
                rel: kernels.repeat_rows(entries, per_tuple_counts)
                for rel, entries in frame.items()
            }
            frame[relation] = sorted_entries[positions]
        return {
            rel: self.nodes[rel].rows[entries]
            for rel, entries in frame.items()
        }

    def _expand_weight_bounded(self, alive_driver, weights, batch_entries,
                               max_rows, kernels):
        """Batches capped both by entry count and by expanded row count."""
        grouped = self._grouped_children()
        begin = 0
        n = len(alive_driver)
        while begin < n:
            end = begin + 1
            total = weights[begin]
            while (
                end < n
                and end - begin < batch_entries
                and total + weights[end] <= max_rows
            ):
                total += weights[end]
                end += 1
            yield self._expand_batch(alive_driver[begin:end], grouped, kernels)
            begin = end

    def expand_all(self):
        """Materialize the full flat result as ``{relation: rows}``."""
        batches = list(self.expand())
        if not batches:
            return {rel: np.empty(0, dtype=np.int64) for rel in self.joined}
        return {
            rel: np.concatenate([batch[rel] for batch in batches])
            for rel in batches[0]
        }

    def expand_depth_first(self):
        """Yield flat result tuples one at a time, depth-first.

        This is the paper's prototype expansion (Section 4.3): for each
        driver entry, walk the factorized tree with a row-index vector
        tracking the expansion state, backtracking after emitting each
        tuple.  Memory-optimal (one partial tuple at a time) but
        tuple-at-a-time — the vectorized breadth-first :meth:`expand`
        is the fast path; this generator exists for fidelity, for
        streaming consumers, and as a cross-check in tests.

        Yields ``{relation: row_index}`` dicts in depth-first order.
        """
        order = self._joined_preorder()
        children_of = {
            rel: [c for c in order if c != self.query.root
                  and self.query.parent(c) == rel]
            for rel in order
        }
        # Pre-group alive child entries by parent entry (python lists:
        # this path is deliberately tuple-at-a-time).
        grouped = {}
        for rel in order:
            if rel == self.query.root:
                continue
            node = self.nodes[rel]
            buckets = {}
            for entry in node.alive_indices().tolist():
                buckets.setdefault(int(node.parent_ptr[entry]), []).append(entry)
            grouped[rel] = buckets

        def emit(frame, remaining):
            if not remaining:
                yield {
                    rel: int(self.nodes[rel].rows[entry])
                    for rel, entry in frame.items()
                }
                return
            relation = remaining[0]
            parent_rel = self.query.parent(relation)
            parent_entry = frame[parent_rel]
            for entry in grouped[relation].get(parent_entry, []):
                frame[relation] = entry
                # Descend into this relation's subtree before moving on
                # to the next sibling relation (depth-first).
                yield from emit(frame, remaining[1:])
                del frame[relation]

        expansion_order = []

        def schedule(rel):
            for child in children_of[rel]:
                expansion_order.append(child)
                schedule(child)

        schedule(self.query.root)
        driver = self.nodes[self.query.root]
        for driver_entry in driver.alive_indices().tolist():
            yield from emit({self.query.root: driver_entry}, expansion_order)

    def __repr__(self):
        return (
            f"FactorizedResult(joined={self.joined}, "
            f"entries={self.total_entries()})"
        )
