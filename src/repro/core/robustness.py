"""Robustness analysis of plan choice (Section 3.7, Figure 6).

A strategy is *theta-fragile* / *Theta-robust* if the normalized
performance deviation of any plan from the best plan lies between
``theta`` and ``Theta``.  For a star query with ``n`` dimension tables
the paper derives, for the classical selectivity-based model,

.. math:: \\theta = (1 - s_{min}^{n-1}) / (1 - s_{min})

and shows the analogous bound for the new match-probability-based model
replaces ``s`` with ``m`` (shrinking the spread, since ``m <= 1`` while
``s`` can exceed 1).  This module provides those closed forms plus the
Figure 6 estimation-error simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .costmodel import com_plan_cost, std_plan_cost
from .query import JoinEdge, JoinQuery
from .stats import EdgeStats, QueryStats

__all__ = [
    "theta_fragility",
    "theta_robustness",
    "star_query",
    "best_star_order",
    "EstimationErrorResult",
    "estimation_error_experiment",
]


def _geometric_sum(x, terms):
    """``sum_{i=1}^{terms} x^i`` computed stably."""
    powers = np.power(float(x), np.arange(1, terms + 1))
    return float(powers.sum())


def theta_fragility(value_min, n):
    """Lower bound ``theta`` for a star query with ``n`` dimensions.

    ``value_min`` is ``s_min`` for the selectivity-based model or
    ``m_min`` for the match-probability model.
    """
    if n < 2:
        raise ValueError("a star query needs at least 2 dimension tables")
    if abs(1.0 - value_min) < 1e-12:
        return float(n - 1)
    return (1.0 - value_min ** (n - 1)) / (1.0 - value_min)


def theta_robustness(value_min, value_max, n):
    """Upper bound ``Theta`` for a star query with ``n`` dimensions."""
    if n < 3:
        return 0.0
    spread = value_max - value_min
    if abs(spread) < 1e-12:
        return 0.0
    total = _geometric_sum(value_max, n - 2) - _geometric_sum(value_min, n - 2)
    return total / spread


# ----------------------------------------------------------------------
# Figure 6 simulation
# ----------------------------------------------------------------------


def star_query(num_dimensions, driver="R0"):
    """A star query: the driver joins each dimension on its own key."""
    edges = [
        JoinEdge(driver, f"D{i}", f"k{i}", f"k{i}")
        for i in range(1, num_dimensions + 1)
    ]
    return JoinQuery(driver, edges)


def best_star_order(query, stats, model):
    """Optimal order of a star query under either cost model.

    For stars, the selectivity model's optimum is ascending ``s`` and
    the new model's optimum is ascending ``m`` (each join's probe count
    depends only on the product of earlier factors).
    """
    relations = query.non_root_relations
    if model == "selectivity":
        return sorted(relations, key=stats.selectivity)
    if model == "match":
        return sorted(relations, key=stats.m)
    raise ValueError(f"model must be 'selectivity' or 'match', got {model!r}")


def _plan_cost_for_model(query, stats, order, model):
    if model == "selectivity":
        return std_plan_cost(query, stats, order).hash_probes
    return com_plan_cost(query, stats, order, flat_output=False).hash_probes


@dataclass
class EstimationErrorResult:
    """One Figure 6 cell: distribution of percentage cost differences."""

    model: str
    m_range: tuple
    fo_range: tuple
    error_range: tuple
    pct_differences: np.ndarray

    @property
    def mean(self):
        return float(self.pct_differences.mean())

    @property
    def median(self):
        return float(np.median(self.pct_differences))

    @property
    def p90(self):
        return float(np.percentile(self.pct_differences, 90))


def estimation_error_experiment(
    m_range,
    fo_range,
    error_range,
    num_dimensions=10,
    num_samples=100,
    driver_size=1.0,
    seed=0,
):
    """Reproduce one cell of Figure 6.

    For each sample: draw true ``(m_i, fo_i)`` uniformly from the
    ranges, perturb each estimate multiplicatively by a factor drawn
    from ``1 +- U(error_range)``, pick the best order under the
    *estimated* stats, and report the percentage cost increase of that
    order over the true optimum, evaluated with the *true* stats —
    once per cost model.
    """
    rng = np.random.default_rng(seed)
    query = star_query(num_dimensions)
    results = {}
    diffs = {"selectivity": [], "match": []}
    for _ in range(num_samples):
        true_edges = {}
        est_edges = {}
        for relation in query.non_root_relations:
            m = rng.uniform(*m_range)
            fo = rng.uniform(*fo_range)
            true_edges[relation] = EdgeStats(m=m, fo=fo)
            err_m = rng.uniform(*error_range) * rng.choice([-1.0, 1.0])
            err_fo = rng.uniform(*error_range) * rng.choice([-1.0, 1.0])
            est_edges[relation] = EdgeStats(
                m=min(max(m * (1.0 + err_m), 1e-9), 1.0),
                fo=max(fo * (1.0 + err_fo), 1.0),
            )
        true_stats = QueryStats(driver_size, true_edges)
        est_stats = QueryStats(driver_size, est_edges)
        for model in ("selectivity", "match"):
            est_order = best_star_order(query, est_stats, model)
            opt_order = best_star_order(query, true_stats, model)
            est_cost = _plan_cost_for_model(query, true_stats, est_order, model)
            opt_cost = _plan_cost_for_model(query, true_stats, opt_order, model)
            if opt_cost <= 0:
                pct = 0.0
            else:
                pct = 100.0 * (est_cost - opt_cost) / opt_cost
            diffs[model].append(pct)
    for model, values in diffs.items():
        results[model] = EstimationErrorResult(
            model=model,
            m_range=tuple(m_range),
            fo_range=tuple(fo_range),
            error_range=tuple(error_range),
            pct_differences=np.asarray(values),
        )
    return results
