"""A SQL-subset parser for multi-way equi-join queries.

The paper states queries in SQL (Figure 1):

.. code-block:: sql

    select * from R1, R2, R3, R4, R5, R6
    where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D
      and R1.E = R5.E and R5.F = R6.F

This module parses that dialect — ``SELECT * FROM <relations> WHERE
<conjunctive equalities>`` — into a :class:`ParsedQuery` holding the
join graph plus any constant selection predicates (which the planner
pushes down to the relations, as the paper assumes in Section 2.1).

Supported grammar (case-insensitive keywords)::

    query      := SELECT '*' FROM rel (',' rel)* [WHERE conjunct (AND conjunct)*]
    rel        := identifier [[AS] identifier]
    conjunct   := colref '=' colref        -- join predicate
                | colref '=' literal       -- selection predicate
                | colref '=' '?'           -- selection placeholder
    colref     := identifier '.' identifier
    literal    := integer | quoted string

``?`` placeholders support prepared statements
(:meth:`repro.service.QuerySession.prepare`): the join structure is
planned once and the constants are bound per execution via
:meth:`ParsedQuery.bind`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .query import JoinEdge, JoinQuery

__all__ = [
    "Contradiction",
    "ParseError",
    "ParsedQuery",
    "Placeholder",
    "parse_query",
]


class ParseError(ValueError):
    """Raised for queries outside the supported grammar."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<string>'[^']*')
      | (?P<number>-?\d+)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<symbol>[*,.=()?])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "as"}


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected input at: {remainder[:30]!r}")
        pos = match.end()
        if match.group("string") is not None:
            tokens.append(("string", match.group("string")[1:-1]))
        elif match.group("number") is not None:
            tokens.append(("number", int(match.group("number"))))
        elif match.group("ident") is not None:
            word = match.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(("keyword", word.lower()))
            else:
                tokens.append(("ident", word))
        else:
            tokens.append(("symbol", match.group("symbol")))
    return tokens


@dataclass(frozen=True)
class Placeholder:
    """A ``?`` parameter marker in a selection predicate.

    ``index`` is the 0-based position among the query's placeholders in
    source order; :meth:`ParsedQuery.bind` substitutes constants by it.
    """

    index: int

    def __repr__(self):
        return f"?{self.index}"


@dataclass(frozen=True)
class Contradiction:
    """A provably-empty selection: one column equal to several distinct
    constants at once (``a.x = 1 AND a.x = 2``).

    Conjunctive selections on the same column dedupe when the literals
    are equal; distinct literals cannot both hold, so the predicate as a
    whole is unsatisfiable and the planner pushes down an empty relation
    (the executor then short-circuits to an empty result).  ``literals``
    keeps the distinct constants for error messages and cache keys.
    """

    literals: tuple

    def __repr__(self):
        rendered = " != ".join(repr(lit) for lit in self.literals)
        return f"Contradiction({rendered})"


def _same_literal(a, b):
    """Equality that never conflates types (``1`` vs ``'1'`` differ)."""
    return type(a) is type(b) and a == b


def _merge_selection_literal(existing, new):
    """Combine two constants asserted for the same column.

    Equal literals dedupe to one; distinct literals fold into a
    :class:`Contradiction` (which absorbs further duplicates likewise).
    """
    if isinstance(existing, Contradiction):
        if any(_same_literal(lit, new) for lit in existing.literals):
            return existing
        return Contradiction(existing.literals + (new,))
    if _same_literal(existing, new):
        return existing
    return Contradiction((existing, new))


@dataclass
class ParsedQuery:
    """The parsed form: relations, join predicates, selections."""

    #: alias -> table name (alias == name when no alias was given)
    relations: dict
    #: (alias_a, attr_a, alias_b, attr_b) equality joins
    join_predicates: list
    #: alias -> {column: literal} constant selections
    selections: dict = field(default_factory=dict)

    def table_name(self, alias):
        try:
            return self.relations[alias]
        except KeyError:
            raise KeyError(
                f"unknown relation alias {alias!r}; "
                f"known: {sorted(self.relations)}"
            ) from None

    @property
    def is_contradictory(self):
        """True when some selection is unsatisfiable (empty result)."""
        return any(
            isinstance(literal, Contradiction)
            for predicate in self.selections.values()
            for literal in predicate.values()
        )

    @property
    def placeholders(self):
        """All :class:`Placeholder` markers, in source (index) order."""
        found = [
            literal
            for predicate in self.selections.values()
            for literal in predicate.values()
            if isinstance(literal, Placeholder)
        ]
        return sorted(found, key=lambda p: p.index)

    @property
    def num_placeholders(self):
        return len(self.placeholders)

    def bind(self, *params):
        """Substitute constants for the ``?`` placeholders.

        Returns a new :class:`ParsedQuery` whose selections carry the
        given constants; ``params`` are matched to placeholders in
        source order and must bind every placeholder exactly.
        """
        expected = self.num_placeholders
        if len(params) != expected:
            raise ValueError(
                f"query has {expected} placeholder(s), got {len(params)} "
                f"parameter(s)"
            )
        selections = {
            alias: {
                column: (
                    params[literal.index]
                    if isinstance(literal, Placeholder)
                    else literal
                )
                for column, literal in predicate.items()
            }
            for alias, predicate in self.selections.items()
        }
        return ParsedQuery(
            relations=dict(self.relations),
            join_predicates=list(self.join_predicates),
            selections=selections,
        )

    def is_acyclic(self):
        """True when the join predicates form a forest over relations."""
        parent = {alias: alias for alias in self.relations}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for alias_a, _, alias_b, _ in self.join_predicates:
            root_a, root_b = find(alias_a), find(alias_b)
            if root_a == root_b:
                return False
            parent[root_a] = root_b
        return True

    def is_connected(self):
        """True when every relation is reachable through join predicates."""
        if not self.relations:
            return True
        adjacency = {alias: set() for alias in self.relations}
        for alias_a, _, alias_b, _ in self.join_predicates:
            adjacency[alias_a].add(alias_b)
            adjacency[alias_b].add(alias_a)
        seen = set()
        stack = [next(iter(self.relations))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node] - seen)
        return seen == set(self.relations)

    def to_join_query(self, driver=None):
        """Root the (acyclic, connected) join graph at ``driver``.

        Raises :class:`ParseError` when the graph is cyclic or
        disconnected (cartesian products are not supported; cyclic
        queries go through :mod:`repro.core.cyclic` instead).
        """
        if not self.is_connected():
            raise ParseError(
                "join graph is disconnected (cartesian products are not "
                "supported)"
            )
        if not self.is_acyclic():
            raise ParseError(
                "join graph is cyclic; use repro.core.cyclic to choose a "
                "spanning tree"
            )
        if driver is None:
            driver = next(iter(self.relations))
        if driver not in self.relations:
            raise KeyError(f"driver {driver!r} is not a query relation")
        adjacency = {alias: [] for alias in self.relations}
        for alias_a, attr_a, alias_b, attr_b in self.join_predicates:
            adjacency[alias_a].append((alias_b, attr_a, attr_b))
            adjacency[alias_b].append((alias_a, attr_b, attr_a))
        edges = []
        visited = {driver}
        stack = [driver]
        while stack:
            parent = stack.pop()
            for child, parent_attr, child_attr in adjacency[parent]:
                if child in visited:
                    continue
                visited.add(child)
                edges.append(JoinEdge(parent, child, parent_attr, child_attr))
                stack.append(child)
        return JoinQuery(driver, edges)


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0
        self.num_placeholders = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self.pos += 1
        return token

    def expect(self, kind, value=None):
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ParseError(
                f"expected {value or kind}, got {token[1]!r}"
            )
        return token

    def parse(self):
        self.expect("keyword", "select")
        self.expect("symbol", "*")
        self.expect("keyword", "from")
        relations = self._parse_relations()
        joins, selections = [], {}
        if self.peek() is not None:
            self.expect("keyword", "where")
            self._parse_conjuncts(relations, joins, selections)
        if self.peek() is not None:
            raise ParseError(f"trailing tokens at {self.peek()[1]!r}")
        return ParsedQuery(relations=relations, join_predicates=joins,
                           selections=selections)

    def _parse_relations(self):
        relations = {}
        while True:
            name = self.expect("ident")[1]
            alias = name
            token = self.peek()
            if token == ("keyword", "as"):
                self.next()
                alias = self.expect("ident")[1]
            elif token is not None and token[0] == "ident":
                alias = self.next()[1]
            if alias in relations:
                raise ParseError(f"duplicate relation alias {alias!r}")
            relations[alias] = name
            if self.peek() == ("symbol", ","):
                self.next()
                continue
            return relations

    def _parse_colref(self, relations):
        alias = self.expect("ident")[1]
        if alias not in relations:
            raise ParseError(f"unknown relation {alias!r} in predicate")
        self.expect("symbol", ".")
        column = self.expect("ident")[1]
        return alias, column

    def _parse_conjuncts(self, relations, joins, selections):
        while True:
            alias_a, attr_a = self._parse_colref(relations)
            self.expect("symbol", "=")
            token = self.peek()
            if token is None:
                raise ParseError("dangling '='")
            if token[0] in ("number", "string") or token == ("symbol", "?"):
                if token == ("symbol", "?"):
                    self.next()
                    literal = Placeholder(self.num_placeholders)
                    self.num_placeholders += 1
                else:
                    literal = self.next()[1]
                predicate = selections.setdefault(alias_a, {})
                if attr_a in predicate:
                    # A repeated selection on the same column would
                    # silently drop a placeholder (leaving a bind()
                    # index gap), so reject the duplicate outright when
                    # one is involved.
                    if isinstance(literal, Placeholder) or isinstance(
                        predicate[attr_a], Placeholder
                    ):
                        raise ParseError(
                            f"duplicate selection on {alias_a}.{attr_a} "
                            f"with a '?' placeholder"
                        )
                    # Conjunctive constants: equal literals dedupe,
                    # distinct ones make the predicate provably empty
                    # (never last-literal-wins).
                    predicate[attr_a] = _merge_selection_literal(
                        predicate[attr_a], literal
                    )
                else:
                    predicate[attr_a] = literal
            else:
                alias_b, attr_b = self._parse_colref(relations)
                if alias_a == alias_b:
                    raise ParseError(
                        f"self-join predicate on {alias_a!r} is not supported"
                    )
                joins.append((alias_a, attr_a, alias_b, attr_b))
            if self.peek() == ("keyword", "and"):
                self.next()
                continue
            return


def parse_query(sql):
    """Parse a SQL string into a :class:`ParsedQuery`."""
    tokens = _tokenize(sql)
    if not tokens:
        raise ParseError("empty query")
    return _Parser(tokens).parse()
