"""A SQL-subset parser for multi-way equi-join queries.

The paper states queries in SQL (Figure 1):

.. code-block:: sql

    select * from R1, R2, R3, R4, R5, R6
    where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D
      and R1.E = R5.E and R5.F = R6.F

This module parses that dialect — ``SELECT * FROM <relations> WHERE
<conjunctive equalities>`` — into a :class:`ParsedQuery` holding the
join graph plus any constant selection predicates (which the planner
pushes down to the relations, as the paper assumes in Section 2.1).

Supported grammar (case-insensitive keywords)::

    query      := SELECT '*' FROM rel (',' rel)* [WHERE conjunct (AND conjunct)*]
    rel        := identifier [[AS] identifier]
    conjunct   := colref '=' colref        -- join predicate
                | colref '=' literal       -- selection predicate
    colref     := identifier '.' identifier
    literal    := integer | quoted string
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .query import JoinEdge, JoinQuery

__all__ = ["ParseError", "ParsedQuery", "parse_query"]


class ParseError(ValueError):
    """Raised for queries outside the supported grammar."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<string>'[^']*')
      | (?P<number>-?\d+)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<symbol>[*,.=()])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "as"}


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected input at: {remainder[:30]!r}")
        pos = match.end()
        if match.group("string") is not None:
            tokens.append(("string", match.group("string")[1:-1]))
        elif match.group("number") is not None:
            tokens.append(("number", int(match.group("number"))))
        elif match.group("ident") is not None:
            word = match.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(("keyword", word.lower()))
            else:
                tokens.append(("ident", word))
        else:
            tokens.append(("symbol", match.group("symbol")))
    return tokens


@dataclass
class ParsedQuery:
    """The parsed form: relations, join predicates, selections."""

    #: alias -> table name (alias == name when no alias was given)
    relations: dict
    #: (alias_a, attr_a, alias_b, attr_b) equality joins
    join_predicates: list
    #: alias -> {column: literal} constant selections
    selections: dict = field(default_factory=dict)

    def table_name(self, alias):
        try:
            return self.relations[alias]
        except KeyError:
            raise KeyError(
                f"unknown relation alias {alias!r}; "
                f"known: {sorted(self.relations)}"
            ) from None

    def is_acyclic(self):
        """True when the join predicates form a forest over relations."""
        parent = {alias: alias for alias in self.relations}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for alias_a, _, alias_b, _ in self.join_predicates:
            root_a, root_b = find(alias_a), find(alias_b)
            if root_a == root_b:
                return False
            parent[root_a] = root_b
        return True

    def is_connected(self):
        """True when every relation is reachable through join predicates."""
        if not self.relations:
            return True
        adjacency = {alias: set() for alias in self.relations}
        for alias_a, _, alias_b, _ in self.join_predicates:
            adjacency[alias_a].add(alias_b)
            adjacency[alias_b].add(alias_a)
        seen = set()
        stack = [next(iter(self.relations))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node] - seen)
        return seen == set(self.relations)

    def to_join_query(self, driver=None):
        """Root the (acyclic, connected) join graph at ``driver``.

        Raises :class:`ParseError` when the graph is cyclic or
        disconnected (cartesian products are not supported; cyclic
        queries go through :mod:`repro.core.cyclic` instead).
        """
        if not self.is_connected():
            raise ParseError(
                "join graph is disconnected (cartesian products are not "
                "supported)"
            )
        if not self.is_acyclic():
            raise ParseError(
                "join graph is cyclic; use repro.core.cyclic to choose a "
                "spanning tree"
            )
        if driver is None:
            driver = next(iter(self.relations))
        if driver not in self.relations:
            raise KeyError(f"driver {driver!r} is not a query relation")
        adjacency = {alias: [] for alias in self.relations}
        for alias_a, attr_a, alias_b, attr_b in self.join_predicates:
            adjacency[alias_a].append((alias_b, attr_a, attr_b))
            adjacency[alias_b].append((alias_a, attr_b, attr_a))
        edges = []
        visited = {driver}
        stack = [driver]
        while stack:
            parent = stack.pop()
            for child, parent_attr, child_attr in adjacency[parent]:
                if child in visited:
                    continue
                visited.add(child)
                edges.append(JoinEdge(parent, child, parent_attr, child_attr))
                stack.append(child)
        return JoinQuery(driver, edges)


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self.pos += 1
        return token

    def expect(self, kind, value=None):
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ParseError(
                f"expected {value or kind}, got {token[1]!r}"
            )
        return token

    def parse(self):
        self.expect("keyword", "select")
        self.expect("symbol", "*")
        self.expect("keyword", "from")
        relations = self._parse_relations()
        joins, selections = [], {}
        if self.peek() is not None:
            self.expect("keyword", "where")
            self._parse_conjuncts(relations, joins, selections)
        if self.peek() is not None:
            raise ParseError(f"trailing tokens at {self.peek()[1]!r}")
        return ParsedQuery(relations=relations, join_predicates=joins,
                           selections=selections)

    def _parse_relations(self):
        relations = {}
        while True:
            name = self.expect("ident")[1]
            alias = name
            token = self.peek()
            if token == ("keyword", "as"):
                self.next()
                alias = self.expect("ident")[1]
            elif token is not None and token[0] == "ident":
                alias = self.next()[1]
            if alias in relations:
                raise ParseError(f"duplicate relation alias {alias!r}")
            relations[alias] = name
            if self.peek() == ("symbol", ","):
                self.next()
                continue
            return relations

    def _parse_colref(self, relations):
        alias = self.expect("ident")[1]
        if alias not in relations:
            raise ParseError(f"unknown relation {alias!r} in predicate")
        self.expect("symbol", ".")
        column = self.expect("ident")[1]
        return alias, column

    def _parse_conjuncts(self, relations, joins, selections):
        while True:
            alias_a, attr_a = self._parse_colref(relations)
            self.expect("symbol", "=")
            token = self.peek()
            if token is None:
                raise ParseError("dangling '='")
            if token[0] in ("number", "string"):
                literal = self.next()[1]
                selections.setdefault(alias_a, {})[attr_a] = literal
            else:
                alias_b, attr_b = self._parse_colref(relations)
                if alias_a == alias_b:
                    raise ParseError(
                        f"self-join predicate on {alias_a!r} is not supported"
                    )
                joins.append((alias_a, attr_a, alias_b, attr_b))
            if self.peek() == ("keyword", "and"):
                self.next()
                continue
            return


def parse_query(sql):
    """Parse a SQL string into a :class:`ParsedQuery`."""
    tokens = _tokenize(sql)
    if not tokens:
        raise ParseError("empty query")
    return _Parser(tokens).parse()
