"""Analytic cost model for left-deep plans (Sections 3.3 and 3.5).

This module implements:

* **survival probabilities** ``m_T`` for connected join subtrees
  (Section 3.3): the probability that a tuple of the subtree's root
  survives all join operators in the subtree, computed by the recursion

  .. math::  m_T = m_{T_r} (1 - (1 - m_{T_1} m_{T_2} \\cdots)^{fo_{T_r}})

* **Equation (1)**: the expected number of probes into the next join
  operator under the factorized execution model (COM), which expands
  fanouts only along the root-to-parent path and multiplies survival
  probabilities for every already-evaluated branch;

* the **standard (STD) cost model**, which pays one probe per fully
  materialized intermediate tuple;

* the **BVP cost models** of Section 3.5 for both STD and COM, counting
  bitvector probes and hash probes separately, with a false-positive
  probability ``eps``;

* a unified :func:`plan_cost` entry point covering all six strategies
  (semi-join variants are delegated to
  :mod:`repro.core.costmodel_sj`).

All formulas assume the paper's uniformity and independence
assumptions, plus the constant-fanout simplification (every matching
tuple has exactly ``fo`` matches); Section 5.6 / Figure 15 evaluates the
impact of that simplification empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..modes import ExecutionMode

__all__ = [
    "CostMemo",
    "CostWeights",
    "PlanCost",
    "survival_probability",
    "com_probes_per_join",
    "std_probes_per_join",
    "com_plan_cost",
    "std_plan_cost",
    "bvp_plan_cost",
    "expected_output_size",
    "plan_cost",
]


@dataclass(frozen=True)
class CostWeights:
    """Relative costs of the engine's primitive operations.

    The defaults follow Section 5.4: a bitvector or semi-join probe
    costs half a hash probe, and generating one tuple costs 1/14 of a
    hash probe (micro-benchmarked constants in the paper).
    """

    hash_probe: float = 1.0
    bitvector_probe: float = 0.5
    semijoin_probe: float = 0.5
    tuple_generation: float = 1.0 / 14.0


@dataclass
class PlanCost:
    """Expected operation counts for a plan, convertible to a scalar cost."""

    hash_probes: float = 0.0
    bitvector_probes: float = 0.0
    semijoin_probes: float = 0.0
    tuples_generated: float = 0.0
    #: expected probes into each relation's hash table, by relation name
    hash_probes_by_relation: dict = field(default_factory=dict)

    def total(self, weights=CostWeights()):
        """Scalar cost under the given operation weights."""
        return (
            weights.hash_probe * self.hash_probes
            + weights.bitvector_probe * self.bitvector_probes
            + weights.semijoin_probe * self.semijoin_probes
            + weights.tuple_generation * self.tuples_generated
        )

    def add(self, other):
        """Accumulate another PlanCost into this one (in place)."""
        self.hash_probes += other.hash_probes
        self.bitvector_probes += other.bitvector_probes
        self.semijoin_probes += other.semijoin_probes
        self.tuples_generated += other.tuples_generated
        for rel, probes in other.hash_probes_by_relation.items():
            self.hash_probes_by_relation[rel] = (
                self.hash_probes_by_relation.get(rel, 0.0) + probes
            )
        return self


# ----------------------------------------------------------------------
# Survival probabilities and Equation (1)
# ----------------------------------------------------------------------


class CostMemo:
    """Memoization tables for repeated survival / Eq. (1) evaluations.

    The exhaustive optimizer (Algorithm 1) evaluates ``_survival`` and
    ``_eq1_probes`` for overlapping joined sets across the DP's
    ``O(2^n)`` subsets; both quantities are pure functions of the
    *subset* (not the order), so a DP table over relation subsets
    eliminates the re-costing.  Subsets are encoded as integer
    bitmasks (one bit per relation, pseudo bitvector nodes included
    lazily) to keep key construction cheap.  A memo is only valid for
    one fixed (query, stats, eps) combination — the optimizer creates a
    fresh one per invocation.

    ``_survival`` for a node depends only on the membership restricted
    to that node's subtree (plus pseudo bitvector nodes attached inside
    it), so its keys are masked by the subtree for maximal reuse.
    """

    __slots__ = ("bit", "subtree_mask", "survival", "eq1", "frontier",
                 "parent_of", "non_root", "m_eff", "selprod")

    def __init__(self, query):
        self.bit = {}
        for name in query.preorder():
            self.bit[name] = 1 << len(self.bit)
        self.subtree_mask = {}
        for node in query.postorder():
            mask = self.bit[node]
            for child in query.children(node):
                mask |= self.subtree_mask[child]
            self.subtree_mask[node] = mask
        self.survival = {}
        self.eq1 = {}
        #: joined-set mask -> (pseudo, pseudo_children); used by the
        #: optimizer's BVP costing (the frontier depends only on the set)
        self.frontier = {}
        # Static structure tables so hot per-subset loops avoid method
        # calls (measurable on 50+-relation beam/IDP searches).
        self.parent_of = {edge.child: edge.parent for edge in query.edges}
        self.non_root = tuple(query.non_root_relations)
        #: relation -> min(m + eps, 1.0); lazily filled (one eps per memo)
        self.m_eff = {}
        #: joined-set mask -> prod of selectivities over the set
        self.selprod = {}

    def mask_of(self, names):
        """Bitmask of a collection of node names (new bits on demand)."""
        bit = self.bit
        mask = 0
        for name in names:
            value = bit.get(name)
            if value is None:
                value = bit[name] = 1 << len(bit)
            mask |= value
        return mask

    def pseudo_submask(self, pseudo, subtree_mask):
        """Mask of pseudo nodes whose parent lies inside ``subtree_mask``."""
        bit = self.bit
        mask = 0
        for name, (parent, _) in pseudo.items():
            if bit[parent] & subtree_mask:
                value = bit.get(name)
                if value is None:
                    value = bit[name] = 1 << len(bit)
                mask |= value
        return mask


def _node_m(query, stats, node, pseudo):
    if node == query.root:
        return 1.0
    if node in pseudo:
        return pseudo[node][1]
    return stats.m(node)


def _node_fo(query, stats, node, pseudo):
    if node == query.root:
        return 1.0
    if node in pseudo:
        return 1.0
    return stats.fo(node)


def _children_in(query, node, members, pseudo_children):
    """Children of ``node`` restricted to ``members``, plus pseudo ones."""
    real = [c for c in query.children(node) if c in members]
    return real + pseudo_children.get(node, [])


def _survival(query, stats, node, members, pseudo, pseudo_children,
              memo=None, members_mask=None):
    """``m_T`` for the subtree rooted at ``node`` restricted to members.

    ``members_mask`` is the :class:`CostMemo` bitmask of ``members``
    (computed by the caller so the recursion does not rebuild it).
    """
    if node in pseudo:
        # Bitvector pseudo-nodes are fanout-1 leaves (Section 3.5).
        return pseudo[node][1]
    key = None
    if memo is not None:
        if members_mask is None:
            members_mask = memo.mask_of(members)
        subtree = memo.subtree_mask[node]
        key = (
            node,
            members_mask & subtree,
            memo.pseudo_submask(pseudo, subtree) if pseudo else 0,
        )
        cached = memo.survival.get(key)
        if cached is not None:
            return cached
    children = _children_in(query, node, members, pseudo_children)
    m = _node_m(query, stats, node, pseudo)
    if not children:
        result = m
    else:
        child_product = 1.0
        for child in children:
            child_product *= _survival(
                query, stats, child, members, pseudo, pseudo_children,
                memo, members_mask
            )
        fo = _node_fo(query, stats, node, pseudo)
        result = m * (1.0 - (1.0 - child_product) ** fo)
    if key is not None:
        memo.survival[key] = result
    return result


def survival_probability(query, stats, members, subtree_root=None):
    """``m_T`` for the connected node set ``members``.

    ``members`` must form a connected subtree; ``subtree_root`` defaults
    to the query root (so that e.g. ``m_{1,2,3,4}`` from the paper is
    ``survival_probability(q, st, {"R1","R2","R3","R4"})``).
    """
    members = set(members)
    root = subtree_root if subtree_root is not None else query.root
    if root not in members:
        raise ValueError(f"subtree root {root!r} not in members {sorted(members)}")
    return _survival(query, stats, root, members, {}, {})


def _eq1_probes(query, stats, members, parent, pseudo=None,
                pseudo_children=None, memo=None):
    """Equation (1): expected probes into a new child of ``parent``.

    ``members`` is the set of already-joined relations (the connected
    prefix, always containing the root).  Fanouts multiply along the
    root->parent path; every branch subtree hanging off a path node
    contributes its survival probability.  ``pseudo`` maps pseudo-node
    name -> (parent, match_probability) for BVP bitvector checks that
    behave like fanout-1 filters (Section 3.5).  ``memo`` is an optional
    :class:`CostMemo` valid for this (query, stats) combination.
    """
    pseudo = pseudo or {}
    pseudo_children = pseudo_children or {}
    key = members_mask = None
    if memo is not None:
        members_mask = memo.mask_of(members)
        key = (
            parent,
            members_mask,
            memo.mask_of(pseudo) if pseudo else 0,
        )
        cached = memo.eq1.get(key)
        if cached is not None:
            return cached
    path = list(reversed(query.path_to_root(parent)))  # root ... parent
    on_path = set(path)
    probes = stats.driver_size
    for node in path:
        if node != query.root:
            probes *= stats.m(node) * stats.fo(node)
        for child in _children_in(query, node, members, pseudo_children):
            if child in on_path:
                continue
            probes *= _survival(
                query, stats, child, members, pseudo, pseudo_children,
                memo, members_mask
            )
    if key is not None:
        memo.eq1[key] = probes
    return probes


def com_probes_per_join(query, stats, order, memo=None):
    """Expected hash probes into each relation under COM, per Eq. (1).

    ``memo`` is an optional :class:`CostMemo` valid for this
    (query, stats) pair; sharing one across repeated costings of large
    queries (e.g. the planner evaluating several strategies) reuses the
    survival/Eq. (1) subset tables instead of recomputing them.
    """
    query.validate_order(order)
    joined = {query.root}
    probes = {}
    for relation in order:
        parent = query.parent(relation)
        probes[relation] = _eq1_probes(query, stats, joined, parent,
                                       memo=memo)
        joined.add(relation)
    return probes


def std_probes_per_join(query, stats, order):
    """Expected hash probes per relation under STD.

    Every fully materialized intermediate tuple is probed, so probes
    into the k-th operator equal ``N * prod_{i<k} m_i fo_i``.
    """
    query.validate_order(order)
    probes = {}
    tuples = stats.driver_size
    for relation in order:
        probes[relation] = tuples
        tuples *= stats.selectivity(relation)
    return probes


def expected_output_size(query, stats):
    """Expected flat join result size ``N * prod_i m_i fo_i``."""
    size = stats.driver_size
    for relation in query.non_root_relations:
        size *= stats.selectivity(relation)
    return size


# ----------------------------------------------------------------------
# Plan costing: COM and STD
# ----------------------------------------------------------------------


def com_plan_cost(query, stats, order, flat_output=True, memo=None):
    """PlanCost for the factorized (COM) execution of ``order``.

    Probes follow Eq. (1).  Tuple generation counts the factorized
    entries appended per join (the matches found) plus, when
    ``flat_output`` is requested, the final expansion of the full
    result (Section 3.6 "expansion step").
    """
    per_join = com_probes_per_join(query, stats, order, memo=memo)
    cost = PlanCost(hash_probes_by_relation=dict(per_join))
    for relation, probes in per_join.items():
        cost.hash_probes += probes
        # Factorized entries appended by this join.
        cost.tuples_generated += probes * stats.selectivity(relation)
    if flat_output:
        cost.tuples_generated += expected_output_size(query, stats)
    return cost


def std_plan_cost(query, stats, order):
    """PlanCost for the standard (STD) execution of ``order``.

    STD materializes every intermediate tuple, so generation cost
    accrues after every join; the final join's output is the flat
    result (no separate expansion).
    """
    per_join = std_probes_per_join(query, stats, order)
    cost = PlanCost(hash_probes_by_relation=dict(per_join))
    tuples = stats.driver_size
    for relation in order:
        cost.hash_probes += per_join[relation]
        tuples *= stats.selectivity(relation)
        cost.tuples_generated += tuples
    return cost


# ----------------------------------------------------------------------
# BVP cost model (Section 3.5)
# ----------------------------------------------------------------------


def _bvp_check_schedule(query, order):
    """When each relation's bitvector is checked on the probe side.

    Returns a list of pipeline *events*: ``("scan",)`` then, per joined
    relation R, ``("join", R)``.  A relation's bitvector is checked at
    the earliest event where its parent attribute is available: driver
    children at scan time, others right after their parent's join
    (Section 4.4).  Within one event, checks follow the join order.
    """
    position = {relation: i for i, relation in enumerate(order)}
    checks_after = {"scan": []}
    for relation in order:
        checks_after[relation] = []
    for relation in sorted(order, key=position.__getitem__):
        parent = query.parent(relation)
        event = "scan" if parent == query.root else parent
        checks_after[event].append(relation)
    return checks_after


def bvp_plan_cost(query, stats, order, eps, factorized, flat_output=True,
                  memo=None):
    """PlanCost under bitvector early pruning (BVP+STD or BVP+COM).

    ``eps`` is the bitvector false-positive probability.  Bitvector and
    hash probes are counted separately (bitvector probes are cheaper —
    Section 3.5).  For the factorized variant, checked-but-not-joined
    relations enter Eq. (1) as pseudo-children with match probability
    ``m + eps`` and fanout 1, exactly as derived in Section 3.5.
    ``memo`` optionally shares a :class:`CostMemo` across costings.
    """
    query.validate_order(order)
    checks_after = _bvp_check_schedule(query, order)
    cost = PlanCost()

    if not factorized:
        # Expected-count state machine over the pipeline:
        # count = N * prod_{joined}(m fo) * prod_{checked-not-joined}(m+eps)
        count = stats.driver_size
        for relation in checks_after["scan"]:
            cost.bitvector_probes += count
            count *= min(stats.m(relation) + eps, 1.0)
        for relation in order:
            cost.hash_probes += count
            cost.hash_probes_by_relation[relation] = count
            checked_factor = min(stats.m(relation) + eps, 1.0)
            count *= stats.m(relation) * stats.fo(relation) / checked_factor
            cost.tuples_generated += count
            for pending in checks_after[relation]:
                cost.bitvector_probes += count
                count *= min(stats.m(pending) + eps, 1.0)
        return cost

    # Factorized (BVP+COM): pseudo nodes for checked-but-unjoined
    # relations; Eq. (1) computed over the augmented tree.
    pseudo = {}
    pseudo_children = {}
    joined = {query.root}

    def run_checks(event_parent, relations):
        """Bitvector checks fire once per alive entry of the parent node."""
        for relation in relations:
            alive = _eq1_probes(
                query, stats, joined, event_parent, pseudo, pseudo_children,
                memo
            )
            cost.bitvector_probes += alive
            name = f"~bv:{relation}"
            pseudo[name] = (event_parent, min(stats.m(relation) + eps, 1.0))
            pseudo_children.setdefault(event_parent, []).append(name)

    run_checks(query.root, checks_after["scan"])
    for relation in order:
        parent = query.parent(relation)
        # The relation's own bitvector pseudo-node stays in place for
        # this computation: its (m + eps) factor applies to the hash
        # probe count (tuples that failed the check were never probed).
        probes = _eq1_probes(query, stats, joined, parent, pseudo,
                             pseudo_children, memo)
        cost.hash_probes += probes
        cost.hash_probes_by_relation[relation] = probes
        cost.tuples_generated += probes * stats.selectivity(relation)
        # The real join replaces the pseudo filter from here on.
        name = f"~bv:{relation}"
        if name in pseudo:
            del pseudo[name]
            pseudo_children[parent].remove(name)
        joined.add(relation)
        run_checks(relation, checks_after[relation])
    if flat_output:
        cost.tuples_generated += expected_output_size(query, stats)
    return cost


# ----------------------------------------------------------------------
# Unified entry point
# ----------------------------------------------------------------------


def plan_cost(query, stats, order, mode, eps=0.01, flat_output=True,
              memo=None):
    """Expected :class:`PlanCost` of executing ``order`` under ``mode``.

    Semi-join modes are computed by
    :func:`repro.core.costmodel_sj.sj_plan_cost`.  ``memo`` optionally
    shares one :class:`CostMemo` (valid for this query/stats/eps) across
    repeated costings — the planner uses this to price every strategy of
    a large query against shared subset tables.
    """
    mode = ExecutionMode(mode)
    if mode is ExecutionMode.STD:
        return std_plan_cost(query, stats, order)
    if mode is ExecutionMode.COM:
        return com_plan_cost(query, stats, order, flat_output=flat_output,
                             memo=memo)
    if mode in (ExecutionMode.BVP_STD, ExecutionMode.BVP_COM):
        return bvp_plan_cost(
            query,
            stats,
            order,
            eps=eps,
            factorized=mode.factorized,
            flat_output=flat_output,
            memo=memo,
        )
    from .costmodel_sj import sj_plan_cost

    return sj_plan_cost(
        query, stats, order, factorized=mode.factorized, flat_output=flat_output
    )
