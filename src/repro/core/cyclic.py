"""Cyclic queries via spanning trees (Sections 2.1 and 6).

The paper's techniques target acyclic queries; for cyclic ones it
prescribes the standard practice of "choosing a spanning tree of the
join graph" — the optimizer ignores the residual join predicates, and
execution re-applies them as filters.  This module makes that choice a
first-class optimization problem instead of a greedy bolt-on:

* :func:`spanning_tree_decomposition` keeps the historical greedy
  Kruskal split (lowest-selectivity edges stay in the tree);
* :func:`enumerate_spanning_trees` yields candidate trees in
  approximately ascending tree-output order (best-first single-edge
  exchanges from the minimum tree), which is what lets the planner
  search spanning tree and join order *jointly*;
* :func:`cyclic_directed_stats` measures ``(m, fo)`` for both probe
  directions of every join predicate at once (the cyclic analogue of
  :func:`repro.core.stats.directed_stats_from_data`), so every
  candidate tree's :class:`~repro.core.stats.QueryStats` is assembled
  with dictionary work;
* :func:`residual_filter_cost` extends the cost model with the
  residual-filter term, so trees are compared on *total* cost (tree
  join + expansion + residual checks), not tree-join cost alone;
* :func:`execute_cyclic` evaluates a (possibly cyclic) plan on any
  catalog — including hash-partitioned ones: residual filters compare
  values in base-row-id space via :meth:`~repro.storage.Table.gather`,
  which PR 3's ``original_rows`` mapping makes layout-independent.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from ..modes import ExecutionMode
from .query import JoinEdge, JoinQuery
from .stats import QueryStats, _measure_edge

__all__ = [
    "ResidualPredicate",
    "CyclicPlan",
    "CYCLIC_EXECUTION_CHOICES",
    "cyclic_attr_distincts",
    "cyclic_directed_stats",
    "cyclic_signature",
    "decompose",
    "edge_pair_selectivity",
    "enumerate_spanning_trees",
    "exact_equal",
    "execute_cyclic",
    "log_pair_weight",
    "residual_filter_cost",
    "spanning_tree_decomposition",
    "stats_for_tree",
    "tree_query_from_residuals",
    "wcoj_cost",
]

#: valid values of the ``cyclic_execution`` planner knob: ``auto``
#: costs both strategies per query and picks the cheaper one
CYCLIC_EXECUTION_CHOICES = ("auto", "tree_filter", "wcoj")

#: floor for log-space tree weights (a zero-selectivity edge would
#: otherwise produce -inf and poison heap ordering)
_MIN_SELECTIVITY = 1e-300


@dataclass(frozen=True)
class ResidualPredicate:
    """An equality join predicate not covered by the spanning tree."""

    relation_a: str
    attr_a: str
    relation_b: str
    attr_b: str

    @property
    def key(self):
        """The predicate as the parser's 4-tuple rendering."""
        return (self.relation_a, self.attr_a, self.relation_b, self.attr_b)

    def __repr__(self):
        return (
            f"ResidualPredicate({self.relation_a}.{self.attr_a} = "
            f"{self.relation_b}.{self.attr_b})"
        )


@dataclass
class CyclicPlan:
    """A spanning-tree decomposition of a cyclic join graph."""

    query: JoinQuery
    residuals: list

    @property
    def is_cyclic(self):
        return bool(self.residuals)

    def tree_signature(self):
        """A stable, hashable signature of the resolved decomposition.

        Covers the rooted tree (driver + directed edges) and the
        residual predicates in canonical order — two decompositions
        that picked the same tree produce the same signature no matter
        how the candidates were enumerated.
        """
        return (
            self.query.root,
            tuple(sorted(
                (edge.parent, edge.child, edge.parent_attr, edge.child_attr)
                for edge in self.query.edges
            )),
            tuple(sorted(residual.key for residual in self.residuals)),
        )


# ----------------------------------------------------------------------
# Graph structure helpers
# ----------------------------------------------------------------------


def _undirected_key(predicate):
    """Canonical (direction-free) rendering of one join predicate."""
    rel_a, attr_a, rel_b, attr_b = predicate
    return tuple(sorted([(rel_a, attr_a), (rel_b, attr_b)]))


def cyclic_signature(parsed):
    """A rooting-free structural signature of a (cyclic) join graph.

    The multiset of canonical undirected predicates — the analogue of
    :func:`repro.core.stats.undirected_signature` for graphs that are
    not trees.  Statistics caches key cyclic directed-stats entries on
    it, so every candidate tree (and every rooting of every tree) of
    one query shares a single derivation.
    """
    return tuple(sorted(_undirected_key(p) for p in parsed.join_predicates))


def _rooted_tree(relations, tree_predicates, driver):
    """Root an (acyclic, spanning) predicate subset at ``driver``."""
    adjacency = {alias: [] for alias in relations}
    for rel_a, attr_a, rel_b, attr_b in tree_predicates:
        adjacency[rel_a].append((rel_b, attr_a, attr_b))
        adjacency[rel_b].append((rel_a, attr_b, attr_a))
    edges = []
    visited = {driver}
    stack = [driver]
    while stack:
        node = stack.pop()
        for child, parent_attr, child_attr in adjacency[node]:
            if child in visited:
                continue
            visited.add(child)
            edges.append(JoinEdge(node, child, parent_attr, child_attr))
            stack.append(child)
    return JoinQuery(driver, edges)


def decompose(parsed, tree_predicates, driver=None):
    """A :class:`CyclicPlan` from an explicit spanning-tree choice.

    ``tree_predicates`` is a subset of ``parsed.join_predicates``
    forming a spanning tree; everything else becomes a residual filter
    (multiset semantics, so parallel predicates between one relation
    pair split correctly between tree and residuals).

    Round-trip law: for any plan this builds,
    ``tree_query_from_residuals(parsed, plan.residuals,
    plan.query.root)`` reconstructs ``plan.query`` edge for edge — tree
    edges and residuals partition the predicate *multiset*, so each
    predicate is applied exactly once by whichever execution strategy
    consumes the plan (the tree join applies edges and the residual
    stage applies residuals under ``tree_filter``; the
    variable-elimination operator in :mod:`repro.engine.wcoj` applies
    each predicate once with its strategy-appropriate semantics).  The
    plan linter's edge-XOR-residual passes check exactly this split.
    """
    relations = list(parsed.relations)
    if driver is None:
        driver = relations[0]
    remaining = list(parsed.join_predicates)
    for predicate in tree_predicates:
        remaining.remove(tuple(predicate))
    residuals = [ResidualPredicate(*predicate) for predicate in remaining]
    return CyclicPlan(
        query=_rooted_tree(relations, tree_predicates, driver),
        residuals=residuals,
    )


def tree_query_from_residuals(parsed, residuals, driver):
    """Rebuild the rooted spanning tree a plan was optimized with.

    The inverse of :func:`decompose` when only the residuals were
    recorded (e.g. in a picklable :class:`~repro.planner.PlanSpec`):
    the tree is the query's predicate *multiset* minus the residual
    predicates — one removal per residual occurrence, so duplicate
    predicates split between tree and residuals survive the round trip
    — rooted at the plan's driver.  Because the reconstruction
    partitions the multiset, rehydrated plans keep the edge-XOR-residual
    invariant: no predicate can be applied twice (once as a tree edge
    and again as a residual) by either the tree+filter or the WCOJ
    execution strategy.
    """
    remaining = list(parsed.join_predicates)
    for residual in residuals:
        key = residual.key if isinstance(residual, ResidualPredicate) \
            else tuple(residual)
        remaining.remove(key)
    return _rooted_tree(list(parsed.relations), remaining, driver)


# ----------------------------------------------------------------------
# Spanning-tree choice
# ----------------------------------------------------------------------


def _edge_weight(edge_key, stats_hint):
    """Lower weight = keep in the tree.

    ``stats_hint`` maps (rel_a, attr_a, rel_b, attr_b) (either
    direction) to an estimated selectivity; more selective edges are
    kept in the tree so the residual filters discard little.
    Unweighted edges default to 1.0.
    """
    if not stats_hint:
        return 1.0
    rel_a, attr_a, rel_b, attr_b = edge_key
    for key in (edge_key, (rel_b, attr_b, rel_a, attr_a)):
        if key in stats_hint:
            return stats_hint[key]
    return 1.0


def _kruskal(relations, predicates, weights):
    """Indices of the minimum-weight spanning tree (deterministic ties)."""
    parent = {alias: alias for alias in relations}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    ordered = sorted(
        range(len(predicates)),
        key=lambda i: (weights[i], predicates[i]),
    )
    tree = []
    for index in ordered:
        rel_a, _, rel_b, _ = predicates[index]
        root_a, root_b = find(rel_a), find(rel_b)
        if root_a != root_b:
            parent[root_a] = root_b
            tree.append(index)
    if len(tree) != len(relations) - 1:
        raise ValueError("join graph is disconnected")
    return tree


def _tree_adjacency(predicates, tree):
    """Adjacency map of a tree's edges: relation -> [(neighbor, index)]."""
    adjacency = {}
    for index in tree:
        rel_a, _, rel_b, _ = predicates[index]
        adjacency.setdefault(rel_a, []).append((rel_b, index))
        adjacency.setdefault(rel_b, []).append((rel_a, index))
    return adjacency


def _tree_path_edges(adjacency, start, goal):
    """Edge indices on the unique tree path between two relations."""
    via = {start: None}
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            break
        for neighbor, index in adjacency.get(node, []):
            if neighbor in via:
                continue
            via[neighbor] = (node, index)
            stack.append(neighbor)
    path = []
    node = goal
    while via[node] is not None:
        node, index = via[node]
        path.append(index)
    return path


def enumerate_spanning_trees(relations, predicates, weights,
                             max_trees=None, neighbors_per_tree=64):
    """Yield spanning trees in approximately ascending total weight.

    ``predicates`` are the parser's 4-tuples, ``weights`` an aligned
    list of additive edge weights (the planner passes per-edge
    log-selectivities, so a tree's total weight orders candidates by
    estimated tree-join output).  Each yielded tree is a sorted tuple
    of predicate *indices*; the first is always the Kruskal minimum —
    the greedy baseline — so a search over this stream can only match
    or beat greedy.

    Enumeration is best-first over single-edge exchanges (remove one
    tree edge on the cycle a non-tree edge closes, insert that edge);
    the exchange graph of spanning trees is connected, so with an
    unbounded ``neighbors_per_tree`` every spanning tree is eventually
    produced.  Dense graphs generate O(E·n) neighbors per tree, so only
    the ``neighbors_per_tree`` lowest-weight exchanges are queued per
    popped tree — a pruning of the candidate *stream*, never of the
    incumbent comparison the caller performs.
    """
    if len(relations) < 2:
        raise ValueError("a join graph needs at least two relations")
    start = frozenset(_kruskal(relations, predicates, weights))
    counter = 0
    heap = [(sum(weights[i] for i in start), counter, start)]
    seen = {start}
    yielded = 0
    while heap:
        total, _, tree = heapq.heappop(heap)
        yield tuple(sorted(tree))
        yielded += 1
        if max_trees is not None and yielded >= max_trees:
            return
        adjacency = _tree_adjacency(predicates, tree)
        swaps = []
        for index in range(len(predicates)):
            if index in tree:
                continue
            rel_a, _, rel_b, _ = predicates[index]
            for removed in _tree_path_edges(adjacency, rel_a, rel_b):
                swaps.append((weights[index] - weights[removed],
                              index, removed))
        swaps.sort()
        for delta, added, removed in swaps[:neighbors_per_tree]:
            neighbor = tree - {removed} | {added}
            if neighbor in seen:
                continue
            seen.add(neighbor)
            counter += 1
            heapq.heappush(heap, (total + delta, counter, neighbor))


def spanning_tree_decomposition(parsed, driver=None, stats_hint=None):
    """Choose a spanning tree of the join graph; rest become residuals.

    Kruskal over the join predicates, keeping the lowest-selectivity
    (most reducing) edges in the tree.  The returned
    :class:`CyclicPlan` contains a rooted join query and the residual
    predicates.  Works for acyclic inputs too (no residuals).

    This is the *greedy* baseline; the planner's joint search
    (:meth:`repro.planner.Planner.plan` on a cyclic query) additionally
    compares alternative trees on total cost.
    """
    relations = list(parsed.relations)
    if not relations:
        raise ValueError("query has no relations")
    if not parsed.is_connected():
        raise ValueError("join graph is disconnected")
    predicates = list(parsed.join_predicates)
    weights = [_edge_weight(predicate, stats_hint)
               for predicate in predicates]
    if len(relations) == 1:
        return CyclicPlan(query=JoinQuery(relations[0], []), residuals=[])
    tree = _kruskal(relations, predicates, weights)
    return decompose(parsed, [predicates[i] for i in tree], driver)


# ----------------------------------------------------------------------
# Statistics for tree candidates
# ----------------------------------------------------------------------


def cyclic_directed_stats(catalog, parsed):
    """Measure ``(m, fo)`` for both directions of every join predicate.

    Returns ``(directed, sizes)`` where ``directed`` maps the full
    directed predicate ``(parent, parent_attr, child, child_attr)`` to
    :class:`~repro.core.stats.EdgeStats` — keys carry the attributes so
    parallel predicates between one relation pair stay distinct —
    and ``sizes`` maps alias to cardinality.  One O(predicates)
    measurement pass covers every candidate spanning tree *and* every
    rooting of each tree, plus the residual selectivities; candidate
    stats are then assembled by :func:`stats_for_tree` with dictionary
    work, exactly like the acyclic driver search's
    :func:`~repro.core.stats.directed_stats_from_data`.
    """
    directed = {}
    for rel_a, attr_a, rel_b, attr_b in parsed.join_predicates:
        if (rel_a, attr_a, rel_b, attr_b) in directed:
            continue  # duplicate predicate: same measurement
        directed[(rel_a, attr_a, rel_b, attr_b)] = _measure_edge(
            catalog, rel_a, attr_a, rel_b, attr_b
        )
        directed[(rel_b, attr_b, rel_a, attr_a)] = _measure_edge(
            catalog, rel_b, attr_b, rel_a, attr_a
        )
    sizes = {alias: len(catalog.table(alias)) for alias in parsed.relations}
    return directed, sizes


def stats_for_tree(rooted, directed, sizes):
    """Assemble a candidate tree's :class:`QueryStats`.

    ``directed`` / ``sizes`` come from :func:`cyclic_directed_stats`;
    pure dictionary work — no data access per candidate.
    """
    edge_stats = {
        edge.child: directed[
            (edge.parent, edge.parent_attr, edge.child, edge.child_attr)
        ]
        for edge in rooted.edges
    }
    return QueryStats(sizes[rooted.root], edge_stats, relation_sizes=sizes)


def edge_pair_selectivity(directed, sizes, predicate):
    """P(two independent tuples satisfy the predicate).

    For predicate ``a.x = b.y`` this is ``matching pairs / (|a|·|b|)``
    = ``m·fo / |b|`` in either probe direction.  It is the quantity
    that makes tree comparison rooting-free: a tree's expected join
    output is ``prod(|R|) · prod(pair selectivities over tree edges)``
    for *every* rooting, so candidate trees are ranked by the product
    of their edges' pair selectivities.
    """
    rel_a, attr_a, rel_b, attr_b = predicate
    stats = directed[(rel_a, attr_a, rel_b, attr_b)]
    size_b = sizes.get(rel_b, 0.0)
    if not size_b:
        return 0.0
    return stats.m * stats.fo / float(size_b)


def log_pair_weight(selectivity):
    """Additive tree-enumeration weight for one edge's pair selectivity."""
    return math.log(max(selectivity, _MIN_SELECTIVITY))


def residual_filter_cost(expected_input, selectivities, weights):
    """Expected weighted cost of the residual-filter stage.

    ``expected_input`` is the tree join's expected flat output;
    ``selectivities`` the residual filters' estimated selectivities in
    the order they will be applied (the planner sorts ascending —
    most-reducing first — and execution applies the same order).  Each
    check is one vectorized key comparison per surviving tuple, priced
    like a semi-join probe; filters are progressive, so filter ``i``
    only sees the tuples the first ``i - 1`` filters kept.  This term
    is what lets the planner compare candidate trees on *total* cost:
    a tree with a slightly larger join output can still win when its
    residuals are cheap, and vice versa.
    """
    cost = 0.0
    alive = float(expected_input)
    for selectivity in selectivities:
        cost += alive * weights.semijoin_probe
        alive *= selectivity
    return cost


def cyclic_attr_distincts(catalog, parsed):
    """Distinct-value counts per ``(relation, attribute)`` in predicates.

    The statistic :func:`wcoj_cost` consumes: one ``np.unique`` scan per
    distinct predicate endpoint.  Layout-independent (the count ignores
    physical row order), so the planner derives it once per data token
    and caches it alongside the directed cyclic stats.
    """
    distincts = {}
    for rel_a, attr_a, rel_b, attr_b in parsed.join_predicates:
        for alias, attr in ((rel_a, attr_a), (rel_b, attr_b)):
            if (alias, attr) not in distincts:
                column = catalog.table(alias).column(attr)
                distincts[(alias, attr)] = int(len(np.unique(column)))
    return distincts


def wcoj_cost(order, distincts, sizes, weights):
    """Expected weighted cost of worst-case-optimal evaluation.

    The counterpart of tree-join cost + :func:`residual_filter_cost`
    for the strategy in :mod:`repro.engine.wcoj`, simulated level by
    level over the planned variable ``order`` (tuples of
    ``(relation, attribute)`` members per variable, e.g. from
    :func:`repro.engine.wcoj.plan_variable_order`):

    * each level probes the expansion relation once per frontier prefix
      (``hash_probe``) and generates its candidate extensions
      (``tuple_generation``) — at most the expansion member's distinct
      count, and at most the expansion relation's rows per bound group;
    * every other member of the variable checks each candidate
      (``semijoin_probe``; the executor splits these between
      ``semijoin_probes`` and ``residual_checks`` by predicate kind,
      but both price like one vectorized comparison per candidate).
      Survival is estimated as domain containment — ``d_member /
      d_expand`` — further capped by the member relation's expected
      rows per bound group when that relation is already constrained;
    * the final expansion re-probes each relation once per output-frame
      prefix and generates the flat tuples, mirroring the flat driver.

    ``distincts`` comes from :func:`cyclic_attr_distincts`; ``sizes``
    maps alias to cardinality (the same map
    :func:`cyclic_directed_stats` returns).  The absolute value is
    comparable with the tree+filter total the planner assembles, which
    is all ``cyclic_execution="auto"`` needs: on dense cyclic cores the
    tree join's expected output explodes while the wcoj frontier stays
    near the true result size, and the comparison flips accordingly.
    """
    prefixes = 1.0
    cost = 0.0
    bound = {}  # relation -> product of distinct counts of bound attrs

    def rows_per_group(rel):
        size = float(sizes.get(rel, 1.0))
        return max(1.0, size / bound.get(rel, 1.0))

    for members in order:
        expand = min(
            members,
            key=lambda m: (m[0] not in bound, distincts.get(m, 1), m),
        )
        d_expand = max(float(distincts.get(expand, 1)), 1.0)
        if expand[0] in bound:
            extensions = min(d_expand, rows_per_group(expand[0]))
        else:
            extensions = d_expand
        cost += prefixes * weights.hash_probe
        candidates = prefixes * extensions
        cost += candidates * weights.tuple_generation
        checked_rels = {expand[0]}
        for member in members:
            if member == expand:
                continue
            d_member = max(float(distincts.get(member, 1)), 1.0)
            cost += candidates * weights.semijoin_probe
            survive = min(1.0, d_member / d_expand)
            rel = member[0]
            if rel in bound and rel not in checked_rels:
                survive = min(
                    survive, min(1.0, rows_per_group(rel) / d_member)
                )
            checked_rels.add(rel)
            candidates *= survive
        prefixes = candidates
        for member in members:
            bound[member[0]] = (
                bound.get(member[0], 1.0)
                * max(float(distincts.get(member, 1)), 1.0)
            )
    out = prefixes
    for rel in sorted(bound):
        cost += out * weights.hash_probe
        out *= rows_per_group(rel)
        cost += out * weights.tuple_generation
    return cost


# ----------------------------------------------------------------------
# Residual filtering (execution)
# ----------------------------------------------------------------------


def exact_equal(values_a, values_b):
    """Elementwise equality with exact numeric-key semantics.

    The residual analogue of PR 3's partitioned-probe key handling:

    * integer vs integer compares exactly (no upcast);
    * integer vs float matches only where the float is finite and
      exactly integral, compared in integer space — so two huge int64
      keys (or an int and a float) that would collide after a lossy
      float64 upcast (magnitudes at or beyond ``2**53``) never
      spuriously match;
    * NaN equals nothing (same as a hash-index probe of an absent key);
    * any other dtype combination falls back to plain ``==``.
    """
    values_a = np.asarray(values_a)
    values_b = np.asarray(values_b)
    if values_a.dtype == bool:
        values_a = values_a.astype(np.int64)
    if values_b.dtype == bool:
        values_b = values_b.astype(np.int64)
    a_int = np.issubdtype(values_a.dtype, np.integer)
    b_int = np.issubdtype(values_b.dtype, np.integer)
    if a_int and b_int:
        return values_a == values_b
    a_float = np.issubdtype(values_a.dtype, np.floating)
    b_float = np.issubdtype(values_b.dtype, np.floating)
    if a_int != b_int and (a_float or b_float):
        ints, floats = (values_a, values_b) if a_int else (values_b, values_a)
        out = np.zeros(len(ints), dtype=bool)
        # int64-convertible: finite and inside [-2**63, 2**63) — the
        # bound is exact in float64, and anything outside it cannot
        # equal an int64 key anyway
        convertible = np.flatnonzero(
            np.isfinite(floats)
            & (floats >= float(-(2 ** 63)))
            & (floats < float(2 ** 63))
        )
        if len(convertible):
            as_int = floats[convertible].astype(np.int64)
            integral = as_int.astype(floats.dtype) == floats[convertible]
            positions = convertible[integral]
            out[positions] = ints[positions] == as_int[integral]
        return out
    with np.errstate(invalid="ignore"):
        return values_a == values_b


def _base_values(catalog, relation, attr, rows, kernels):
    """Column values for *base* row ids (layout-independent).

    The gather translates base ids through a
    :class:`~repro.storage.partition.PartitionedTable`'s physical
    permutation (and is the identity for ordinary tables), which is
    what lets residual filters run against hash-partitioned catalogs.
    """
    return kernels.gather(catalog.table(relation), attr, rows)


def _default_kernels():
    from ..engine.kernels import get_kernels

    return get_kernels("vectorized")


def _filter_batch(catalog, residuals, batch, counters=None, collect=True,
                  kernels=None):
    """Apply the residual filters to one flat batch of base row ids.

    Filters are progressive: each predicate is evaluated only on the
    rows every earlier predicate kept (matching the cost model's
    accounting, and identical across batch splits since surviving
    counts are additive).  Returns ``(survivors, filtered_rows)``;
    ``filtered_rows`` is ``None`` unless ``collect`` — counting a
    result must not materialize it.  ``kernels`` selects the execution
    kernels the value gathers and equality comparisons run on
    (defaults to the vectorized set).
    """
    if kernels is None:
        kernels = _default_kernels()
    if not batch:
        return 0, ({} if collect else None)
    keep = None
    for predicate in residuals:
        rows_a = batch[predicate.relation_a]
        rows_b = batch[predicate.relation_b]
        if keep is not None:
            rows_a = rows_a[keep]
            rows_b = rows_b[keep]
        if counters is not None:
            counters.residual_checks += len(rows_a)
        match = kernels.equal_mask(
            _base_values(catalog, predicate.relation_a, predicate.attr_a,
                         rows_a, kernels),
            _base_values(catalog, predicate.relation_b, predicate.attr_b,
                         rows_b, kernels),
        )
        keep = np.flatnonzero(match) if keep is None else keep[match]
    if keep is None:
        count = len(next(iter(batch.values())))
        return count, (dict(batch) if collect else None)
    if not collect:
        return len(keep), None
    return len(keep), {rel: rows[keep] for rel, rows in batch.items()}


def apply_residuals(catalog, residuals, rows_by_relation, counters=None,
                    execution=None):
    """Filter flat result rows (base row ids) by the residual predicates.

    Progressive and exact (:func:`exact_equal`); ``counters``
    optionally accumulates the per-filter comparison counts into
    :attr:`~repro.engine.executor.ExecutionCounters.residual_checks`.
    ``execution`` picks the kernel path (``None`` → vectorized).
    """
    kernels = None
    if execution is not None:
        from ..engine.kernels import get_kernels, resolve_execution

        kernels = get_kernels(resolve_execution(execution))
    _, filtered = _filter_batch(catalog, residuals, rows_by_relation,
                                counters=counters, collect=True,
                                kernels=kernels)
    return filtered


def _push_down_residuals(catalog, residuals, factorized, counters=None,
                         kernels=None):
    """Apply ancestor/descendant residuals *before* expansion.

    A residual whose two relations lie on one root-to-leaf path of the
    spanning tree is decidable per factorized entry: every flat tuple
    containing descendant entry ``e`` reaches the same ancestor entry
    through the ``parent_ptr`` chain, so comparing the two base values
    once per entry and clearing the descendant's ``alive`` bit filters
    the factorized result exactly — *before* the entries multiply out
    through expansion, which is where tree+filter used to pay for every
    doomed combination.  Comparison semantics are unchanged
    (:func:`exact_equal`, via the kernel ``equal_mask``), and each
    check bumps the existing ``residual_checks`` counter once per alive
    descendant entry.

    Returns the residuals that cross branches of the tree and must
    still be applied on expanded batches.  Self-join residuals
    (both sides one relation) are on a trivial path and push down too.
    """
    if kernels is None:
        kernels = _default_kernels()
    query = factorized.query

    def ancestors(rel):
        chain = [rel]
        while chain[-1] != query.root:
            chain.append(query.parent(chain[-1]))
        return chain

    remaining = []
    pushed = False
    for residual in residuals:
        rel_a, attr_a, rel_b, attr_b = residual.key
        if rel_b in ancestors(rel_a):
            descendant, desc_attr = rel_a, attr_a
            ancestor, anc_attr = rel_b, attr_b
        elif rel_a in ancestors(rel_b):
            descendant, desc_attr = rel_b, attr_b
            ancestor, anc_attr = rel_a, attr_a
        else:
            remaining.append(residual)
            continue
        node = factorized.node(descendant)
        entries = node.alive_indices()
        if counters is not None:
            counters.residual_checks += len(entries)
        if not len(entries):
            continue
        pointer = entries
        current = descendant
        while current != ancestor:
            pointer = factorized.node(current).parent_ptr[pointer]
            current = query.parent(current)
        values_desc = _base_values(
            catalog, descendant, desc_attr, node.rows[entries], kernels
        )
        values_anc = _base_values(
            catalog, ancestor, anc_attr,
            factorized.node(ancestor).rows[pointer], kernels,
        )
        match = kernels.equal_mask(values_desc, values_anc)
        node.alive[entries[~np.asarray(match, dtype=bool)]] = False
        pushed = True
    if pushed:
        factorized.propagate_deaths()
    return remaining


def _row_batches(rows_by_relation, batch_rows):
    """Slice a flat row frame into zero-copy row-range batches."""
    if not rows_by_relation:
        return
    n = len(next(iter(rows_by_relation.values())))
    for start in range(0, n, batch_rows):
        yield {
            rel: rows[start:start + batch_rows]
            for rel, rows in rows_by_relation.items()
        }


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def execute_cyclic(
    catalog,
    plan,
    mode=ExecutionMode.COM,
    order=None,
    collect_output=False,
    expansion_batch=8192,
    max_intermediate_tuples=50_000_000,
    child_orders=None,
    execution="auto",
    driver_rows=None,
):
    """Evaluate a (possibly cyclic) plan: tree join + residual filters.

    Returns ``(output_size, execution_result, output_rows)``; the
    execution result carries the tree-join counters plus
    ``residual_checks`` / ``residual_input_tuples``.  Under factorized
    modes, residuals whose relations share a root-to-leaf tree path are
    applied to factorized *entries* before expansion
    (:func:`_push_down_residuals`) — the doomed combinations never
    multiply out — and only cross-branch residuals are filtered
    batch-at-a-time on the expanded result.  Flat modes filter all
    residuals on the materialized frame (there is no factorized output
    for cyclic queries — residual predicates break factorization).

    Both pipeline families account the residual stage identically: the
    pre-filter expanded tuples are counted as ``tuples_generated``
    exactly once (the flat pipeline materializes them at its last join;
    the factorized pipeline counts the expansion step, same as an
    acyclic ``flat_output`` run), and each residual comparison bumps
    ``residual_checks``.  Works on hash-partitioned catalogs: engine
    results report base row ids, and residual values are gathered in
    base-row-id space.  ``execution`` selects the kernel path for both
    the tree join and the residual stage (see
    :func:`repro.engine.executor.execute`); ``driver_rows`` restricts
    the tree join to a subset of root rows (the distributed scatter
    path — residual filtering is per-tuple, so it decomposes over any
    driver partition).
    """
    from ..engine.executor import BudgetExceededError, execute
    from ..engine.kernels import get_kernels, resolve_execution

    mode = ExecutionMode(mode)
    execution = resolve_execution(execution)
    kernels = get_kernels(execution)
    query = plan.query
    if not plan.residuals:
        result = execute(
            catalog, query, order, mode,
            flat_output=True, collect_output=collect_output,
            child_orders=child_orders,
            expansion_batch=expansion_batch,
            max_intermediate_tuples=max_intermediate_tuples,
            execution=execution,
            driver_rows=driver_rows,
        )
        return result.output_size, result, result.output_rows

    if mode.factorized:
        # Run the tree join factorized, then filter during expansion.
        result = execute(
            catalog, query, order, mode,
            flat_output=False, collect_output=False,
            child_orders=child_orders,
            max_intermediate_tuples=max_intermediate_tuples,
            execution=execution,
            driver_rows=driver_rows,
        )
        # Root-to-leaf residuals filter factorized entries before they
        # multiply out; only cross-branch residuals still need the
        # expanded batches below.
        residuals = _push_down_residuals(
            catalog, plan.residuals, result.factorized,
            counters=result.counters, kernels=kernels,
        )
        pre_filter = result.factorized.count_rows()
        if pre_filter > max_intermediate_tuples:
            raise BudgetExceededError(
                str(mode), "<expansion>", pre_filter, max_intermediate_tuples
            )
        # Same accounting as the acyclic expansion step: every expanded
        # (pre-filter) tuple is generated work.
        result.counters.tuples_generated += pre_filter
        batches = result.factorized.expand(
            batch_entries=expansion_batch, max_rows=4_000_000,
            kernels=kernels,
        )
    else:
        # Flat pipelines materialize the full frame at their last join
        # regardless (and count it as tuples_generated there); the
        # residual stage then filters row-range views batch-at-a-time
        # instead of materializing a filtered copy just to count.
        result = execute(
            catalog, query, order, mode,
            flat_output=True, collect_output=True,
            child_orders=child_orders,
            expansion_batch=expansion_batch,
            max_intermediate_tuples=max_intermediate_tuples,
            execution=execution,
            driver_rows=driver_rows,
        )
        residuals = list(plan.residuals)
        pre_filter = result.output_size
        batches = _row_batches(result.output_rows or {}, expansion_batch)

    result.counters.residual_input_tuples += pre_filter
    result.counters.note_intermediate(pre_filter, stage="<residuals>")
    total = 0
    collected = [] if collect_output else None
    for batch in batches:
        batch_size, filtered = _filter_batch(
            catalog, residuals, batch,
            counters=result.counters, collect=collect_output,
            kernels=kernels,
        )
        total += batch_size
        if collected is not None and batch_size:
            collected.append(filtered)

    output_rows = None
    if collect_output:
        if collected:
            output_rows = {
                rel: np.concatenate([b[rel] for b in collected])
                for rel in collected[0]
            }
        else:
            output_rows = {
                rel: np.empty(0, dtype=np.int64) for rel in query.relations
            }
    result.output_size = total
    result.output_rows = output_rows
    return total, result, output_rows
