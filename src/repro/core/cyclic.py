"""Cyclic queries via spanning trees (Sections 2.1 and 6).

The paper's techniques target acyclic queries; for cyclic ones it
prescribes the standard practice of "choosing a spanning tree of the
join graph" — the optimizer ignores the residual join predicates, and
execution re-applies them as filters.  This module implements exactly
that: :func:`spanning_tree_decomposition` splits a cyclic
:class:`~repro.core.parser.ParsedQuery`'s join graph into a rooted
:class:`~repro.core.query.JoinQuery` plus residual equality predicates,
and :func:`execute_cyclic` evaluates the whole thing (tree join, then
residual filtering on the flat result batches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..modes import ExecutionMode
from .query import JoinEdge, JoinQuery

__all__ = [
    "ResidualPredicate",
    "CyclicPlan",
    "spanning_tree_decomposition",
    "execute_cyclic",
]


@dataclass(frozen=True)
class ResidualPredicate:
    """An equality join predicate not covered by the spanning tree."""

    relation_a: str
    attr_a: str
    relation_b: str
    attr_b: str

    def __repr__(self):
        return (
            f"ResidualPredicate({self.relation_a}.{self.attr_a} = "
            f"{self.relation_b}.{self.attr_b})"
        )


@dataclass
class CyclicPlan:
    """A spanning-tree decomposition of a cyclic join graph."""

    query: JoinQuery
    residuals: list

    @property
    def is_cyclic(self):
        return bool(self.residuals)


def _edge_weight(edge_key, stats_hint):
    """Lower weight = keep in the tree.

    ``stats_hint`` maps (rel_a, attr_a, rel_b, attr_b) (either
    direction) to an estimated selectivity; more selective edges are
    kept in the tree so the residual filters discard little.
    Unweighted edges default to 1.0.
    """
    if not stats_hint:
        return 1.0
    rel_a, attr_a, rel_b, attr_b = edge_key
    for key in (edge_key, (rel_b, attr_b, rel_a, attr_a)):
        if key in stats_hint:
            return stats_hint[key]
    return 1.0


def spanning_tree_decomposition(parsed, driver=None, stats_hint=None):
    """Choose a spanning tree of the join graph; rest become residuals.

    Kruskal over the join predicates, keeping the lowest-selectivity
    (most reducing) edges in the tree.  The returned
    :class:`CyclicPlan` contains a rooted join query and the residual
    predicates.  Works for acyclic inputs too (no residuals).
    """
    relations = list(parsed.relations)
    if not relations:
        raise ValueError("query has no relations")
    if not parsed.is_connected():
        raise ValueError("join graph is disconnected")
    parent = {alias: alias for alias in relations}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    ordered = sorted(
        parsed.join_predicates,
        key=lambda edge: (_edge_weight(edge, stats_hint), edge),
    )
    tree_edges, residuals = [], []
    for rel_a, attr_a, rel_b, attr_b in ordered:
        root_a, root_b = find(rel_a), find(rel_b)
        if root_a == root_b:
            residuals.append(
                ResidualPredicate(rel_a, attr_a, rel_b, attr_b)
            )
        else:
            parent[root_a] = root_b
            tree_edges.append((rel_a, attr_a, rel_b, attr_b))

    if driver is None:
        driver = relations[0]
    adjacency = {alias: [] for alias in relations}
    for rel_a, attr_a, rel_b, attr_b in tree_edges:
        adjacency[rel_a].append((rel_b, attr_a, attr_b))
        adjacency[rel_b].append((rel_a, attr_b, attr_a))
    edges = []
    visited = {driver}
    stack = [driver]
    while stack:
        node = stack.pop()
        for child, parent_attr, child_attr in adjacency[node]:
            if child in visited:
                continue
            visited.add(child)
            edges.append(JoinEdge(node, child, parent_attr, child_attr))
            stack.append(child)
    return CyclicPlan(query=JoinQuery(driver, edges), residuals=residuals)


def apply_residuals(catalog, residuals, rows_by_relation):
    """Filter flat result rows by the residual equality predicates."""
    if not rows_by_relation:
        return rows_by_relation
    n = len(next(iter(rows_by_relation.values())))
    keep = np.ones(n, dtype=bool)
    for predicate in residuals:
        values_a = catalog.table(predicate.relation_a).column(
            predicate.attr_a
        )[rows_by_relation[predicate.relation_a]]
        values_b = catalog.table(predicate.relation_b).column(
            predicate.attr_b
        )[rows_by_relation[predicate.relation_b]]
        keep &= values_a == values_b
    return {rel: rows[keep] for rel, rows in rows_by_relation.items()}


def execute_cyclic(
    catalog,
    plan,
    mode=ExecutionMode.COM,
    order=None,
    collect_output=False,
    expansion_batch=8192,
    max_intermediate_tuples=50_000_000,
):
    """Evaluate a (possibly cyclic) plan: tree join + residual filters.

    Returns ``(output_size, execution_result, output_rows)``; the
    execution result carries the tree-join counters.  Residual
    filtering happens batch-at-a-time on the flat result, so cyclic
    evaluation always pays the expansion (there is no factorized output
    for cyclic queries — residual predicates break factorization).
    """
    from ..engine.executor import execute
    from ..storage.partition import PartitionedTable

    mode = ExecutionMode(mode)
    query = plan.query
    for relation in query.relations:
        if isinstance(catalog.table(relation), PartitionedTable):
            raise ValueError(
                "cyclic evaluation requires an unpartitioned catalog: "
                f"relation {relation!r} is hash-partitioned and residual "
                "filters would mix base and physical row ids"
            )
    if not plan.residuals:
        result = execute(
            catalog, query, order, mode,
            flat_output=True, collect_output=collect_output,
            expansion_batch=expansion_batch,
            max_intermediate_tuples=max_intermediate_tuples,
        )
        return result.output_size, result, result.output_rows

    if mode.factorized:
        # Run the tree join factorized, then filter during expansion.
        result = execute(
            catalog, query, order, mode,
            flat_output=False, collect_output=False,
            max_intermediate_tuples=max_intermediate_tuples,
        )
        total = 0
        collected = [] if collect_output else None
        for batch in result.factorized.expand(
            batch_entries=expansion_batch, max_rows=4_000_000
        ):
            filtered = apply_residuals(catalog, plan.residuals, batch)
            batch_size = len(next(iter(filtered.values())))
            total += batch_size
            result.counters.tuples_generated += batch_size
            if collected is not None and batch_size:
                collected.append(filtered)
    else:
        result = execute(
            catalog, query, order, mode,
            flat_output=True, collect_output=True,
            expansion_batch=expansion_batch,
            max_intermediate_tuples=max_intermediate_tuples,
        )
        filtered = apply_residuals(catalog, plan.residuals,
                                   result.output_rows)
        total = len(next(iter(filtered.values()))) if filtered else 0
        collected = [filtered] if collect_output else None

    output_rows = None
    if collect_output:
        if collected:
            output_rows = {
                rel: np.concatenate([b[rel] for b in collected])
                for rel in collected[0]
            }
        else:
            output_rows = {
                rel: np.empty(0, dtype=np.int64) for rel in query.relations
            }
    result.output_size = total
    return total, result, output_rows
