"""A small thread-safe LRU cache with hit/miss accounting.

Shared by the statistics cache (:class:`repro.core.stats.StatsCache`)
and the plan cache (:class:`repro.service.PlanCache`).  Keys must be
hashable; capacity ``None`` means unbounded.

Every operation (including the stats counters) runs under an internal
re-entrant lock, so one cache instance can back several concurrently
planning :class:`~repro.service.QuerySession` threads without corrupting
the underlying ``OrderedDict`` or dropping counter increments.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass
class CacheStats:
    """Counters describing a cache's behaviour so far."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self):
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations})"
        )


class LRUCache:
    """Least-recently-used mapping with bounded capacity.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted when a put would exceed it.  ``None`` disables eviction.
    """

    def __init__(self, capacity=128):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.stats = CacheStats()
        # Re-entrant so get_or_compute's compute() may itself use the
        # cache (e.g. nested stats derivations) without deadlocking.
        self._lock = threading.RLock()
        #: key -> Event for in-flight get_or_compute computations
        self._inflight = {}

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def get(self, key, default=None):
        """Look up ``key``, refreshing its recency; counts hit/miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key, value):
        """Insert/overwrite ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if self.capacity is not None and len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return value

    def get_or_compute(self, key, compute):
        """Return the cached value, computing and inserting on a miss.

        Concurrent misses of one key are **single-flight**: the first
        caller computes, the rest wait for its result.  The compute runs
        *outside* the cache lock, so a slow derivation (e.g. a
        data-scanning stats derivation) never blocks lookups of other
        keys.  If the owning compute raises, the exception propagates
        to that caller and one of the waiters takes over the
        computation.  ``compute`` must not re-enter the cache for the
        *same* key (other keys are fine).
        """
        while True:
            with self._lock:
                value = self._entries.get(key, _MISSING)
                if value is not _MISSING:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return value
                event = self._inflight.get(key)
                if event is None:
                    self.stats.misses += 1
                    event = self._inflight[key] = threading.Event()
                    break  # this caller owns the computation
            # Someone else is computing this key: wait, then re-check
            # (a hit normally; a re-miss if the owner failed or the
            # entry was already evicted, in which case one waiter
            # becomes the new owner).
            event.wait()
        try:
            value = compute()
            self.put(key, value)
        finally:
            # Always release the in-flight marker — even when compute()
            # or the insert raises — so waiters re-check instead of
            # blocking forever on a stranded event.
            with self._lock:
                del self._inflight[key]
            event.set()
        return value

    def clear(self):
        """Drop every entry (counted as invalidations)."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def __getstate__(self):
        """Pickle as an *empty* cache of the same capacity.

        Locks, in-flight events and cached values never cross process
        boundaries: a cache shipped to a planning worker (see
        :mod:`repro.service.async_service`) re-derives entries on demand
        from the content-addressed keys, which is both correct and far
        cheaper than serializing plans or partitioned catalogs.
        """
        return {"capacity": self.capacity}

    def __setstate__(self, state):
        self.__init__(state["capacity"])

    def keys(self):
        with self._lock:
            return list(self._entries)

    def __repr__(self):
        return (
            f"LRUCache(size={len(self)}, capacity={self.capacity}, "
            f"{self.stats})"
        )
