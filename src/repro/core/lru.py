"""A small LRU cache with hit/miss accounting.

Shared by the statistics cache (:class:`repro.core.stats.StatsCache`)
and the plan cache (:class:`repro.service.PlanCache`).  Keys must be
hashable; capacity ``None`` means unbounded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass
class CacheStats:
    """Counters describing a cache's behaviour so far."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self):
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations})"
        )


class LRUCache:
    """Least-recently-used mapping with bounded capacity.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted when a put would exceed it.  ``None`` disables eviction.
    """

    def __init__(self, capacity=128):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.stats = CacheStats()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key, default=None):
        """Look up ``key``, refreshing its recency; counts hit/miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key, value):
        """Insert/overwrite ``key``, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value

    def get_or_compute(self, key, compute):
        """Return the cached value, computing and inserting on a miss."""
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = self.put(key, compute())
        return value

    def clear(self):
        """Drop every entry (counted as invalidations)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def keys(self):
        return list(self._entries)

    def __repr__(self):
        return (
            f"LRUCache(size={len(self)}, capacity={self.capacity}, "
            f"{self.stats})"
        )
