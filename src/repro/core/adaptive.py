"""Adaptive optimizer knobs derived from measured scaling data.

``benchmarks/bench_optimizer_scaling.py`` records, per query shape and
relation count, the wall time of the exhaustive DP, the IDP block DP
and beam search, plus plan-quality ratios.  This module turns that
record (``benchmarks/results/BENCH_optimizer_scaling.json``) into
planner defaults, replacing the static crossover constants:

* :func:`crossover_relations` — the relation counts where the
  ``optimizer="auto"`` ladder should step from exhaustive to IDP and
  from IDP to beam, given a planning-time budget;
* :func:`adaptive_block_size` / :func:`adaptive_beam_width` — the
  ``idp_block_size`` / ``beam_width`` values implied by those
  crossovers (``"auto"`` knob values on :class:`~repro.planner.Planner`
  resolve through these).

Wall times beyond the measured grid are extrapolated with a
least-squares fit of ``log2(ms)`` against the relation count on the
*worst* measured shape (stars for the exponential DP), so the derived
limits stay conservative.  Everything degrades gracefully: with no
benchmark record on disk the static defaults apply unchanged.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DEFAULT_INTERACTIVE_BUDGET_MS",
    "ScalingProfile",
    "adaptive_beam_width",
    "adaptive_block_size",
    "crossover_relations",
    "load_scaling_profile",
    "profile_from_record",
]

#: the planning latency an interactive service targets per query when no
#: explicit ``planning_budget_ms`` is configured — knob derivation uses
#: it as the implied budget
DEFAULT_INTERACTIVE_BUDGET_MS = 250.0

#: static fallbacks (mirror repro.core.optimizer's AUTO_* constants and
#: the planner's historical knob defaults)
_STATIC_EXHAUSTIVE_MAX = 12
_STATIC_IDP_MAX = 40
_STATIC_BLOCK_SIZE = 8
_STATIC_BEAM_WIDTH = 8

#: hard clamps so a degenerate record can never produce absurd knobs
_BLOCK_SIZE_RANGE = (4, 14)
_BEAM_WIDTH_RANGE = (2, 64)
_RELATION_LIMIT_RANGE = (6, 512)

_DEFAULT_RESULTS_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks" / "results" / "BENCH_optimizer_scaling.json"
)

#: (path, mtime) -> ScalingProfile; the record changes at most once per
#: benchmark run, so planner construction stays O(1) after the first load
_profile_cache = {}


@dataclass(frozen=True)
class ScalingProfile:
    """Per-shape optimization wall times per relation count.

    ``exhaustive_ms`` / ``idp_ms`` / ``beam_ms`` map a query shape to
    ``{relation count: median ms}``.  Shapes are kept separate because
    their growth laws differ fundamentally — the exhaustive DP is
    polynomial on chains but ``O(n 2^n)`` on stars, so the crossover
    derivation fits each shape independently and takes the *most
    constraining* shape (a limit must be safe for the worst query that
    can arrive).  ``measured_block_size`` / ``measured_beam_width`` are
    the knob values the record was measured with (times scale roughly
    linearly in both, which the knob derivation exploits).
    """

    exhaustive_ms: dict
    idp_ms: dict
    beam_ms: dict
    measured_block_size: int = _STATIC_BLOCK_SIZE
    measured_beam_width: int = _STATIC_BEAM_WIDTH


def profile_from_record(record):
    """Build a :class:`ScalingProfile` from a benchmark JSON record.

    Returns ``None`` for records with no usable timing rows (so callers
    fall back to the static defaults uniformly).
    """
    exhaustive, idp, beam = {}, {}, {}

    def _keep(table, shape, n, ms):
        if ms is None:
            return
        series = table.setdefault(shape, {})
        ms = float(ms)
        if n not in series or ms > series[n]:
            series[n] = ms

    for row in record.get("quality_vs_exhaustive", []):
        _keep(exhaustive, row.get("shape", "all"), int(row["num_relations"]),
              row.get("exhaustive_ms_median"))
    for row in record.get("optimization_time", []):
        shape = row.get("shape", "all")
        n = int(row["num_relations"])
        _keep(exhaustive, shape, n, row.get("exhaustive_ms_median"))
        _keep(idp, shape, n, row.get("idp_ms_median"))
        _keep(beam, shape, n, row.get("beam_ms_median"))
    if not (exhaustive or idp or beam):
        return None
    knobs = record.get("knobs", {})
    return ScalingProfile(
        exhaustive_ms=exhaustive,
        idp_ms=idp,
        beam_ms=beam,
        measured_block_size=int(knobs.get("block_size", _STATIC_BLOCK_SIZE)),
        measured_beam_width=int(knobs.get("beam_width", _STATIC_BEAM_WIDTH)),
    )


def load_scaling_profile(path=None):
    """The measured scaling profile, or ``None`` when unavailable.

    Reads ``benchmarks/results/BENCH_optimizer_scaling.json`` (or
    ``path``), memoized on the file's mtime; any parse problem returns
    ``None`` — adaptive resolution must never make planning fail.
    """
    path = Path(path) if path is not None else _DEFAULT_RESULTS_PATH
    try:
        mtime = os.path.getmtime(path)
    except OSError:
        return None
    key = (str(path), mtime)
    if key not in _profile_cache:
        try:
            record = json.loads(path.read_text())
            _profile_cache.clear()  # at most one live record per path
            _profile_cache[key] = profile_from_record(record)
        except (OSError, ValueError):
            return None
    return _profile_cache[key]


def _shape_max_within(series, budget_ms):
    """Largest relation count whose predicted time fits ``budget_ms``,
    for one shape's ``{n: ms}`` series.

    Fits ``log2(ms) = a + b * n`` by least squares over the measured
    points and inverts at the budget, which extrapolates exponential
    growth (the DP on stars) soundly and near-linear growth
    conservatively.  Already-measured points are ground truth: a count
    measured under budget is admissible even when the fit disagrees.
    Returns ``None`` when the series is empty (no data is no
    constraint); ``0`` means this shape affords *nothing* at the budget
    — a hard constraint the caller's clamp raises to the floor.
    """
    points = [(n, ms) for n, ms in sorted(series.items()) if ms > 0]
    if not points:
        return None
    measured_ok = max((n for n, ms in points if ms <= budget_ms), default=0)
    if len(points) == 1:
        return measured_ok
    xs = [n for n, _ in points]
    ys = [math.log2(ms) for _, ms in points]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    var_x = sum((x - mean_x) ** 2 for x in xs)
    slope = (
        sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
        if var_x else 0.0
    )
    if slope <= 0:  # flat/degenerate growth: measurements are the answer
        return measured_ok
    intercept = mean_y - slope * mean_x
    fitted = int((math.log2(budget_ms) - intercept) / slope)
    return max(measured_ok, fitted, 0)


def _max_relations_within(series_by_shape, budget_ms):
    """The most constraining shape's limit (``None`` when no data).

    A relation-count limit must hold for the worst query shape that can
    arrive, so each shape's series is fitted independently and the
    minimum wins — mixing shapes into one fit would let a polynomial
    shape (chains) mask an exponential one (stars).
    """
    limits = [
        limit
        for series in series_by_shape.values()
        if (limit := _shape_max_within(series, budget_ms)) is not None
    ]
    return min(limits, default=None)


def _clamp(value, bounds):
    low, high = bounds
    return max(low, min(high, value))


def crossover_relations(profile, budget_ms=None):
    """``(exhaustive_max, idp_max)`` for a planning budget.

    The ladder runs each query's order search ``drivers * modes`` times
    in the worst case, so the per-search share is taken as budget / 4
    (mode="auto" prices four DP-costable strategies); the returned
    limits are where the measured (or extrapolated) per-search time
    crosses that share.
    """
    if profile is None:
        return _STATIC_EXHAUSTIVE_MAX, _STATIC_IDP_MAX
    budget_ms = budget_ms or DEFAULT_INTERACTIVE_BUDGET_MS
    per_search_ms = budget_ms / 4.0
    exhaustive_max = _max_relations_within(profile.exhaustive_ms,
                                           per_search_ms)
    idp_max = _max_relations_within(profile.idp_ms, per_search_ms)
    if exhaustive_max is None:
        exhaustive_max = _STATIC_EXHAUSTIVE_MAX
    if idp_max is None:
        idp_max = _STATIC_IDP_MAX
    exhaustive_max = _clamp(exhaustive_max, _RELATION_LIMIT_RANGE)
    idp_max = _clamp(idp_max, _RELATION_LIMIT_RANGE)
    return exhaustive_max, max(idp_max, exhaustive_max)


def adaptive_block_size(profile, budget_ms=None):
    """``idp_block_size`` implied by the exhaustive-DP crossover.

    IDP solves each block *exactly* with the Algorithm 1 recurrence, so
    the largest affordable block is exactly the largest query the
    exhaustive DP itself stays within budget for (worst shape) — that
    is the crossover point, clamped to sane bounds.
    """
    if profile is None:
        return _STATIC_BLOCK_SIZE
    exhaustive_max, _ = crossover_relations(profile, budget_ms)
    return _clamp(exhaustive_max, _BLOCK_SIZE_RANGE)


def adaptive_beam_width(profile, budget_ms=None):
    """``beam_width`` that spends the budget at the largest measured n.

    Beam time is linear in the width, so the measured width scales by
    the headroom between the worst measured beam time and the
    per-search budget share; clamped to keep quality sane when the
    budget is huge and progress possible when it is tiny.
    """
    if profile is None:
        return _STATIC_BEAM_WIDTH
    budget_ms = budget_ms or DEFAULT_INTERACTIVE_BUDGET_MS
    per_search_ms = budget_ms / 4.0
    worst_ms = max(
        (ms for series in profile.beam_ms.values() for ms in series.values()),
        default=0.0,
    )
    if not worst_ms:
        return _STATIC_BEAM_WIDTH
    scaled = int(profile.measured_beam_width * per_search_ms / worst_ms)
    return _clamp(scaled, _BEAM_WIDTH_RANGE)
