"""Join-order optimization algorithms (Sections 3.4-3.6).

The COM cost function violates the ASI property (Theorem 3.1), so the
classical rank-ordering algorithm is no longer optimal.  This module
implements:

* :func:`exhaustive_optimal` — Algorithm 1, a dynamic program over
  connected prefixes of the join tree (optimal; ``O(n 2^n)`` worst case
  but much faster on non-star trees);
* three greedy heuristics (:func:`greedy_order`): ``rank`` (classical
  rank ordering by selectivity), ``result_size`` (minimize the
  intermediate result appended by the next join) and ``survival``
  (minimize the survival probability of the prefix) — Section 3.4;
* :func:`optimize_sj` — the polynomial-time optimal algorithm for the
  semi-join full-reduction variants (Section 3.6);
* :func:`best_driver` — re-run any optimizer for every choice of the
  driver relation and keep the cheapest (Sections 2.1 and 3.5).

Beyond the paper, the **optimizer-scaling subsystem** extends Algorithm
1's reach past its ``O(n 2^n)`` wall (~15 relations on star-shaped
queries):

* :func:`idp_order` — an IDP-style blockwise dynamic program: pick a
  block of ``block_size`` frontier relations greedily, solve the block
  *exactly* with the Algorithm 1 recurrence, commit its order, repeat.
  With ``block_size >= n`` it degenerates to the exhaustive DP and is
  bit-identical to it;
* :func:`beam_order` — beam search over connected prefixes for very
  large queries (linear in the number of relations for fixed width);
* :func:`choose_optimizer` — the ``"auto"`` policy mapping a relation
  count to ``exhaustive`` / ``idp`` / ``beam``.

All three accumulate the same set-determined delta costs (and share one
:class:`~repro.core.costmodel.CostMemo`), so their ``cost`` fields are
directly comparable — :func:`incremental_order_cost` exposes that
costing for arbitrary orders.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..modes import ExecutionMode
from .costmodel import (
    CostMemo,
    CostWeights,
    _eq1_probes,
    _survival,
    plan_cost,
)
from .costmodel_sj import reduction_ratios, sj_phase2_fanouts

__all__ = [
    "OptimizedPlan",
    "PlanningBudgetExceeded",
    "exhaustive_optimal",
    "idp_order",
    "beam_order",
    "choose_optimizer",
    "incremental_order_cost",
    "worst_case_cost",
    "greedy_order",
    "GREEDY_HEURISTICS",
    "optimize_sj",
    "best_driver",
    "AUTO_EXHAUSTIVE_MAX_RELATIONS",
    "AUTO_IDP_MAX_RELATIONS",
]


class PlanningBudgetExceeded(RuntimeError):
    """An order search overran its planning-time deadline.

    Raised by :func:`exhaustive_optimal` and :func:`idp_order` when a
    ``deadline`` (a ``time.perf_counter()`` timestamp) passes mid-search.
    The planner catches it and falls down the optimizer ladder
    (exhaustive -> IDP -> beam); :func:`beam_order` is the floor of the
    ladder and never checks a deadline.
    """

    def __init__(self, algorithm):
        super().__init__(
            f"{algorithm}: planning budget exceeded before the order "
            f"search completed"
        )
        self.algorithm = algorithm


@dataclass
class OptimizedPlan:
    """An optimizer's output: a join order plus its estimated cost."""

    query: object
    order: list
    cost: float
    mode: ExecutionMode = ExecutionMode.COM
    #: per-internal-relation semi-join child orders (SJ modes only)
    child_orders: dict = field(default_factory=dict)

    def __repr__(self):
        return (
            f"OptimizedPlan(driver={self.query.root!r}, order={self.order}, "
            f"cost={self.cost:.4g}, mode={self.mode})"
        )


# ----------------------------------------------------------------------
# Incremental (prefix-set determined) cost deltas
# ----------------------------------------------------------------------


def _frontier_pseudo(query, stats, joined, eps, memo=None):
    """Pseudo bitvector nodes for every checked-but-unjoined relation.

    Under full bitvector push-down a relation's bitvector has been
    applied as soon as its parent is joined; with the driver fixed the
    set of applied bitvectors depends only on the *set* of joined
    relations, which is why the principle of optimality holds
    (Theorem 3.3).  With ``memo``, the static structure tables and the
    per-relation ``min(m + eps, 1)`` values are read from it instead of
    being re-derived per call (a hot path for beam/IDP on large
    queries).
    """
    if memo is not None:
        non_root, parent_of, m_eff = memo.non_root, memo.parent_of, memo.m_eff
    else:
        non_root, parent_of, m_eff = query.non_root_relations, None, {}
    root = query.root
    pseudo = {}
    pseudo_children = {}
    for relation in non_root:
        if relation in joined:
            continue
        parent = (
            parent_of[relation] if parent_of is not None
            else query.parent(relation)
        )
        if parent == root or parent in joined:
            value = m_eff.get(relation)
            if value is None:
                value = m_eff[relation] = min(stats.m(relation) + eps, 1.0)
            name = f"~bv:{relation}"
            pseudo[name] = (parent, value)
            pseudo_children.setdefault(parent, []).append(name)
    return pseudo, pseudo_children


def _frontier_pseudo_memo(query, stats, joined, eps, memo):
    """Memoized :func:`_frontier_pseudo` (the frontier is set-determined)."""
    if memo is None:
        return _frontier_pseudo(query, stats, joined, eps)
    key = memo.mask_of(joined)
    hit = memo.frontier.get(key)
    if hit is None:
        hit = memo.frontier[key] = _frontier_pseudo(query, stats, joined,
                                                    eps, memo)
    return hit


def _prefix_selectivity(query, stats, joined, memo=None):
    """``prod_{rel in joined, rel != root} s(rel)`` — set-determined.

    Memoized by subset mask when a :class:`CostMemo` is supplied (the
    STD / BVP+STD delta costs evaluate it for every candidate of every
    prefix the search touches).  The product is accumulated in the
    query's canonical relation order — never the set's iteration order,
    which can vary between equal-content sets and would make memoized
    and unmemoized costs differ in the last float ulp.
    """
    if memo is not None:
        key = memo.mask_of(joined)
        hit = memo.selprod.get(key)
        if hit is not None:
            return hit
        non_root = memo.non_root
    else:
        non_root = query.non_root_relations
    product = 1.0
    for rel in non_root:
        if rel in joined:
            product *= stats.selectivity(rel)
    if memo is not None:
        memo.selprod[key] = product
    return product


def _delta_cost(query, stats, joined, relation, mode, eps, weights,
                memo=None):
    """Additional expected cost of joining ``relation`` after ``joined``.

    This is the quantity Algorithm 1 accumulates; for every supported
    mode it depends only on the joined *set*, not its order (the
    principle of optimality, Sections 3.4 and 3.5).  ``memo`` is an
    optional :class:`~repro.core.costmodel.CostMemo` shared across the
    DP so overlapping subsets are costed once.
    """
    parent = query.parent(relation)
    c = stats.probe_cost(relation)
    if mode is ExecutionMode.STD:
        tuples = stats.driver_size * _prefix_selectivity(
            query, stats, joined, memo
        )
        return tuples * c * weights.hash_probe
    if mode is ExecutionMode.COM:
        probes = _eq1_probes(query, stats, joined, parent, memo=memo)
        return probes * c * weights.hash_probe
    if mode in (ExecutionMode.BVP_STD, ExecutionMode.BVP_COM):
        pseudo, pseudo_children = _frontier_pseudo_memo(
            query, stats, joined, eps, memo
        )
        own = f"~bv:{relation}"
        if mode is ExecutionMode.BVP_COM:
            hash_probes = _eq1_probes(
                query, stats, joined, parent, pseudo, pseudo_children, memo
            )
        else:
            hash_probes = stats.driver_size * _prefix_selectivity(
                query, stats, joined, memo
            )
            for name, (_, m_eff) in pseudo.items():
                hash_probes *= m_eff
        # Bitvector checks triggered by this join: the children of
        # ``relation`` become checkable.  Each check touches the alive
        # entries of ``relation`` (COM) or the expanded stream (STD).
        # The pseudo frontier *after* the join — minus the new checks
        # themselves, which hang off ``relation`` — is exactly the
        # current frontier without ``relation``'s own pseudo node, so it
        # is derived in place instead of recomputed from scratch (the
        # dominant cost of large-query beam/IDP searches before).
        bv_probes = 0.0
        new_checks = sorted(
            (child for child in query.children(relation)),
            key=lambda child: stats.m(child),
        )
        if new_checks:
            joined_after = joined | {relation}
            if mode is ExecutionMode.BVP_COM:
                # Alive entries of ``relation`` just after its join,
                # before its children's bitvectors are applied.
                base_pseudo = {
                    name: val
                    for name, val in pseudo.items()
                    if name != own
                }
                base_children = {
                    node: [n for n in names if n != own]
                    for node, names in pseudo_children.items()
                }
                alive = _eq1_probes(
                    query, stats, joined_after, relation, base_pseudo,
                    base_children, memo
                )
            else:
                alive = stats.driver_size * _prefix_selectivity(
                    query, stats, joined_after, memo
                )
                for name, (_, m_eff) in pseudo.items():
                    if name != own:
                        alive *= m_eff
            for child in new_checks:
                bv_probes += alive
                alive *= min(stats.m(child) + eps, 1.0)
        return (
            hash_probes * c * weights.hash_probe
            + bv_probes * weights.bitvector_probe
        )
    raise ValueError(f"unsupported mode for incremental costing: {mode}")


def _memo_from(memoize, query):
    """Resolve a ``memoize`` argument (bool or CostMemo) to a memo."""
    if isinstance(memoize, CostMemo):
        return memoize
    return CostMemo(query) if memoize else None


# ----------------------------------------------------------------------
# Algorithm 1: exhaustive dynamic program over connected prefixes
# ----------------------------------------------------------------------


def exhaustive_optimal(query, stats, mode=ExecutionMode.COM, eps=0.01,
                       weights=CostWeights(), memoize=True,
                       upper_bound=None, deadline=None):
    """Algorithm 1: optimal join order for a fixed driver.

    Dynamic programming over connected subsets of the join tree that
    contain the root; ``best[S]`` is the cheapest cost of any valid
    order whose prefix is exactly ``S``.  The cost function obeys the
    principle of optimality (every prefix of an optimal order is
    optimal for its set), so expanding frontiers suffices.

    With ``memoize`` (the default) the survival-probability and
    Eq. (1) evaluations underlying every delta cost are tabulated over
    relation subsets in a :class:`~repro.core.costmodel.CostMemo`, so
    overlapping prefixes share work instead of re-costing from scratch;
    ``memoize=False`` recomputes everything (the original behaviour)
    and returns bit-identical orders and costs.  Passing an existing
    :class:`CostMemo` (valid for this (query, stats, eps)) reuses its
    tables across optimizer invocations.

    ``upper_bound`` prunes DP states whose accumulated cost already
    reaches it (see :func:`_exact_block_order`); the return is ``None``
    when no order under the bound exists — used by the planner's
    ``driver="auto"`` search to discard candidate rootings against the
    incumbent without finishing their DP.  ``deadline`` aborts with
    :class:`PlanningBudgetExceeded` (the planner then falls back to a
    cheaper algorithm).
    """
    mode = ExecutionMode(mode)
    if mode.uses_semijoin:
        return optimize_sj(query, stats, factorized=mode.factorized,
                           weights=weights)
    memo = _memo_from(memoize, query)
    # One shared implementation of the Algorithm 1 recurrence: the
    # exhaustive DP is the block DP with everything in a single block.
    total_cost, order = _exact_block_order(
        query, stats, [], query.non_root_relations, mode, eps, weights, memo,
        upper_bound=upper_bound, deadline=deadline, algorithm="exhaustive",
    )
    if order is None:
        return None
    return OptimizedPlan(query=query, order=order, cost=total_cost, mode=mode)


# ----------------------------------------------------------------------
# Optimizer-scaling subsystem: IDP blocks, beam search, auto policy
# ----------------------------------------------------------------------

#: relation-count crossovers for :func:`choose_optimizer` ("auto").
#: Exhaustive DP is ``O(n 2^n)`` on stars, so it stops being interactive
#: in the low teens; IDP stays exact-within-blocks up to mid-size
#: graphs; beam search covers everything beyond (linear per width).
AUTO_EXHAUSTIVE_MAX_RELATIONS = 12
AUTO_IDP_MAX_RELATIONS = 40


def choose_optimizer(num_relations,
                     exhaustive_max=AUTO_EXHAUSTIVE_MAX_RELATIONS,
                     idp_max=AUTO_IDP_MAX_RELATIONS):
    """The ``"auto"`` policy: pick an algorithm by relation count.

    Returns ``"exhaustive"``, ``"idp"`` or ``"beam"``.  The default
    crossovers are conservative worst-case (star query) bounds measured
    by ``benchmarks/bench_optimizer_scaling.py``.
    """
    if num_relations <= exhaustive_max:
        return "exhaustive"
    if num_relations <= idp_max:
        return "idp"
    return "beam"


def incremental_order_cost(query, stats, order, mode=ExecutionMode.COM,
                           eps=0.01, weights=CostWeights(), memo=None):
    """The optimizer's objective evaluated on an arbitrary valid order.

    Accumulates the same set-determined delta costs that
    :func:`exhaustive_optimal`, :func:`idp_order` and :func:`beam_order`
    minimize, so plans from different algorithms are comparable on a
    single scale (e.g. the plan-quality ratios recorded by
    ``bench_optimizer_scaling``).  Semi-join modes are not incrementally
    costable (use :func:`~repro.core.costmodel.plan_cost`).
    """
    mode = ExecutionMode(mode)
    query.validate_order(order)
    joined = {query.root}
    total = 0.0
    for relation in order:
        total += _delta_cost(query, stats, joined, relation, mode, eps,
                             weights, memo)
        joined.add(relation)
    return total


def worst_case_cost(query, bound_stats, order, eps=0.01,
                    weights=CostWeights(), memo=None):
    """Pessimistic (UES-style) objective: worst-case probe work.

    ``bound_stats`` must come from
    :func:`repro.core.bounds.bound_stats_for_rooting` — per-edge
    ``m = 1, fo = max_frequency`` — which makes each STD prefix product
    a *guaranteed* cardinality upper bound, and this sum of per-join
    delta costs the guaranteed worst-case work of running ``order``.
    The deltas are set-determined, so :func:`exhaustive_optimal`,
    :func:`idp_order` and :func:`beam_order` minimize exactly this
    objective when handed bound stats with ``ExecutionMode.STD`` — the
    pessimistic second objective needs no new search code.
    """
    return incremental_order_cost(
        query, bound_stats, order, mode=ExecutionMode.STD, eps=eps,
        weights=weights, memo=memo,
    )


def _greedy_block(query, stats, order, block_size, mode, eps, weights, memo):
    """Select the next IDP block: up to ``block_size`` frontier
    relations, chosen one at a time by cheapest immediate delta cost.

    Only the *membership* of the block matters — the exact DP re-derives
    the optimal order within it — so a cheap greedy pick suffices, and
    every delta evaluated here lands in the shared memo for the DP to
    reuse.
    """
    block = []
    joined = {query.root, *order}
    extended = list(order)
    while len(block) < block_size:
        candidates = query.eligible_next(extended)
        if not candidates:
            break
        best_key = best_rel = None
        for relation in candidates:
            key = (
                _delta_cost(query, stats, joined, relation, mode, eps,
                            weights, memo),
                relation,
            )
            if best_key is None or key < best_key:
                best_key, best_rel = key, relation
        block.append(best_rel)
        joined.add(best_rel)
        extended.append(best_rel)
    return block


def _exact_block_order(query, stats, committed_order, block, mode, eps,
                       weights, memo, upper_bound=None, deadline=None,
                       algorithm="exhaustive"):
    """Optimal order of ``block`` appended after ``committed_order``.

    The one implementation of the Algorithm 1 connected-prefix DP,
    restricted to block members: :func:`exhaustive_optimal` calls it
    with everything in a single block, :func:`idp_order` with bounded
    blocks — which is why ``idp_order(block_size >= n)`` is
    bit-identical to the exhaustive DP by construction.  Returns
    ``(cost_delta, block_order)`` relative to the committed prefix.

    ``upper_bound`` enables branch-and-bound pruning: delta costs are
    non-negative, so a prefix whose accumulated cost already reaches
    the bound can never complete into an order cheaper than it — such
    states are dropped.  When *every* completion is pruned the return
    is ``(None, None)``: the caller's incumbent plan is at least as
    cheap as anything this search could find.  Pruning never changes a
    returned result (a sub-bound optimum's own prefixes all cost less
    than it, so its DP path always survives) — it only turns
    guaranteed-losing searches into early exits.

    ``deadline`` (a ``time.perf_counter()`` timestamp) aborts the
    search with :class:`PlanningBudgetExceeded` once passed; checked
    per expanded prefix, so the overrun is bounded by one frontier
    expansion.
    """
    block_set = frozenset(block)
    base = frozenset([query.root]) | frozenset(committed_order)
    best = {base: (0.0, list(committed_order))}
    frontier_sets = [base]
    target = base | block_set
    while frontier_sets:
        next_level = {}
        for prefix_set in frontier_sets:
            if deadline is not None and time.perf_counter() > deadline:
                raise PlanningBudgetExceeded(algorithm)
            prefix_cost, prefix_order = best[prefix_set]
            joined = set(prefix_set)
            for relation in query.eligible_next(prefix_order):
                if relation not in block_set:
                    continue
                delta = _delta_cost(
                    query, stats, joined, relation, mode, eps, weights, memo
                )
                new_cost = prefix_cost + delta
                if upper_bound is not None and new_cost >= upper_bound:
                    continue  # cannot beat the incumbent: deltas are >= 0
                new_set = prefix_set | {relation}
                incumbent = next_level.get(new_set)
                if incumbent is None or new_cost < incumbent[0]:
                    next_level[new_set] = (new_cost, prefix_order + [relation])
        best.update(next_level)
        frontier_sets = list(next_level)
    if target not in best:
        return None, None  # pruned out: nothing under the bound
    cost, order = best[target]
    return cost, order[len(committed_order):]


def idp_order(query, stats, mode=ExecutionMode.COM, eps=0.01,
              weights=CostWeights(), block_size=8, memoize=True,
              upper_bound=None, deadline=None):
    """IDP-style blockwise dynamic program (exhaustive-DP fallback).

    Repeatedly (1) grows a block of up to ``block_size`` frontier
    relations greedily, (2) orders the block *optimally* with the
    Algorithm 1 recurrence (``O(2^block_size)`` states), and (3) commits
    the block, until every relation is joined.  Cost per block is
    bounded, so the whole run is ``O(n/k * 2^k)`` DP states instead of
    ``O(2^n)`` — this is the classical IDP(k) idea adapted to the
    paper's connected-prefix DP.

    With ``block_size >= len(query.non_root_relations)`` a single block
    covers the whole query and the result is bit-identical to
    :func:`exhaustive_optimal` (same order, same cost float).

    ``upper_bound`` / ``deadline`` behave as in
    :func:`exhaustive_optimal`: a bounded search returns ``None`` when
    no completion can beat the bound (committed cost plus the current
    block's floor already reaches it), a deadline overrun raises
    :class:`PlanningBudgetExceeded`.
    """
    mode = ExecutionMode(mode)
    if mode.uses_semijoin:
        return optimize_sj(query, stats, factorized=mode.factorized,
                           weights=weights)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    memo = _memo_from(memoize, query)
    total = len(query.non_root_relations)
    order = []
    cost = 0.0
    while len(order) < total:
        block = _greedy_block(query, stats, order, block_size, mode, eps,
                              weights, memo)
        remaining_bound = (
            None if upper_bound is None else upper_bound - cost
        )
        block_cost, block_order = _exact_block_order(
            query, stats, order, block, mode, eps, weights, memo,
            upper_bound=remaining_bound, deadline=deadline, algorithm="idp",
        )
        if block_order is None:
            return None  # every completion already costs >= upper_bound
        cost += block_cost
        order.extend(block_order)
    return OptimizedPlan(query=query, order=order, cost=cost, mode=mode)


def beam_order(query, stats, mode=ExecutionMode.COM, eps=0.01,
               weights=CostWeights(), beam_width=8, memoize=True,
               upper_bound=None):
    """Beam search over connected prefixes, for very large queries.

    Keeps the ``beam_width`` cheapest prefixes per length (deduplicated
    by joined *set*, exactly like the DP's state space, so the beam
    never wastes slots on permutations of one set).  Runtime is
    ``O(n * beam_width * frontier)`` delta evaluations — linear in the
    relation count for fixed width.  ``beam_width=1`` degenerates to a
    greedy minimum-delta-cost order; wider beams trade time for
    quality.  Deterministic: ties break on (cost, order).

    With ``upper_bound``, prefixes whose cost already reaches the bound
    are dropped before they can occupy a beam slot (their completions
    can only cost more — deltas are non-negative), and the return is
    ``None`` when the whole beam dies.  Unlike the exact DPs, pruning
    *can* change which plan a bounded beam returns — dropped states
    free slots for cheaper ones — but never for the worse: every
    surviving state costs under the bound.  Beam search is the floor of
    the planner's budget ladder, so it takes no ``deadline``.
    """
    mode = ExecutionMode(mode)
    if mode.uses_semijoin:
        return optimize_sj(query, stats, factorized=mode.factorized,
                           weights=weights)
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    memo = _memo_from(memoize, query)
    total = len(query.non_root_relations)
    beam = [(0.0, [])]
    for _ in range(total):
        expansions = {}
        for prefix_cost, prefix_order in beam:
            joined = {query.root, *prefix_order}
            for relation in query.eligible_next(prefix_order):
                delta = _delta_cost(
                    query, stats, joined, relation, mode, eps, weights, memo
                )
                new_cost = prefix_cost + delta
                if upper_bound is not None and new_cost >= upper_bound:
                    continue
                new_set = frozenset(joined) | {relation}
                incumbent = expansions.get(new_set)
                if incumbent is None or new_cost < incumbent[0]:
                    expansions[new_set] = (new_cost, prefix_order + [relation])
        beam = sorted(expansions.values(),
                      key=lambda state: (state[0], state[1]))[:beam_width]
        if not beam:
            return None  # everything under consideration reached the bound
    cost, order = beam[0]
    return OptimizedPlan(query=query, order=order, cost=cost, mode=mode)


# ----------------------------------------------------------------------
# Greedy heuristics (Section 3.4)
# ----------------------------------------------------------------------


def _rank_key(query, stats, joined, relation):
    """Classical rank ordering: ascending ``(s - 1) / c``."""
    return (stats.selectivity(relation) - 1.0) / stats.probe_cost(relation)


def _result_size_key(query, stats, joined, relation):
    """Minimize the intermediate result appended by the next join.

    Under the factorized model the result of joining ``relation`` adds
    ``probes * s`` entries (Eq. (1) probes, each fanning out ``s``).
    """
    parent = query.parent(relation)
    probes = _eq1_probes(query, stats, joined, parent)
    return probes * stats.selectivity(relation)


def _survival_key(query, stats, joined, relation):
    """Minimize the total survival probability of the extended prefix."""
    members = joined | {relation}
    return _survival(query, stats, query.root, members, {}, {})


GREEDY_HEURISTICS = {
    "rank": _rank_key,
    "result_size": _result_size_key,
    "survival": _survival_key,
}


def greedy_order(query, stats, heuristic="survival", mode=ExecutionMode.COM,
                 eps=0.01, weights=CostWeights(), flat_output=False):
    """Greedy join ordering with one of the paper's three heuristics.

    ``heuristic`` is one of ``"rank"``, ``"result_size"``,
    ``"survival"``.  The returned plan's ``cost`` is evaluated under
    ``mode``'s full cost model (the paper evaluates all heuristics under
    the COM cost model — Section 5.1).
    """
    try:
        key_fn = GREEDY_HEURISTICS[heuristic]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {heuristic!r}; "
            f"choose from {sorted(GREEDY_HEURISTICS)}"
        ) from None
    order = []
    joined = {query.root}
    while len(order) < len(query.non_root_relations):
        candidates = query.eligible_next(order)
        scored = [
            (key_fn(query, stats, joined, relation), relation)
            for relation in candidates
        ]
        scored.sort(key=lambda pair: (pair[0], pair[1]))
        chosen = scored[0][1]
        order.append(chosen)
        joined.add(chosen)
    cost = plan_cost(query, stats, order, mode, eps=eps,
                     flat_output=flat_output).total(weights)
    return OptimizedPlan(query=query, order=order, cost=cost, mode=mode)


# ----------------------------------------------------------------------
# Semi-join variants: polynomial-time optimal (Section 3.6)
# ----------------------------------------------------------------------


def optimize_sj(query, stats, factorized, weights=CostWeights(),
                flat_output=False):
    """Optimal plan for SJ+STD / SJ+COM with the driver fixed.

    Decisions (Section 3.6): semi-join children in increasing adjusted
    ``m'``; the phase-2 order is increasing adjusted fanout ``fo'``
    (rank ordering, STD) or increasing root-to-relation fanout product
    (COM, where the cost is order-independent by Theorem 3.5 and the
    sort keeps intermediate factorized results small).
    """
    ratios, m_primes = reduction_ratios(query, stats)
    child_orders = {
        node: sorted(query.children(node), key=m_primes.__getitem__)
        for node in query.internal_relations()
    }
    fanouts = sj_phase2_fanouts(query, stats, ratios)
    if factorized:
        path_product = {query.root: 1.0}
        for relation in query.preorder():
            if relation != query.root:
                parent = query.parent(relation)
                path_product[relation] = path_product[parent] * fanouts[relation]
        sort_key = path_product.__getitem__
    else:
        sort_key = fanouts.__getitem__
    order = []
    while len(order) < len(query.non_root_relations):
        candidates = query.eligible_next(order)
        order.append(min(candidates, key=lambda rel: (sort_key(rel), rel)))
    mode = ExecutionMode.SJ_COM if factorized else ExecutionMode.SJ_STD
    cost = plan_cost(query, stats, order, mode,
                     flat_output=flat_output).total(weights)
    return OptimizedPlan(query=query, order=order, cost=cost, mode=mode,
                         child_orders=child_orders)


# ----------------------------------------------------------------------
# Driver choice
# ----------------------------------------------------------------------


def best_driver(query, stats_for_root, mode=ExecutionMode.COM, eps=0.01,
                weights=CostWeights(), optimizer=exhaustive_optimal):
    """Optimize once per candidate driver and keep the best plan.

    ``stats_for_root`` is a callable mapping a rooted
    :class:`~repro.core.query.JoinQuery` to its :class:`QueryStats`
    (the stats are direction-dependent, so they must be derived per
    rooting — e.g. with :func:`repro.core.stats.stats_from_data`).
    """
    best_plan = None
    for relation in query.relations:
        rooted = query.rerooted(relation)
        stats = stats_for_root(rooted)
        if optimizer is exhaustive_optimal:
            plan = optimizer(rooted, stats, mode=mode, eps=eps, weights=weights)
        else:
            plan = optimizer(rooted, stats)
        if best_plan is None or plan.cost < best_plan.cost:
            best_plan = plan
    return best_plan
