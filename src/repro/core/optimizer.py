"""Join-order optimization algorithms (Sections 3.4-3.6).

The COM cost function violates the ASI property (Theorem 3.1), so the
classical rank-ordering algorithm is no longer optimal.  This module
implements:

* :func:`exhaustive_optimal` — Algorithm 1, a dynamic program over
  connected prefixes of the join tree (optimal; ``O(n 2^n)`` worst case
  but much faster on non-star trees);
* three greedy heuristics (:func:`greedy_order`): ``rank`` (classical
  rank ordering by selectivity), ``result_size`` (minimize the
  intermediate result appended by the next join) and ``survival``
  (minimize the survival probability of the prefix) — Section 3.4;
* :func:`optimize_sj` — the polynomial-time optimal algorithm for the
  semi-join full-reduction variants (Section 3.6);
* :func:`best_driver` — re-run any optimizer for every choice of the
  driver relation and keep the cheapest (Sections 2.1 and 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..modes import ExecutionMode
from .costmodel import (
    CostMemo,
    CostWeights,
    _eq1_probes,
    _survival,
    plan_cost,
)
from .costmodel_sj import reduction_ratios, sj_phase2_fanouts

__all__ = [
    "OptimizedPlan",
    "exhaustive_optimal",
    "greedy_order",
    "GREEDY_HEURISTICS",
    "optimize_sj",
    "best_driver",
]


@dataclass
class OptimizedPlan:
    """An optimizer's output: a join order plus its estimated cost."""

    query: object
    order: list
    cost: float
    mode: ExecutionMode = ExecutionMode.COM
    #: per-internal-relation semi-join child orders (SJ modes only)
    child_orders: dict = field(default_factory=dict)

    def __repr__(self):
        return (
            f"OptimizedPlan(driver={self.query.root!r}, order={self.order}, "
            f"cost={self.cost:.4g}, mode={self.mode})"
        )


# ----------------------------------------------------------------------
# Incremental (prefix-set determined) cost deltas
# ----------------------------------------------------------------------


def _frontier_pseudo(query, stats, joined, eps):
    """Pseudo bitvector nodes for every checked-but-unjoined relation.

    Under full bitvector push-down a relation's bitvector has been
    applied as soon as its parent is joined; with the driver fixed the
    set of applied bitvectors depends only on the *set* of joined
    relations, which is why the principle of optimality holds
    (Theorem 3.3).
    """
    pseudo = {}
    pseudo_children = {}
    for relation in query.non_root_relations:
        if relation in joined:
            continue
        parent = query.parent(relation)
        if parent == query.root or parent in joined:
            name = f"~bv:{relation}"
            pseudo[name] = (parent, min(stats.m(relation) + eps, 1.0))
            pseudo_children.setdefault(parent, []).append(name)
    return pseudo, pseudo_children


def _frontier_pseudo_memo(query, stats, joined, eps, memo):
    """Memoized :func:`_frontier_pseudo` (the frontier is set-determined)."""
    if memo is None:
        return _frontier_pseudo(query, stats, joined, eps)
    key = memo.mask_of(joined)
    hit = memo.frontier.get(key)
    if hit is None:
        hit = memo.frontier[key] = _frontier_pseudo(query, stats, joined, eps)
    return hit


def _delta_cost(query, stats, joined, relation, mode, eps, weights,
                memo=None):
    """Additional expected cost of joining ``relation`` after ``joined``.

    This is the quantity Algorithm 1 accumulates; for every supported
    mode it depends only on the joined *set*, not its order (the
    principle of optimality, Sections 3.4 and 3.5).  ``memo`` is an
    optional :class:`~repro.core.costmodel.CostMemo` shared across the
    DP so overlapping subsets are costed once.
    """
    parent = query.parent(relation)
    c = stats.probe_cost(relation)
    if mode is ExecutionMode.STD:
        tuples = stats.driver_size
        for rel in joined:
            if rel != query.root:
                tuples *= stats.selectivity(rel)
        return tuples * c * weights.hash_probe
    if mode is ExecutionMode.COM:
        probes = _eq1_probes(query, stats, joined, parent, memo=memo)
        return probes * c * weights.hash_probe
    if mode in (ExecutionMode.BVP_STD, ExecutionMode.BVP_COM):
        pseudo, pseudo_children = _frontier_pseudo_memo(
            query, stats, joined, eps, memo
        )
        if mode is ExecutionMode.BVP_COM:
            hash_probes = _eq1_probes(
                query, stats, joined, parent, pseudo, pseudo_children, memo
            )
        else:
            hash_probes = stats.driver_size
            for rel in joined:
                if rel != query.root:
                    hash_probes *= stats.selectivity(rel)
            for name, (_, m_eff) in pseudo.items():
                hash_probes *= m_eff
        # Bitvector checks triggered by this join: the children of
        # ``relation`` become checkable.  Each check touches the alive
        # entries of ``relation`` (COM) or the expanded stream (STD).
        joined_after = joined | {relation}
        pseudo_after, pseudo_children_after = _frontier_pseudo_memo(
            query, stats, joined_after, eps, memo
        )
        bv_probes = 0.0
        new_checks = sorted(
            (child for child in query.children(relation)),
            key=lambda child: stats.m(child),
        )
        if new_checks:
            if mode is ExecutionMode.BVP_COM:
                # Alive entries of ``relation`` just after its join,
                # before its children's bitvectors are applied.
                base_pseudo = {
                    name: val
                    for name, val in pseudo_after.items()
                    if val[0] != relation
                }
                base_children = {
                    node: [n for n in names if n in base_pseudo]
                    for node, names in pseudo_children_after.items()
                }
                alive = _eq1_probes(
                    query, stats, joined_after, relation, base_pseudo,
                    base_children, memo
                )
            else:
                alive = stats.driver_size
                for rel in joined_after:
                    if rel != query.root:
                        alive *= stats.selectivity(rel)
                for name, (p, m_eff) in pseudo_after.items():
                    if p != relation:
                        alive *= m_eff
            for child in new_checks:
                bv_probes += alive
                alive *= min(stats.m(child) + eps, 1.0)
        return (
            hash_probes * c * weights.hash_probe
            + bv_probes * weights.bitvector_probe
        )
    raise ValueError(f"unsupported mode for incremental costing: {mode}")


# ----------------------------------------------------------------------
# Algorithm 1: exhaustive dynamic program over connected prefixes
# ----------------------------------------------------------------------


def exhaustive_optimal(query, stats, mode=ExecutionMode.COM, eps=0.01,
                       weights=CostWeights(), memoize=True):
    """Algorithm 1: optimal join order for a fixed driver.

    Dynamic programming over connected subsets of the join tree that
    contain the root; ``best[S]`` is the cheapest cost of any valid
    order whose prefix is exactly ``S``.  The cost function obeys the
    principle of optimality (every prefix of an optimal order is
    optimal for its set), so expanding frontiers suffices.

    With ``memoize`` (the default) the survival-probability and
    Eq. (1) evaluations underlying every delta cost are tabulated over
    relation subsets in a :class:`~repro.core.costmodel.CostMemo`, so
    overlapping prefixes share work instead of re-costing from scratch;
    ``memoize=False`` recomputes everything (the original behaviour)
    and returns bit-identical orders and costs.
    """
    mode = ExecutionMode(mode)
    if mode.uses_semijoin:
        return optimize_sj(query, stats, factorized=mode.factorized,
                           weights=weights)
    memo = CostMemo(query) if memoize else None
    root_set = frozenset([query.root])
    best = {root_set: (0.0, [])}
    frontier_sets = [root_set]
    all_relations = frozenset(query.relations)
    while frontier_sets:
        next_level = {}
        for prefix_set in frontier_sets:
            prefix_cost, prefix_order = best[prefix_set]
            joined = set(prefix_set)
            for relation in query.eligible_next(prefix_order):
                delta = _delta_cost(
                    query, stats, joined, relation, mode, eps, weights, memo
                )
                new_set = prefix_set | {relation}
                new_cost = prefix_cost + delta
                incumbent = next_level.get(new_set)
                if incumbent is None or new_cost < incumbent[0]:
                    next_level[new_set] = (new_cost, prefix_order + [relation])
        best.update(next_level)
        frontier_sets = list(next_level)
    total_cost, order = best[all_relations]
    return OptimizedPlan(query=query, order=order, cost=total_cost, mode=mode)


# ----------------------------------------------------------------------
# Greedy heuristics (Section 3.4)
# ----------------------------------------------------------------------


def _rank_key(query, stats, joined, relation):
    """Classical rank ordering: ascending ``(s - 1) / c``."""
    return (stats.selectivity(relation) - 1.0) / stats.probe_cost(relation)


def _result_size_key(query, stats, joined, relation):
    """Minimize the intermediate result appended by the next join.

    Under the factorized model the result of joining ``relation`` adds
    ``probes * s`` entries (Eq. (1) probes, each fanning out ``s``).
    """
    parent = query.parent(relation)
    probes = _eq1_probes(query, stats, joined, parent)
    return probes * stats.selectivity(relation)


def _survival_key(query, stats, joined, relation):
    """Minimize the total survival probability of the extended prefix."""
    members = joined | {relation}
    return _survival(query, stats, query.root, members, {}, {})


GREEDY_HEURISTICS = {
    "rank": _rank_key,
    "result_size": _result_size_key,
    "survival": _survival_key,
}


def greedy_order(query, stats, heuristic="survival", mode=ExecutionMode.COM,
                 eps=0.01, weights=CostWeights(), flat_output=False):
    """Greedy join ordering with one of the paper's three heuristics.

    ``heuristic`` is one of ``"rank"``, ``"result_size"``,
    ``"survival"``.  The returned plan's ``cost`` is evaluated under
    ``mode``'s full cost model (the paper evaluates all heuristics under
    the COM cost model — Section 5.1).
    """
    try:
        key_fn = GREEDY_HEURISTICS[heuristic]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {heuristic!r}; "
            f"choose from {sorted(GREEDY_HEURISTICS)}"
        ) from None
    order = []
    joined = {query.root}
    while len(order) < len(query.non_root_relations):
        candidates = query.eligible_next(order)
        scored = [
            (key_fn(query, stats, joined, relation), relation)
            for relation in candidates
        ]
        scored.sort(key=lambda pair: (pair[0], pair[1]))
        chosen = scored[0][1]
        order.append(chosen)
        joined.add(chosen)
    cost = plan_cost(query, stats, order, mode, eps=eps,
                     flat_output=flat_output).total(weights)
    return OptimizedPlan(query=query, order=order, cost=cost, mode=mode)


# ----------------------------------------------------------------------
# Semi-join variants: polynomial-time optimal (Section 3.6)
# ----------------------------------------------------------------------


def optimize_sj(query, stats, factorized, weights=CostWeights(),
                flat_output=False):
    """Optimal plan for SJ+STD / SJ+COM with the driver fixed.

    Decisions (Section 3.6): semi-join children in increasing adjusted
    ``m'``; the phase-2 order is increasing adjusted fanout ``fo'``
    (rank ordering, STD) or increasing root-to-relation fanout product
    (COM, where the cost is order-independent by Theorem 3.5 and the
    sort keeps intermediate factorized results small).
    """
    ratios, m_primes = reduction_ratios(query, stats)
    child_orders = {
        node: sorted(query.children(node), key=m_primes.__getitem__)
        for node in query.internal_relations()
    }
    fanouts = sj_phase2_fanouts(query, stats, ratios)
    if factorized:
        path_product = {query.root: 1.0}
        for relation in query.preorder():
            if relation != query.root:
                parent = query.parent(relation)
                path_product[relation] = path_product[parent] * fanouts[relation]
        sort_key = path_product.__getitem__
    else:
        sort_key = fanouts.__getitem__
    order = []
    while len(order) < len(query.non_root_relations):
        candidates = query.eligible_next(order)
        order.append(min(candidates, key=lambda rel: (sort_key(rel), rel)))
    mode = ExecutionMode.SJ_COM if factorized else ExecutionMode.SJ_STD
    cost = plan_cost(query, stats, order, mode,
                     flat_output=flat_output).total(weights)
    return OptimizedPlan(query=query, order=order, cost=cost, mode=mode,
                         child_orders=child_orders)


# ----------------------------------------------------------------------
# Driver choice
# ----------------------------------------------------------------------


def best_driver(query, stats_for_root, mode=ExecutionMode.COM, eps=0.01,
                weights=CostWeights(), optimizer=exhaustive_optimal):
    """Optimize once per candidate driver and keep the best plan.

    ``stats_for_root`` is a callable mapping a rooted
    :class:`~repro.core.query.JoinQuery` to its :class:`QueryStats`
    (the stats are direction-dependent, so they must be derived per
    rooting — e.g. with :func:`repro.core.stats.stats_from_data`).
    """
    best_plan = None
    for relation in query.relations:
        rooted = query.rerooted(relation)
        stats = stats_for_root(rooted)
        if optimizer is exhaustive_optimal:
            plan = optimizer(rooted, stats, mode=mode, eps=eps, weights=weights)
        else:
            plan = optimizer(rooted, stats)
        if best_plan is None or plan.cost < best_plan.cost:
            best_plan = plan
    return best_plan
