"""Cost model for semi-join full reduction (Section 3.6).

The paper's practical Yannakakis variant has two phases:

* **Phase 1** reduces relations bottom-up: every internal node checks
  each of its tuples against each (already reduced) child and discards
  tuples without a match.  At the end the root is fully reduced, leaves
  are untouched, and other relations are partially reduced.
* **Phase 2** runs a normal left-deep plan from the reduced root.  All
  match probabilities are 1; fanouts are adjusted by each child's
  reduction ratio via Theorem 3.4.

Theorem 3.4 (adjusted stats when the child is reduced by ``ratio``):

.. math::

    m' = m (1 - (1 - ratio)^{fo}), \\qquad
    fo' = fo \\cdot ratio / (1 - (1 - ratio)^{fo})

Theorem 3.5: under COM the phase-2 cost is independent of the join
order (verified by property tests).
"""

from __future__ import annotations

from .costmodel import PlanCost, expected_output_size

__all__ = [
    "adjusted_match_probability",
    "adjusted_fanout",
    "reduction_ratios",
    "sj_phase1_cost",
    "sj_phase2_fanouts",
    "sj_plan_cost",
]


def _hit_probability(ratio, fo):
    """P(at least one of ``fo`` matches survives a reduction by ``ratio``)."""
    return 1.0 - (1.0 - ratio) ** fo


def adjusted_match_probability(m, fo, ratio):
    """Theorem 3.4: ``m'`` when the child is reduced by ``ratio``."""
    return m * _hit_probability(ratio, fo)


def adjusted_fanout(fo, ratio):
    """Theorem 3.4: ``fo'`` when the child is reduced by ``ratio``."""
    if ratio <= 0.0:
        return 0.0
    hit = _hit_probability(ratio, fo)
    if hit <= 0.0:
        # Underflow regime: (1 - ratio)**fo rounded to 1.0 although
        # ratio > 0.  The mathematical limit of fo * ratio / hit as
        # ratio -> 0+ is 1 (a surviving parent keeps one match).
        return 1.0
    # In exact arithmetic fo' always lies in [1, fo]; clamp away float
    # noise near the underflow boundary.
    return min(max(fo * ratio / hit, 1.0), max(fo, 1.0))


def reduction_ratios(query, stats):
    """Phase-1 reduction ratio of every relation, plus adjusted ``m'``.

    Returns ``(ratios, m_primes)`` where ``ratios[rel]`` is the expected
    fraction of ``rel``'s tuples surviving semi-joins with its children
    subtree, and ``m_primes[child]`` is the adjusted match probability
    ``m'_{parent(child) -> child}`` against the reduced child.
    Leaves have ratio 1 (they are never reduced).
    """
    ratios = {}
    m_primes = {}
    for node in query.postorder():
        ratio = 1.0
        for child in query.children(node):
            edge = stats.stats(child)
            m_prime = adjusted_match_probability(edge.m, edge.fo, ratios[child])
            m_primes[child] = m_prime
            ratio *= m_prime
        ratios[node] = ratio
    return ratios, m_primes


def sj_phase1_cost(query, stats, child_orders=None):
    """Semi-join probe counts of the bottom-up reduction pass.

    For each internal node ``p`` its children are probed in sequence;
    after probing child ``c`` only an ``m'_{p->c}`` fraction of ``p``'s
    tuples remain to probe the next child.  ``child_orders`` optionally
    maps an internal relation to the order of its children; the default
    (optimal, Section 3.6) is increasing ``m'``.
    Returns ``(PlanCost, ratios)``.
    """
    ratios, m_primes = reduction_ratios(query, stats)
    child_orders = child_orders or {}
    cost = PlanCost()
    for node in query.postorder():
        children = query.children(node)
        if not children:
            continue
        order = child_orders.get(node)
        if order is None:
            order = sorted(children, key=m_primes.__getitem__)
        elif sorted(order) != sorted(children):
            raise ValueError(
                f"child order {order} does not cover children of {node!r}"
            )
        remaining = stats.relation_size(node)
        for child in order:
            cost.semijoin_probes += remaining
            remaining *= m_primes[child]
    return cost, ratios


def sj_phase2_fanouts(query, stats, ratios=None):
    """Adjusted per-edge fanouts for phase 2 (all match probabilities 1)."""
    if ratios is None:
        ratios, _ = reduction_ratios(query, stats)
    fanouts = {}
    for relation in query.non_root_relations:
        edge = stats.stats(relation)
        fanouts[relation] = adjusted_fanout(edge.fo, ratios[relation])
    return fanouts


def sj_plan_cost(query, stats, order, factorized, flat_output=True, child_orders=None):
    """PlanCost for SJ+STD or SJ+COM executing phase 2 in ``order``.

    Phase-1 semi-join probes are charged at the semi-join weight.  In
    phase 2 the driver is fully reduced (size ``N * ratio_root``) and
    every probe matches; STD pays one probe per intermediate tuple with
    the adjusted fanouts, while COM pays one probe per surviving parent
    entry — which makes its phase-2 cost order-independent
    (Theorem 3.5).
    """
    query.validate_order(order)
    cost, ratios = sj_phase1_cost(query, stats, child_orders=child_orders)
    fanouts = sj_phase2_fanouts(query, stats, ratios)
    reduced_driver = stats.driver_size * ratios[query.root]

    if factorized:
        # Eq. (1) with every m = 1: probes into a relation are the
        # product of adjusted fanouts along the root-to-parent path.
        path_fanout = {query.root: 1.0}
        for relation in query.preorder():
            if relation == query.root:
                continue
            parent = query.parent(relation)
            path_fanout[relation] = path_fanout[parent] * fanouts[relation]
        for relation in order:
            parent = query.parent(relation)
            probes = reduced_driver * path_fanout[parent]
            cost.hash_probes += probes
            cost.hash_probes_by_relation[relation] = probes
            cost.tuples_generated += probes * fanouts[relation]
        if flat_output:
            cost.tuples_generated += expected_output_size(query, stats)
    else:
        tuples = reduced_driver
        for relation in order:
            cost.hash_probes += tuples
            cost.hash_probes_by_relation[relation] = tuples
            tuples *= fanouts[relation]
            cost.tuples_generated += tuples
    return cost
