"""Guaranteed cardinality upper bounds for pessimistic planning.

The cost model's estimates (:mod:`repro.core.stats`) are *averages* —
a single correlated or skewed join can make the true cardinality blow
past them by orders of magnitude, and the optimizer happily builds a
plan around the error.  This module derives the UES-style answer
(PostBOUND / Hertzschuch et al.): a **guaranteed** per-prefix tuple
bound from per-attribute *max-frequency* statistics.

The bound
---------

For a rooted join tree, let ``mf(R)`` be the largest number of rows of
relation ``R`` sharing one value of its join attribute
(:attr:`repro.storage.HashIndex.max_group_size`).  Each tuple of the
running prefix frame probes ``R`` with a single key, so it can match at
most ``mf(R)`` rows — no matter how skewed or correlated the data is::

    |frame after joining R|  <=  |frame before|  *  mf(R)

Chaining from the driver gives, for a join order ``o_1 .. o_k``::

    bound(prefix k)  =  N_driver * mf(o_1) * ... * mf(o_k)

This holds for *every* execution mode: STD materializes exactly the
frame; COM's factorized nodes, bitvector pruning and semi-join
reduction only ever shrink it.

The pessimistic objective
-------------------------

Crucially the bound is *set-determined* — it depends only on which
relations joined, not their order — and since ``mf >= 1`` for any
non-empty relation the per-prefix bounds are nondecreasing, so the
**maximum** prefix bound equals the order-independent full product and
cannot discriminate join orders.  What does discriminate is the
worst-case *work*: the sum over join steps of the probes each step may
have to issue, i.e. the STD probe objective evaluated under "bound
statistics" (``m = 1``, ``fo = mf``).  Those deltas are exactly the
set-determined increments the exhaustive / IDP / beam dynamic programs
of :mod:`repro.core.optimizer` minimize, so handing them
:func:`bound_stats_for_rooting` output with ``ExecutionMode.STD`` makes
the existing machinery find the **bound-optimal** (minimal worst-case
cost) join order with no new search code.

Derivation is O(edges) — one cached ``max_group_size`` read per
endpoint — and cached through :class:`repro.core.stats.StatsCache`
under the rooting-independent :func:`undirected_signature`, exactly
like :func:`directed_stats_from_data`, so every candidate rooting of a
``driver="auto"`` search shares one derivation.
"""

from __future__ import annotations

from .stats import EdgeStats, QueryStats, undirected_signature

__all__ = [
    "ROBUSTNESS_CHOICES",
    "bound_signature",
    "bound_stats_for_rooting",
    "max_frequencies_from_data",
    "prefix_cardinality_bounds",
    "resolve_robustness",
]

#: Valid values of the ``robustness`` Planner / QuerySession knob:
#: ``"off"`` trusts estimates unconditionally (the historical
#: behavior), ``"bounded"`` adds pessimistic bound annotations and the
#: bounded-regret order gate, ``"auto"`` additionally arms the
#: runtime cardinality-feedback replanning loop.
ROBUSTNESS_CHOICES = ("off", "bounded", "auto")


def resolve_robustness(robustness):
    """Validate a ``robustness`` knob value (returns it unchanged)."""
    if robustness not in ROBUSTNESS_CHOICES:
        raise ValueError(
            f"robustness must be one of {ROBUSTNESS_CHOICES}, "
            f"got {robustness!r}"
        )
    return robustness


def max_frequencies_from_data(catalog, query):
    """Measure ``(max_freqs, sizes)`` for every edge endpoint at once.

    ``max_freqs`` maps ``(relation, attribute) -> max_group_size`` for
    both endpoints of every join edge, ``sizes`` maps relation name to
    cardinality.  Both are direction-free, so one measurement covers
    every rooting of the join graph (cache under
    :func:`repro.core.stats.undirected_signature`).  Indexes are built
    through :meth:`Catalog.hash_index` and therefore shared with
    statistics derivation and execution.
    """
    max_freqs = {}
    for edge in query.edges:
        for relation, attribute in (
            (edge.parent, edge.parent_attr),
            (edge.child, edge.child_attr),
        ):
            if (relation, attribute) not in max_freqs:
                index = catalog.hash_index(relation, attribute)
                max_freqs[(relation, attribute)] = int(index.max_group_size)
    sizes = {rel: len(catalog.table(rel)) for rel in query.relations}
    return max_freqs, sizes


def bound_signature(query):
    """Cache signature for one join graph's max-frequency statistics."""
    return ("max-frequency",) + undirected_signature(query)


def bound_stats_for_rooting(rooted, max_freqs, sizes):
    """Assemble a rooting's *bound statistics* (pure dictionary work).

    A :class:`~repro.core.stats.QueryStats` whose per-edge selectivity
    is the guaranteed worst case: ``m = 1`` (every probe may match),
    ``fo = mf`` (each match may fan out to the heaviest key group).
    Prefix products of these stats under the STD cost model are the
    guaranteed cardinality upper bounds described in the module
    docstring.
    """
    edge_stats = {}
    for edge in rooted.edges:
        mf = max_freqs[(edge.child, edge.child_attr)]
        edge_stats[edge.child] = EdgeStats(m=1.0 if mf else 0.0,
                                           fo=float(mf))
    return QueryStats(
        float(sizes[rooted.root]), edge_stats, relation_sizes=dict(sizes)
    )


def prefix_cardinality_bounds(bound_stats, order):
    """Guaranteed tuple-count upper bound after each join of ``order``.

    ``bounds[k]`` bounds the intermediate-result cardinality once the
    first ``k + 1`` joins have run, for every execution mode (COM
    frames and semi-join-reduced pipelines are never larger than the
    STD frame the bound tracks).
    """
    bounds = []
    size = bound_stats.driver_size
    for relation in order:
        size *= bound_stats.selectivity(relation)
        bounds.append(size)
    return tuple(bounds)
