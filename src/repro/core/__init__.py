"""Core contribution: cost model, optimizers, robustness analysis."""

from .costmodel import (
    CostWeights,
    PlanCost,
    bvp_plan_cost,
    com_plan_cost,
    com_probes_per_join,
    expected_output_size,
    plan_cost,
    std_plan_cost,
    std_probes_per_join,
    survival_probability,
)
from .costmodel_sj import (
    adjusted_fanout,
    adjusted_match_probability,
    reduction_ratios,
    sj_phase1_cost,
    sj_phase2_fanouts,
    sj_plan_cost,
)
from .cyclic import (
    CyclicPlan,
    ResidualPredicate,
    execute_cyclic,
    spanning_tree_decomposition,
)
from .optimizer import (
    GREEDY_HEURISTICS,
    OptimizedPlan,
    best_driver,
    exhaustive_optimal,
    greedy_order,
    optimize_sj,
)
from .parser import ParsedQuery, ParseError, Placeholder, parse_query
from .query import JoinEdge, JoinQuery
from .robustness import (
    best_star_order,
    estimation_error_experiment,
    star_query,
    theta_fragility,
    theta_robustness,
)
from .lru import CacheStats, LRUCache
from .stats import (
    EdgeStats,
    QueryStats,
    StatsCache,
    query_signature,
    stats_from_data,
)

__all__ = [
    "CacheStats",
    "CostWeights",
    "CyclicPlan",
    "EdgeStats",
    "LRUCache",
    "StatsCache",
    "GREEDY_HEURISTICS",
    "JoinEdge",
    "JoinQuery",
    "OptimizedPlan",
    "ParseError",
    "ParsedQuery",
    "PlanCost",
    "Placeholder",
    "QueryStats",
    "ResidualPredicate",
    "adjusted_fanout",
    "adjusted_match_probability",
    "best_driver",
    "best_star_order",
    "bvp_plan_cost",
    "com_plan_cost",
    "com_probes_per_join",
    "estimation_error_experiment",
    "execute_cyclic",
    "exhaustive_optimal",
    "expected_output_size",
    "greedy_order",
    "optimize_sj",
    "parse_query",
    "plan_cost",
    "query_signature",
    "spanning_tree_decomposition",
    "reduction_ratios",
    "sj_phase1_cost",
    "sj_phase2_fanouts",
    "sj_plan_cost",
    "star_query",
    "stats_from_data",
    "std_plan_cost",
    "std_probes_per_join",
    "survival_probability",
    "theta_fragility",
    "theta_robustness",
]
