"""Acyclic join queries as rooted join trees.

The paper restricts attention to acyclic queries executed as left-deep
pipelined plans: a *driver* relation is chosen as the root of the join
tree, and the remaining relations are joined in some order that respects
the *precedence constraint* (a relation may only be joined after its
parent, so that no cartesian products arise — Section 2.1).

:class:`JoinQuery` captures the rooted tree; a *join order* is a
permutation of the non-root relations satisfying precedence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["JoinEdge", "JoinQuery"]


@dataclass(frozen=True)
class JoinEdge:
    """One parent-child join: ``parent.parent_attr = child.child_attr``."""

    parent: str
    child: str
    parent_attr: str
    child_attr: str

    def __repr__(self):
        return (
            f"JoinEdge({self.parent}.{self.parent_attr} = "
            f"{self.child}.{self.child_attr})"
        )


class JoinQuery:
    """A rooted join tree over named relations.

    Parameters
    ----------
    root:
        Name of the driver relation.
    edges:
        Iterable of :class:`JoinEdge`; each child must appear exactly
        once and the edges must form a tree rooted at ``root``.
    """

    def __init__(self, root, edges):
        self.root = root
        self.edges = list(edges)
        self._edge_by_child = {}
        self._children = {root: []}
        for edge in self.edges:
            if edge.child in self._edge_by_child:
                raise ValueError(f"relation {edge.child!r} has two parents")
            if edge.child == root:
                raise ValueError(f"root {root!r} cannot be a child")
            self._edge_by_child[edge.child] = edge
            self._children.setdefault(edge.parent, []).append(edge.child)
            self._children.setdefault(edge.child, [])
        self._validate_tree()

    def _validate_tree(self):
        reachable = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node in reachable:
                raise ValueError(f"cycle detected at relation {node!r}")
            reachable.add(node)
            stack.extend(self._children.get(node, []))
        declared = {self.root} | set(self._edge_by_child)
        if reachable != declared:
            unreachable = declared - reachable
            raise ValueError(
                f"relations not reachable from root {self.root!r}: "
                f"{sorted(unreachable)}"
            )

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def relations(self):
        """All relation names, root first, then in edge order."""
        return [self.root] + [edge.child for edge in self.edges]

    @property
    def non_root_relations(self):
        return [edge.child for edge in self.edges]

    @property
    def num_relations(self):
        return 1 + len(self.edges)

    def edge_to(self, child):
        """The edge joining ``child`` to its parent."""
        try:
            return self._edge_by_child[child]
        except KeyError:
            raise KeyError(f"{child!r} is not a non-root relation") from None

    def parent(self, relation):
        """Parent relation name (``None`` for the root)."""
        if relation == self.root:
            return None
        return self.edge_to(relation).parent

    def children(self, relation):
        """Child relation names, in declaration order."""
        try:
            return list(self._children[relation])
        except KeyError:
            raise KeyError(f"unknown relation {relation!r}") from None

    def is_leaf(self, relation):
        return not self._children.get(relation)

    def path_to_root(self, relation):
        """Relations from ``relation`` up to (and including) the root."""
        path = [relation]
        while path[-1] != self.root:
            path.append(self.parent(path[-1]))
        return path

    def depth(self, relation):
        """Edge distance from the root (root has depth 0)."""
        return len(self.path_to_root(relation)) - 1

    def subtree(self, relation):
        """All relations in the subtree rooted at ``relation``."""
        nodes = []
        stack = [relation]
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(self._children[node])
        return nodes

    def preorder(self):
        """Relations in a deterministic pre-order traversal."""
        return self.subtree(self.root)

    def postorder(self):
        """Relations with every child before its parent."""
        order = []
        stack = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
            else:
                stack.append((node, True))
                for child in reversed(self._children[node]):
                    stack.append((child, False))
        return order

    def internal_relations(self):
        """Relations with at least one child (including the root if so)."""
        return [rel for rel in self.preorder() if self._children[rel]]

    # ------------------------------------------------------------------
    # Join orders
    # ------------------------------------------------------------------

    def is_valid_order(self, order):
        """Check that ``order`` is a precedence-respecting permutation."""
        if sorted(order) != sorted(self.non_root_relations):
            return False
        seen = {self.root}
        for relation in order:
            if self.parent(relation) not in seen:
                return False
            seen.add(relation)
        return True

    def validate_order(self, order):
        """Raise ``ValueError`` if ``order`` is not a valid join order."""
        if not self.is_valid_order(order):
            raise ValueError(
                f"invalid join order {list(order)} for query rooted at "
                f"{self.root!r} (must be a permutation of "
                f"{self.non_root_relations} with each parent first)"
            )

    def eligible_next(self, prefix):
        """Relations joinable after ``prefix`` (precedence frontier)."""
        joined = {self.root} | set(prefix)
        return [
            rel
            for rel in self.non_root_relations
            if rel not in joined and self.parent(rel) in joined
        ]

    def random_order(self, rng=None):
        """A uniformly-random precedence-respecting join order."""
        rng = np.random.default_rng(rng)
        order = []
        while len(order) < len(self.non_root_relations):
            frontier = self.eligible_next(order)
            order.append(frontier[int(rng.integers(len(frontier)))])
        return order

    def all_orders(self):
        """Generate every valid join order (exponential; small trees only)."""

        def extend(prefix):
            if len(prefix) == len(self.non_root_relations):
                yield list(prefix)
                return
            for relation in self.eligible_next(prefix):
                prefix.append(relation)
                yield from extend(prefix)
                prefix.pop()

        yield from extend([])

    # ------------------------------------------------------------------
    # Re-rooting (trying different driver relations)
    # ------------------------------------------------------------------

    def undirected_edges(self):
        """Edges as (rel_a, attr_a, rel_b, attr_b) tuples, direction-free."""
        return [
            (edge.parent, edge.parent_attr, edge.child, edge.child_attr)
            for edge in self.edges
        ]

    def rerooted(self, new_root):
        """The same join graph rooted at a different driver relation."""
        if new_root == self.root:
            return self
        adjacency = {}
        for rel_a, attr_a, rel_b, attr_b in self.undirected_edges():
            adjacency.setdefault(rel_a, []).append((rel_b, attr_a, attr_b))
            adjacency.setdefault(rel_b, []).append((rel_a, attr_b, attr_a))
        if new_root not in adjacency and self.num_relations > 1:
            raise KeyError(f"unknown relation {new_root!r}")
        edges = []
        visited = {new_root}
        stack = [new_root]
        while stack:
            parent = stack.pop()
            for child, parent_attr, child_attr in adjacency.get(parent, []):
                if child in visited:
                    continue
                visited.add(child)
                edges.append(JoinEdge(parent, child, parent_attr, child_attr))
                stack.append(child)
        return JoinQuery(new_root, edges)

    def __repr__(self):
        return (
            f"JoinQuery(root={self.root!r}, "
            f"relations={self.num_relations}, edges={len(self.edges)})"
        )
