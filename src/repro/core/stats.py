"""Join statistics: match probabilities and fanouts.

Section 3.1 of the paper splits the classical join selectivity ``s``
into a *match probability* ``m`` (chance that an input tuple finds at
least one match) and a *fanout* ``fo`` (average number of matches for a
tuple that does match), with ``s = m * fo``.  :class:`EdgeStats` holds
that pair for one parent->child join; :class:`QueryStats` maps every
non-root relation of a :class:`~repro.core.query.JoinQuery` to its
stats, plus the driver cardinality and per-operator probe costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lru import LRUCache

__all__ = [
    "EdgeStats",
    "QueryStats",
    "StatsCache",
    "directed_stats_from_data",
    "edge_with_selectivity",
    "query_signature",
    "stats_for_rooting",
    "stats_from_data",
    "undirected_signature",
]


@dataclass(frozen=True)
class EdgeStats:
    """Match probability and fanout for probing a parent into a child."""

    m: float
    fo: float

    def __post_init__(self):
        if not 0.0 <= self.m <= 1.0:
            raise ValueError(f"match probability must be in [0, 1], got {self.m}")
        if self.fo < 0.0:
            raise ValueError(f"fanout must be non-negative, got {self.fo}")

    @property
    def selectivity(self):
        """Classical join selectivity ``s = m * fo`` (Section 3.1)."""
        return self.m * self.fo

    def scaled(self, factor):
        """Stats with the match probability scaled (clamped to [0, 1])."""
        return EdgeStats(m=min(max(self.m * factor, 0.0), 1.0), fo=self.fo)


class QueryStats:
    """Statistics for every join operator of a query.

    Parameters
    ----------
    driver_size:
        Cardinality of the driver relation after selections (``N``).
    edge_stats:
        Mapping from non-root relation name to :class:`EdgeStats` for
        the probe *from its parent into it*.
    probe_costs:
        Optional mapping from relation name to the cost of a single
        probe into that relation's join operator (``c_i``; default 1.0).
    relation_sizes:
        Optional mapping from relation name to cardinality; needed by
        the semi-join cost model (phase-1 probes scan whole relations).
        Missing sizes default to ``driver_size`` (the paper's Figure 13
        simulation uses equal-size relations).
    """

    def __init__(self, driver_size, edge_stats, probe_costs=None, relation_sizes=None):
        if driver_size < 0:
            raise ValueError(f"driver_size must be non-negative, got {driver_size}")
        self.driver_size = float(driver_size)
        self.edge_stats = dict(edge_stats)
        self.probe_costs = dict(probe_costs or {})
        self.relation_sizes = dict(relation_sizes or {})

    def stats(self, relation):
        """EdgeStats for probing from the parent into ``relation``."""
        try:
            return self.edge_stats[relation]
        except KeyError:
            raise KeyError(
                f"no statistics for relation {relation!r}; "
                f"known: {sorted(self.edge_stats)}"
            ) from None

    def m(self, relation):
        return self.stats(relation).m

    def fo(self, relation):
        return self.stats(relation).fo

    def selectivity(self, relation):
        return self.stats(relation).selectivity

    def probe_cost(self, relation):
        return self.probe_costs.get(relation, 1.0)

    def relation_size(self, relation):
        """Cardinality of ``relation`` (defaults to the driver size)."""
        return float(self.relation_sizes.get(relation, self.driver_size))

    def with_edge(self, relation, stats):
        """A copy with one relation's stats replaced."""
        new_stats = dict(self.edge_stats)
        new_stats[relation] = stats
        return QueryStats(
            self.driver_size, new_stats, self.probe_costs, self.relation_sizes
        )

    def perturbed(self, error_fraction, rng=None):
        """Simulate estimation error (Section 3.7 / Figure 6).

        Each ``m`` and ``fo`` is multiplied independently by a factor
        drawn uniformly from ``[1 - e, 1 + e]``; ``m`` is clamped to
        ``(0, 1]`` and ``fo`` to ``>= 1`` minimum of its perturbed value.
        """
        rng = np.random.default_rng(rng)
        new_stats = {}
        for relation, stats in self.edge_stats.items():
            m_factor = 1.0 + rng.uniform(-error_fraction, error_fraction)
            fo_factor = 1.0 + rng.uniform(-error_fraction, error_fraction)
            m = min(max(stats.m * m_factor, 1e-9), 1.0)
            fo = max(stats.fo * fo_factor, 1.0)
            new_stats[relation] = EdgeStats(m=m, fo=fo)
        return QueryStats(
            self.driver_size, new_stats, self.probe_costs, self.relation_sizes
        )

    def __repr__(self):
        return (
            f"QueryStats(N={self.driver_size:g}, "
            f"edges={{{', '.join(sorted(self.edge_stats))}}})"
        )


def edge_with_selectivity(edge, observed):
    """``EdgeStats`` corrected to an observed selectivity ``s``.

    The runtime-feedback loop measures only the *combined* selectivity
    (matches per probe); this keeps the estimated fanout when the
    observation is compatible with it (``m = s / fo`` stays a valid
    probability) and otherwise attributes everything to fanout
    (``m = 1, fo = s``) — either way ``m * fo`` equals the observation,
    which is what the cost model consumes.
    """
    observed = max(float(observed), 0.0)
    if edge.fo > 0.0 and observed <= edge.fo:
        return EdgeStats(m=observed / edge.fo, fo=edge.fo)
    return EdgeStats(m=1.0, fo=observed)


def query_signature(query):
    """A hashable structural signature of a rooted join query.

    Two :class:`~repro.core.query.JoinQuery` instances with the same
    driver and the same directed edges produce the same signature
    (edge declaration order is canonicalized away), so caches keyed on
    it survive re-parsing / re-construction.
    """
    return (
        query.root,
        tuple(sorted(
            (edge.parent, edge.child, edge.parent_attr, edge.child_attr)
            for edge in query.edges
        )),
    )


class StatsCache:
    """Memoizes derived :class:`QueryStats` across repeated planning.

    Statistics derivation (:func:`stats_from_data`, or sampling) scans
    data and builds hash indexes — by far the dominant cost of planning
    a repeated query.  Entries are keyed on a *data token* (typically
    the catalog fingerprint plus any pushed-down selection constants —
    see :meth:`repro.planner.Planner.plan`), the rooted query signature
    and the derivation method, so any data change or different rooting
    naturally misses.
    """

    def __init__(self, capacity=256):
        self._cache = LRUCache(capacity)

    @property
    def stats(self):
        """Hit/miss/eviction counters (:class:`repro.core.lru.CacheStats`)."""
        return self._cache.stats

    def __len__(self):
        return len(self._cache)

    def get_or_derive(self, data_token, query, method, derive):
        """Return cached stats for the key, deriving via ``derive()`` on miss."""
        key = (data_token, query_signature(query), str(method))
        return self._cache.get_or_compute(key, derive)

    def get_or_derive_directed(self, data_token, query, method, derive):
        """Direction-complete stats for a join graph, any rooting.

        Keyed on the *undirected* signature, so every rooting of one
        graph (every ``driver="auto"`` candidate) shares a single
        cached ``(directed, sizes)`` pair from
        :func:`directed_stats_from_data`.
        """
        key = (data_token, undirected_signature(query),
               f"directed:{method}")
        return self._cache.get_or_compute(key, derive)

    def get_or_derive_signature(self, data_token, signature, method, derive):
        """Cache an arbitrary derivation under a precomputed signature.

        For query shapes :func:`query_signature` cannot describe — the
        planner's cyclic path keys its direction-complete predicate
        statistics on :func:`repro.core.cyclic.cyclic_signature`, so
        every candidate spanning tree (and every rooting of each)
        shares one derivation.
        """
        key = (data_token, signature, str(method))
        return self._cache.get_or_compute(key, derive)

    def clear(self):
        self._cache.clear()

    def __repr__(self):
        return f"StatsCache({self._cache!r})"


def undirected_signature(query):
    """A rooting-independent structural signature of a join query.

    Every rooting of one join graph shares this signature (each edge is
    canonicalized to its sorted endpoint rendering), so caches of
    direction-complete statistics (:func:`directed_stats_from_data`)
    are shared across the ``driver="auto"`` candidate rootings.
    """
    return tuple(sorted(
        tuple(sorted([
            (edge.parent, edge.parent_attr),
            (edge.child, edge.child_attr),
        ]))
        for edge in query.edges
    ))


def _measure_edge(catalog, parent, parent_attr, child, child_attr):
    """Ground-truth ``EdgeStats`` for probing ``parent`` into ``child``."""
    parent_keys = catalog.table(parent).column(parent_attr)
    index = catalog.hash_index(child, child_attr)
    num_parents = len(parent_keys)
    matched, total_matches = index.probe_stats(parent_keys)
    m = matched / num_parents if num_parents else 0.0
    fo = float(total_matches) / matched if matched else 1.0
    return EdgeStats(m=m, fo=fo)


def directed_stats_from_data(catalog, query):
    """Measure ``(m, fo)`` for *both directions* of every edge at once.

    Returns ``(directed, sizes)`` where ``directed`` maps
    ``(parent, child) -> EdgeStats`` for each of the ``2 * (n - 1)``
    probe directions and ``sizes`` maps relation name to cardinality.
    Rerooting a join tree only flips edge directions, so this one
    O(edges) measurement pass covers **every** candidate rooting of a
    ``driver="auto"`` search — the per-rooting :class:`QueryStats` is
    then assembled by :func:`stats_for_rooting` with pure dictionary
    work, instead of re-scanning the data once per rooting (the O(n^2)
    scans that dominated large-query driver search before).

    Each direction's numbers are bit-identical to what
    :func:`stats_from_data` measures on a query rooted that way: the
    same probe of the same keys into the same (catalog-cached) index.
    """
    directed = {}
    for edge in query.edges:
        directed[(edge.parent, edge.child)] = _measure_edge(
            catalog, edge.parent, edge.parent_attr, edge.child,
            edge.child_attr,
        )
        directed[(edge.child, edge.parent)] = _measure_edge(
            catalog, edge.child, edge.child_attr, edge.parent,
            edge.parent_attr,
        )
    sizes = {rel: len(catalog.table(rel)) for rel in query.relations}
    return directed, sizes


def stats_for_rooting(rooted, directed, sizes):
    """Assemble a rooting's :class:`QueryStats` from directed edge stats.

    ``directed`` / ``sizes`` come from :func:`directed_stats_from_data`
    (measured on any rooting of the same join graph).  Pure dictionary
    work — no data access.
    """
    edge_stats = {
        edge.child: directed[(edge.parent, edge.child)]
        for edge in rooted.edges
    }
    return QueryStats(sizes[rooted.root], edge_stats, relation_sizes=sizes)


def stats_from_data(catalog, query):
    """Measure the true ``(m, fo)`` for every edge of ``query``.

    For each edge ``p -> c``, every tuple of ``p`` is (conceptually)
    probed into ``c``: ``m`` is the fraction that find at least one
    match and ``fo`` the average match count among those that do.
    This is the ground truth that estimators (Section 3.2) approximate
    and that the cost-model validation (Figure 14) uses.

    Derivation goes through ``probe_stats``, which returns the two
    integer summaries (keys matched, total matches) without
    materializing match rows.  Over a hash-partitioned relation the
    index computes those by aggregating per-shard sketches — each
    probe key is routed to exactly one shard, so the shard-wise sums
    are *bit-identical* to the monolithic measurement and derived
    statistics never depend on the physical layout.
    """
    edge_stats = {
        edge.child: _measure_edge(
            catalog, edge.parent, edge.parent_attr, edge.child,
            edge.child_attr,
        )
        for edge in query.edges
    }
    driver_size = len(catalog.table(query.root))
    sizes = {rel: len(catalog.table(rel)) for rel in query.relations}
    return QueryStats(driver_size, edge_stats, relation_sizes=sizes)
