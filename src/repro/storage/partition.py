"""Hash-partitioned tables and sharded hash indexes.

A :class:`PartitionedTable` physically re-clusters a table into ``N``
hash-shards on a chosen key column: rows whose key hashes to shard
``s`` occupy one contiguous row range, so every shard is a cache-local
slice and per-shard work (index builds, probes, semi-join reductions)
can fan out over a thread pool.  Row identity inside the engine is the
*physical* (re-clustered) position; :meth:`PartitionedTable.original_rows`
maps results back to the base table's row ids, which is how partitioned
execution returns result sets identical to the unpartitioned engine.

A :class:`ShardedHashIndex` is the matching build side: one
:class:`~repro.storage.hashindex.HashIndex` per shard.  Because rows
are hash-partitioned on the indexed key, a probe key can only match
inside its own shard, so a batch lookup routes keys by the same hash,
probes each shard independently (in parallel for large batches) and
scatters the per-shard answers back into probe order — probe counts and
match sets are exactly those of the monolithic index.

An index requested on any *other* column falls back to a plain merged
:class:`~repro.storage.hashindex.HashIndex` over the whole table (see
:meth:`PartitionedTable.build_hash_index`), so partitioning is never a
correctness constraint, only a parallelism opportunity.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .hashindex import HashIndex, concat_ranges
from .table import Table

__all__ = [
    "FLOAT_EXACT_MAX",
    "PartitionedTable",
    "ShardSketch",
    "ShardedHashIndex",
    "ShardedLookupResult",
    "partition_replacements",
    "partitioned_catalog",
    "shard_ids",
]

#: below this many keys a batch is routed/probed serially — thread
#: hand-off costs more than the work it would spread
PARALLEL_MIN_KEYS = 16_384

#: largest magnitude for which int64 <-> float64 comparison is exact;
#: build keys at or beyond this are excluded from hash partitioning
#: (a float probe could float-compare equal to an int it doesn't route
#: to, so sharded and merged lookups would diverge)
FLOAT_EXACT_MAX = 2**53

_MAX_WORKERS = min(os.cpu_count() or 1, 16)
_pool = None
_pool_lock = threading.Lock()


def _shared_pool():
    """The process-wide shard worker pool (lazily created)."""
    global _pool
    if _pool is None:
        with _pool_lock:
            if _pool is None:
                _pool = ThreadPoolExecutor(
                    max_workers=_MAX_WORKERS,
                    thread_name_prefix="repro-shard",
                )
    return _pool


def _parallel_map(fn, items, parallel):
    """``[fn(x) for x in items]``, fanned out when worth it."""
    items = list(items)
    if not parallel or _MAX_WORKERS == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    return list(_shared_pool().map(fn, items))


def shard_ids(values, num_shards):
    """Shard id per value: a mixed 64-bit hash of the key, mod ``N``.

    The same routing function is used to lay out a
    :class:`PartitionedTable` and to direct probe keys at lookup time,
    which is what guarantees a key only ever meets its own shard.  The
    mixer is the splitmix64 finalizer, so consecutive key ranges spread
    evenly instead of landing in one shard.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(
            f"hash sharding requires an integer key column, got dtype "
            f"{values.dtype}"
        )
    mixed = values.astype(np.uint64, copy=True)
    mixed ^= mixed >> np.uint64(33)
    mixed *= np.uint64(0xFF51AFD7ED558CCD)
    mixed ^= mixed >> np.uint64(33)
    mixed *= np.uint64(0xC4CEB9FE1A85EC53)
    mixed ^= mixed >> np.uint64(33)
    return (mixed % np.uint64(num_shards)).astype(np.int64)


def _float_exact(keys):
    """True when every key sits inside float64's exact integer range.

    Uses min/max bounds (``abs`` would overflow on int64 min).
    """
    return (int(keys.min()) > -FLOAT_EXACT_MAX
            and int(keys.max()) < FLOAT_EXACT_MAX)


def _probe_shard_ids(keys, num_shards):
    """Shard routing for *probe* keys, tolerant of numeric dtype mixes.

    Build keys are always integers (enforced at partitioning time), but
    probe columns may be floats — an unpartitioned lookup handles that
    via searchsorted upcasting, so the sharded path must too.  A float
    probe can only match an integer build key if it is exactly
    integral; those route by their integer value, everything else
    (fractional, NaN/inf, out of int64 range) routes to shard 0 where
    it misses like any absent key.
    """
    keys = np.asarray(keys)
    if np.issubdtype(keys.dtype, np.integer):
        return shard_ids(keys, num_shards)
    if keys.dtype == bool:
        return shard_ids(keys.astype(np.int64), num_shards)
    if not np.issubdtype(keys.dtype, np.floating):
        raise TypeError(
            f"cannot route probe keys of dtype {keys.dtype} to hash shards"
        )
    # Build keys are guaranteed < 2**53 in magnitude (see
    # ShardedHashIndex), so any probe at or beyond that range cannot
    # match and routes to shard 0 where it misses like any absent key.
    representable = np.isfinite(keys) & (np.abs(keys) < float(FLOAT_EXACT_MAX))
    as_int = np.zeros(len(keys), dtype=np.int64)
    as_int[representable] = keys[representable].astype(np.int64)
    integral = representable & (as_int == keys)
    ids = shard_ids(as_int, num_shards)
    ids[~integral] = 0
    return ids


def _route(keys, num_shards):
    """Group a probe batch by destination shard.

    Returns ``(order, bounds)``: a stable permutation sorting the keys
    by shard id, and ``bounds`` of length ``num_shards + 1`` such that
    ``order[bounds[s]:bounds[s + 1]]`` are the probe positions routed
    to shard ``s``.  Stable integer argsort is radix-based, so routing
    is O(n).
    """
    ids = _probe_shard_ids(keys, num_shards)
    order = np.argsort(ids, kind="stable")
    bounds = np.searchsorted(ids[order], np.arange(num_shards + 1))
    return order, bounds


class ShardSketch:
    """Per-shard summary statistics.

    The shard-balance diagnostic unit: the partition benchmark records
    these to expose key skew (a hot shard bounds the parallel speedup),
    and they summarize what statistics derivation aggregates shard by
    shard via ``probe_stats``.
    """

    __slots__ = ("num_rows", "num_distinct")

    def __init__(self, num_rows, num_distinct):
        self.num_rows = num_rows
        self.num_distinct = num_distinct

    def __repr__(self):
        return (
            f"ShardSketch(rows={self.num_rows}, "
            f"distinct={self.num_distinct})"
        )


class ShardedLookupResult:
    """Probe outcome over a :class:`ShardedHashIndex`.

    Same public surface as
    :class:`~repro.storage.hashindex.LookupResult`: ``counts`` aligned
    with the probe batch, ``matched_mask``, ``total_matches`` and
    ``matching_rows`` (flattened matches grouped per probe key, in
    probe order).
    """

    __slots__ = ("_sub_results", "_positions_by_shard", "counts")

    def __init__(self, sub_results, positions_by_shard, counts):
        self._sub_results = sub_results
        self._positions_by_shard = positions_by_shard
        self.counts = counts

    def __len__(self):
        return len(self.counts)

    @property
    def matched_mask(self):
        return self.counts > 0

    def total_matches(self):
        return int(self.counts.sum())

    def matching_rows(self):
        total = int(self.counts.sum())
        out = np.empty(total, dtype=np.int64)
        ends = np.cumsum(self.counts)
        out_starts = ends - self.counts
        for sub, positions in zip(self._sub_results, self._positions_by_shard):
            if sub is None or not len(positions):
                continue
            hit = sub.counts > 0
            if not hit.any():
                continue
            slots = concat_ranges(out_starts[positions[hit]], sub.counts[hit])
            out[slots] = sub.matching_rows()
        return out


class ShardedHashIndex:
    """One :class:`HashIndex` per hash-shard of a key column.

    Parameters
    ----------
    keys:
        The full key column, in the table's (physical) row order.
    num_shards:
        Shard count; must match the routing used at probe time.
    rows:
        Optional row restriction (semi-join-reduced relations); rows
        are re-routed by key hash, so any subset works.
    bounds:
        Optional precomputed contiguous shard offsets (length
        ``num_shards + 1``) from a :class:`PartitionedTable` layout;
        mutually exclusive with ``rows`` and skips re-hashing the keys.
    """

    def __init__(self, keys, num_shards, rows=None, bounds=None):
        keys = np.asarray(keys)
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if len(keys) and not _float_exact(keys):
            # beyond float64's exact integer range a float probe can
            # float-compare equal to a key it does not route to; such
            # relations must use the merged index instead
            raise ValueError(
                "cannot hash-shard keys with magnitude >= 2**53; float "
                "probes would be ambiguous — use an unpartitioned index"
            )
        self.num_shards = num_shards
        if bounds is not None:
            if rows is not None:
                raise ValueError("pass either rows or bounds, not both")
            # contiguous layout: each shard indexes a slice view and
            # offsets its reported row ids — no gather, no row arrays
            spans = [
                (int(bounds[s]), int(bounds[s + 1]))
                for s in range(num_shards)
            ]
            parallel = max(
                (stop - start for start, stop in spans), default=0
            ) >= PARALLEL_MIN_KEYS
            self._shards = _parallel_map(
                lambda span: HashIndex(keys[span[0]:span[1]],
                                       row_offset=span[0]),
                spans, parallel,
            )
        else:
            if rows is None:
                rows = np.arange(len(keys), dtype=np.int64)
            else:
                rows = np.asarray(rows, dtype=np.int64)
            order, route_bounds = _route(keys[rows], num_shards)
            routed = rows[order]
            shard_rows = [
                routed[route_bounds[s]:route_bounds[s + 1]]
                for s in range(num_shards)
            ]
            parallel = max(
                (len(r) for r in shard_rows), default=0
            ) >= PARALLEL_MIN_KEYS
            self._shards = _parallel_map(
                lambda shard: HashIndex(keys, rows=shard), shard_rows, parallel
            )

    # -- structure ------------------------------------------------------

    def __len__(self):
        return sum(len(shard) for shard in self._shards)

    @property
    def shards(self):
        """The per-shard :class:`HashIndex` objects."""
        return list(self._shards)

    @property
    def num_distinct(self):
        # hash routing puts every occurrence of a key in one shard, so
        # shard key sets are disjoint and the counts simply add
        return sum(shard.num_distinct for shard in self._shards)

    @property
    def max_group_size(self):
        """Largest number of rows sharing one key value, over all shards.

        Hash routing puts every occurrence of a key in exactly one
        shard, so the global heaviest key group is the heaviest
        per-shard group — the shard-wise maximum is *exact*, not a
        bound, and bit-identical to the monolithic
        :attr:`HashIndex.max_group_size`.
        """
        return max(
            (shard.max_group_size for shard in self._shards), default=0
        )

    @property
    def key_dtype(self):
        """Dtype of the indexed key column (same in every shard)."""
        return self._shards[0].key_dtype

    def iter_groups(self):
        """Yield ``(key, [row ids])`` per distinct key, shard by shard.

        Shard key sets are disjoint (hash routing sends every
        occurrence of a key to one shard), so chaining the per-shard
        groups enumerates each distinct key exactly once; row ids
        within a group keep index order, exactly as
        :meth:`ShardedLookupResult.matching_rows` reports them.
        """
        for shard in self._shards:
            yield from shard.iter_groups()

    def distinct_keys(self):
        keys = [shard.distinct_keys() for shard in self._shards]
        merged = np.concatenate(keys) if keys else np.empty(0, dtype=np.int64)
        merged.sort()
        return merged

    def sketches(self):
        """One :class:`ShardSketch` per shard."""
        return [
            ShardSketch(len(shard), shard.num_distinct)
            for shard in self._shards
        ]

    # -- probing --------------------------------------------------------

    def _routed(self, keys):
        keys = np.asarray(keys)
        order, bounds = _route(keys, self.num_shards)
        per_shard = []
        for s in range(self.num_shards):
            positions = order[bounds[s]:bounds[s + 1]]
            per_shard.append((s, positions, keys[positions]))
        parallel = len(keys) >= PARALLEL_MIN_KEYS
        return keys, per_shard, parallel

    def lookup(self, keys):
        """Probe a batch of keys; one probe per entry, as in
        :meth:`HashIndex.lookup`."""
        keys, per_shard, parallel = self._routed(keys)
        counts = np.zeros(len(keys), dtype=np.int64)

        def probe(entry):
            s, positions, shard_keys = entry
            if not len(positions):
                return None
            return self._shards[s].lookup(shard_keys)

        sub_results = _parallel_map(probe, per_shard, parallel)
        positions_by_shard = []
        for sub, (s, positions, _) in zip(sub_results, per_shard):
            positions_by_shard.append(positions)
            if sub is not None:
                counts[positions] = sub.counts
        return ShardedLookupResult(sub_results, positions_by_shard, counts)

    def contains(self, keys):
        """Membership test per key (a semi-join probe)."""
        keys, per_shard, parallel = self._routed(keys)
        out = np.zeros(len(keys), dtype=bool)

        def probe(entry):
            s, positions, shard_keys = entry
            if not len(positions):
                return None
            return self._shards[s].contains(shard_keys)

        for mask, (s, positions, _) in zip(
            _parallel_map(probe, per_shard, parallel), per_shard
        ):
            if mask is not None:
                out[positions] = mask
        return out

    def probe_stats(self, keys):
        """``(matched, total_matches)`` for a probe batch.

        Aggregated shard by shard without materializing positions — the
        per-shard sketch path used by statistics derivation
        (:func:`repro.core.stats.stats_from_data`).
        """
        keys, per_shard, parallel = self._routed(keys)

        def probe(entry):
            s, positions, shard_keys = entry
            if not len(positions):
                return (0, 0)
            return self._shards[s].probe_stats(shard_keys)

        matched = 0
        total = 0
        for shard_matched, shard_total in _parallel_map(
            probe, per_shard, parallel
        ):
            matched += shard_matched
            total += shard_total
        return matched, total

    def rows_for_key(self, key):
        """All build-side row indices matching a single key."""
        return self.lookup(np.asarray([key])).matching_rows()

    def __repr__(self):
        return (
            f"ShardedHashIndex(shards={self.num_shards}, "
            f"rows={len(self)}, distinct={self.num_distinct})"
        )


class PartitionedTable(Table):
    """A table re-clustered into contiguous hash-shards on one column.

    The constructor takes columns in *base* row order, routes every row
    to ``shard_ids(key) % num_shards`` and stores the columns permuted
    so each shard is one contiguous range (``shard_bounds``).  The
    permutation is stable, so base row order is preserved inside each
    shard, and :meth:`original_rows` maps physical row ids back to base
    ids for result reporting.
    """

    def __init__(self, name, columns, shard_key, num_shards):
        if shard_key not in columns:
            raise KeyError(
                f"shard key {shard_key!r} is not a column of table {name!r}"
            )
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        ids = shard_ids(columns[shard_key], num_shards)
        base_rows = np.argsort(ids, kind="stable").astype(np.int64)
        super().__init__(
            name, {col: np.asarray(arr)[base_rows] for col, arr in columns.items()}
        )
        self.shard_key = shard_key
        self.num_shards = num_shards
        self._base_rows = base_rows
        self._physical_rows = None  # inverse permutation, built lazily
        #: provenance (set by :meth:`from_table`): lets catalog
        #: invalidation re-cluster us when the source data mutates
        self._source = None
        self._shard_bounds = np.searchsorted(
            ids[base_rows], np.arange(num_shards + 1)
        ).astype(np.int64)

    @classmethod
    def from_table(cls, table, shard_key, num_shards):
        """Partition an existing :class:`Table` (same name, same rows)."""
        partitioned = cls(table.name, table.columns, shard_key, num_shards)
        partitioned._source = table
        return partitioned

    @staticmethod
    def can_shard(column):
        """True when a key column is hash-shardable: non-empty, integer
        dtype, and inside float64's exact integer range (so float
        probes stay unambiguous)."""
        column = np.asarray(column)
        return (len(column) > 0
                and np.issubdtype(column.dtype, np.integer)
                and _float_exact(column))

    def renamed(self, name):
        """A zero-copy alias of this table under another name.

        Shares the column arrays, shard layout and provenance; used by
        selection push-down so planning SQL over an already partitioned
        catalog keeps the caller's layout instead of flattening it.
        """
        clone = PartitionedTable.__new__(PartitionedTable)
        Table.__init__(clone, name, self.columns)
        clone.shard_key = self.shard_key
        clone.num_shards = self.num_shards
        clone._base_rows = self._base_rows
        clone._physical_rows = self._physical_rows
        clone._source = self._source
        clone._shard_bounds = self._shard_bounds
        return clone

    def shares_data_with(self, other):
        """Also stale when our *source* shares data with ``other``:
        our columns are copies, but copies of the mutated arrays."""
        if super().shares_data_with(other):
            return True
        return self._source is not None and self._source.shares_data_with(other)

    def refreshed(self, mutated=None):
        """Re-cluster after an acknowledged in-place mutation.

        When our *own* physical arrays are the mutated ones (``mutated``
        is ``None``, ourselves, or shares arrays with us), re-cluster
        the current columns and compose the base-row mapping so
        ``original_rows`` keeps reporting the original frame.
        Otherwise the mutation hit our *source*, whose data we hold as
        stale copies — re-cluster from it, keeping our name (we may be
        a renamed alias of it).
        """
        if mutated is None or Table.shares_data_with(self, mutated):
            fresh = PartitionedTable(
                self.name, self.columns, self.shard_key, self.num_shards
            )
            # fresh's mapping goes fresh-physical -> our-physical;
            # compose with ours to keep the base frame
            fresh._base_rows = self._base_rows[fresh._base_rows]
            fresh._source = self._source
            return fresh
        if self._source is None:
            return self
        fresh = PartitionedTable(
            self.name, self._source.columns, self.shard_key, self.num_shards
        )
        fresh._source = self._source
        return fresh

    @property
    def shard_bounds(self):
        """Contiguous shard offsets: shard ``s`` is rows
        ``[bounds[s], bounds[s + 1])``."""
        return self._shard_bounds

    def shard_slice(self, shard):
        """``(start, stop)`` physical row range of one shard."""
        return int(self._shard_bounds[shard]), int(self._shard_bounds[shard + 1])

    def original_rows(self, rows):
        """Map physical row ids back to the base table's row ids."""
        return self._base_rows[np.asarray(rows, dtype=np.int64)]

    def base_row_ids(self):
        """The physical-to-base permutation (see
        :meth:`~repro.storage.Table.base_row_ids`)."""
        return self._base_rows

    def physical_rows(self, rows):
        """Map base-table row ids to this layout's physical positions."""
        if self._physical_rows is None:
            inverse = np.empty(len(self._base_rows), dtype=np.int64)
            inverse[self._base_rows] = np.arange(
                len(self._base_rows), dtype=np.int64
            )
            self._physical_rows = inverse
        return self._physical_rows[np.asarray(rows, dtype=np.int64)]

    def gather(self, rows, columns=None):
        """Return ``{column: values[rows]}`` for **base-table** row ids.

        Engine results (``ExecutionResult.output_rows``) report base
        ids so they are layout-independent; ``gather`` is the value-
        fetch API for those ids and translates to physical positions
        internally.  ``column()`` by contrast exposes the raw physical
        (re-clustered) order the engine operates on.
        """
        return super().gather(self.physical_rows(rows), columns=columns)

    def build_hash_index(self, attribute, rows=None):
        """Sharded index on the shard key; merged view on anything else.

        The merged fallback is a plain :class:`HashIndex` over the full
        (re-clustered) column, so probes on non-shard-key attributes
        stay correct — they just don't fan out.
        """
        if attribute == self.shard_key and self.num_shards > 1:
            if rows is None:
                return ShardedHashIndex(
                    self.column(attribute),
                    self.num_shards,
                    bounds=self._shard_bounds,
                )
            return ShardedHashIndex(
                self.column(attribute), self.num_shards, rows=rows
            )
        return super().build_hash_index(attribute, rows=rows)

    def _layout_descriptor(self):
        # distinguishes two partitionings of identical content (and any
        # partitioning from the base table) in fingerprints, so stats
        # and plan caches key on the physical layout as well as data
        return f"sharded:{self.shard_key}:{self.num_shards}".encode()

    def __repr__(self):
        return (
            f"PartitionedTable({self.name!r}, rows={self.num_rows}, "
            f"shard_key={self.shard_key!r}, shards={self.num_shards})"
        )


def partition_replacements(catalog, query, num_shards, min_rows=0):
    """``{relation: PartitionedTable}`` for the query's shardable
    probe targets.

    Every non-root relation of ``query`` whose probe attribute
    (``edge.child_attr``) can be hash-sharded gets a replacement;
    relations that cannot — empty, non-integer join key, keys at or
    beyond float64's exact integer range (2**53, where float probes
    become ambiguous), or already partitioned — are skipped and simply
    keep their merged-view indexes.  ``min_rows`` additionally skips
    tables below that size: the planner's ``"auto"`` mode sizes shards
    from *base* tables (so cache keys are computable before push-down)
    and uses this floor to avoid re-clustering a selection that kept
    only a handful of rows.  The driver is never partitioned (it is
    scanned, not probed).  Replacements depend only on the partitioned
    relations' content, so callers can reuse them across queries that
    differ elsewhere (e.g. driver-side selection constants).
    """
    replacements = {}
    if num_shards <= 1:
        return replacements
    for edge in query.edges:
        table = catalog.table(edge.child)
        if len(table) < max(min_rows, 1) or isinstance(table, PartitionedTable):
            continue
        if not PartitionedTable.can_shard(table.column(edge.child_attr)):
            continue
        replacements[edge.child] = PartitionedTable.from_table(
            table, edge.child_attr, num_shards
        )
    return replacements


def partitioned_catalog(catalog, query, num_shards):
    """A derived catalog with the query's probe targets hash-partitioned.

    See :func:`partition_replacements` for which relations shard;
    returns ``catalog`` itself when nothing does.
    """
    replacements = partition_replacements(catalog, query, num_shards)
    if not replacements:
        return catalog
    return catalog.derived_with(replacements)
