"""In-memory tables and the catalog.

A :class:`Table` is a named collection of equal-length numpy columns.
Row identity is positional (the implicit ID column of Section 4.2); the
engine passes row-index arrays around instead of copying payloads.  The
:class:`Catalog` owns tables and caches per-attribute hash indexes.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .chunk import DEFAULT_CHUNK_SIZE, iter_chunks
from .hashindex import HashIndex

__all__ = ["Table", "Catalog"]


class Table:
    """A named, immutable-by-convention columnar table."""

    def __init__(self, name, columns):
        if not columns:
            raise ValueError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns = {}
        n = None
        for col_name, values in columns.items():
            arr = np.asarray(values)
            if np.issubdtype(arr.dtype, np.integer):
                arr = arr.astype(np.int64, copy=False)
            if arr.ndim != 1:
                raise ValueError(f"column {col_name!r} must be 1-D")
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise ValueError(
                    f"column {col_name!r} has length {len(arr)}, expected {n}"
                )
            self.columns[col_name] = arr
        self.num_rows = n
        self._fingerprint = None

    def __len__(self):
        return self.num_rows

    def fingerprint(self):
        """A stable content digest of the table (hex string, cached).

        Covers the table name, schema (column names, dtypes) and the
        raw column bytes, so two tables with identical data fingerprint
        identically and any data change is detected.  Tables are
        immutable by convention, so the digest is computed once and
        cached; it anchors the statistics and plan caches (a plan or
        stats entry is only reusable while every input table's
        fingerprint is unchanged).
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)

            def feed(payload):
                # length-prefix every field so adjacent fields can never
                # be re-split into a colliding stream
                digest.update(str(len(payload)).encode() + b":")
                digest.update(payload)

            feed(self.name.encode())
            feed(str(self.num_rows).encode())
            for col_name in sorted(self.columns):
                values = self.columns[col_name]
                feed(col_name.encode())
                feed(str(values.dtype).encode())
                if values.dtype.hasobject:
                    feed(repr(values.tolist()).encode())
                else:
                    feed(np.ascontiguousarray(values).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __repr__(self):
        return f"Table({self.name!r}, rows={self.num_rows}, columns={list(self.columns)})"

    def column(self, name):
        """Return the raw numpy array for a column."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {list(self.columns)}"
            ) from None

    @property
    def column_names(self):
        return list(self.columns)

    def distinct_count(self, column):
        """Number of distinct values in ``column`` (V(A, R) in the paper)."""
        return int(len(np.unique(self.column(column))))

    def chunks(self, chunk_size=DEFAULT_CHUNK_SIZE):
        """Iterate over the table as DataChunks."""
        return iter_chunks(self.columns, chunk_size)

    def gather(self, rows, columns=None):
        """Return {column: values[rows]} for the given row indices."""
        rows = np.asarray(rows, dtype=np.int64)
        names = columns if columns is not None else self.column_names
        return {name: self.columns[name][rows] for name in names}


class Catalog:
    """A registry of tables with cached hash indexes.

    Hash indexes are keyed by ``(table_name, attribute)`` and built
    lazily on first use, mirroring the build phase of a hash join.  The
    cache can be restricted to a subset of rows (used by semi-join
    reduction, which probes reduced relations).
    """

    def __init__(self):
        self._tables = {}
        self._indexes = {}
        #: bumped on every mutation; guards the cached fingerprint
        self._version = 0
        self._fingerprint = None
        self._fingerprint_version = -1

    def add(self, table):
        """Register a table (replacing any previous table of that name)."""
        if not isinstance(table, Table):
            raise TypeError(f"expected Table, got {type(table).__name__}")
        self._tables[table.name] = table
        self._version += 1
        # Invalidate any cached indexes for the replaced table.
        self._indexes = {
            key: idx for key, idx in self._indexes.items() if key[0] != table.name
        }
        return table

    def add_table(self, name, columns):
        """Convenience: build and register a Table from raw columns."""
        return self.add(Table(name, columns))

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table named {name!r}; available: {list(self._tables)}"
            ) from None

    def __contains__(self, name):
        return name in self._tables

    @property
    def table_names(self):
        return list(self._tables)

    @property
    def version(self):
        """Monotone counter bumped whenever a table is (re)registered."""
        return self._version

    def fingerprint(self):
        """A stable digest of the whole catalog's contents (hex string).

        Combines every table's :meth:`Table.fingerprint`.  Cached
        against the catalog :attr:`version`, so repeated calls between
        mutations are O(#tables) dictionary work, not O(data); the
        per-table content digests themselves are computed at most once
        per table.  Statistics and plan caches key on this value to
        invalidate automatically when the data changes.
        """
        if self._fingerprint_version != self._version:
            digest = hashlib.blake2b(digest_size=16)
            for name in sorted(self._tables):
                payload = name.encode()
                digest.update(str(len(payload)).encode() + b":")
                digest.update(payload)
                # table fingerprints are fixed-width hex: no prefix needed
                digest.update(self._tables[name].fingerprint().encode())
            self._fingerprint = digest.hexdigest()
            self._fingerprint_version = self._version
        return self._fingerprint

    def hash_index(self, table_name, attribute):
        """Return (building if necessary) the hash index on an attribute."""
        key = (table_name, attribute)
        index = self._indexes.get(key)
        if index is None:
            table = self.table(table_name)
            index = HashIndex(table.column(attribute))
            self._indexes[key] = index
        return index

    def derived_with(self, replacements):
        """A shallow derivative catalog with some tables replaced.

        Returns a new :class:`Catalog` that shares this catalog's
        tables *and their already-built hash indexes* (tables are
        immutable by convention, so sharing is safe), except for the
        given ``{name: Table}`` replacements, whose indexes are
        rebuilt lazily.  Used by prepared statements to re-bind
        selection constants without re-deriving the unchanged
        relations.
        """
        derived = Catalog()
        derived._tables = dict(self._tables)
        derived._version = 1
        derived._indexes = {
            key: index
            for key, index in self._indexes.items()
            if key[0] not in replacements
        }
        for table in replacements.values():
            derived.add(table)
        return derived

    def invalidate_indexes(self, table_name=None):
        """Drop cached indexes (all, or for one table)."""
        if table_name is None:
            self._indexes.clear()
        else:
            self._indexes = {
                key: idx
                for key, idx in self._indexes.items()
                if key[0] != table_name
            }
