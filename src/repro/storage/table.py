"""In-memory tables and the catalog.

A :class:`Table` is a named collection of equal-length numpy columns.
Row identity is positional (the implicit ID column of Section 4.2); the
engine passes row-index arrays around instead of copying payloads.  The
:class:`Catalog` owns tables and caches per-attribute hash indexes.
"""

from __future__ import annotations

import hashlib
import weakref

import numpy as np

from .chunk import DEFAULT_CHUNK_SIZE, iter_chunks
from .hashindex import HashIndex

__all__ = ["Table", "Catalog"]


class Table:
    """A named, immutable-by-convention columnar table."""

    def __init__(self, name, columns):
        if not columns:
            raise ValueError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns = {}
        n = None
        for col_name, values in columns.items():
            arr = np.asarray(values)
            if np.issubdtype(arr.dtype, np.integer):
                arr = arr.astype(np.int64, copy=False)
            if arr.ndim != 1:
                raise ValueError(f"column {col_name!r} must be 1-D")
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise ValueError(
                    f"column {col_name!r} has length {len(arr)}, expected {n}"
                )
            self.columns[col_name] = arr
        self.num_rows = n
        self._fingerprint = None

    def __len__(self):
        return self.num_rows

    def _layout_descriptor(self):
        """Physical-layout tag mixed into the fingerprint.

        The base table has no layout beyond its row order (returns
        ``b""``); :class:`~repro.storage.partition.PartitionedTable`
        overrides this so two partitionings of identical content
        fingerprint differently.
        """
        return b""

    def fingerprint(self):
        """A stable content digest of the table (hex string, cached).

        Covers the table name, schema (column names, dtypes) and the
        raw column bytes, so two tables with identical data fingerprint
        identically and any data change is detected.  Tables are
        immutable by convention, so the digest is computed once and
        cached; it anchors the statistics and plan caches (a plan or
        stats entry is only reusable while every input table's
        fingerprint is unchanged).
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)

            def feed(payload):
                # length-prefix every field so adjacent fields can never
                # be re-split into a colliding stream
                digest.update(str(len(payload)).encode() + b":")
                digest.update(payload)

            feed(self.name.encode())
            feed(self._layout_descriptor())
            feed(str(self.num_rows).encode())
            for col_name in sorted(self.columns):
                values = self.columns[col_name]
                feed(col_name.encode())
                feed(str(values.dtype).encode())
                if values.dtype.hasobject:
                    feed(repr(values.tolist()).encode())
                else:
                    feed(np.ascontiguousarray(values).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def invalidate_fingerprint(self):
        """Drop the cached content digest (after an in-place mutation).

        Called by :meth:`Catalog.invalidate_indexes`, the acknowledged
        escape hatch for in-place column mutation, so every
        fingerprint-keyed cache (stats, plans, partitioned catalogs)
        misses instead of serving results for the old bytes.
        """
        self._fingerprint = None

    def shares_data_with(self, other):
        """True when mutating ``other``'s arrays in place corrupts us.

        Identity, shared column arrays (the planner's push-down
        wrappers), or — for
        :class:`~repro.storage.partition.PartitionedTable`, which
        overrides this — a re-clustered *copy* of ``other``'s data.
        """
        if self is other:
            return True
        other_arrays = {id(values) for values in other.columns.values()}
        return any(id(values) in other_arrays
                   for values in self.columns.values())

    def refreshed(self, mutated=None):
        """A replacement for this table after ``mutated``'s arrays
        changed in place.

        Plain tables hold the mutated arrays themselves, so they *are*
        the refreshed version; a
        :class:`~repro.storage.partition.PartitionedTable` re-clusters
        — from its own columns when those are the mutated arrays, or
        from its source when its columns are stale copies of it.
        """
        return self

    def __repr__(self):
        return f"Table({self.name!r}, rows={self.num_rows}, columns={list(self.columns)})"

    def column(self, name):
        """Return the raw numpy array for a column."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {list(self.columns)}"
            ) from None

    @property
    def column_names(self):
        return list(self.columns)

    def distinct_count(self, column):
        """Number of distinct values in ``column`` (V(A, R) in the paper)."""
        return int(len(np.unique(self.column(column))))

    def chunks(self, chunk_size=DEFAULT_CHUNK_SIZE):
        """Iterate over the table as DataChunks."""
        return iter_chunks(self.columns, chunk_size)

    def gather(self, rows, columns=None):
        """Return {column: values[rows]} for the given row indices."""
        rows = np.asarray(rows, dtype=np.int64)
        names = columns if columns is not None else self.column_names
        return {name: self.columns[name][rows] for name in names}

    def original_rows(self, rows):
        """Map engine row ids back to base-table row ids.

        The identity for an unpartitioned table;
        :class:`~repro.storage.partition.PartitionedTable` (which
        re-clusters rows into contiguous shards) overrides this with
        its physical-to-base permutation.
        """
        return np.asarray(rows, dtype=np.int64)

    def base_row_ids(self):
        """The physical-to-base row permutation, or ``None``.

        ``None`` means :meth:`original_rows` is the identity (ordinary
        tables).  :class:`~repro.storage.partition.PartitionedTable`
        returns its re-clustering permutation; the interpreted
        execution kernels walk it row by row instead of fancy-indexing.
        """
        return None

    def build_hash_index(self, attribute, rows=None):
        """A hash index on ``attribute`` (optionally row-restricted).

        The physical index type is the table's choice:
        :class:`~repro.storage.partition.PartitionedTable` returns a
        sharded index when ``attribute`` is its shard key.  The
        :class:`Catalog` and the semi-join reduction both build through
        this hook, which is what threads partition awareness into the
        engine without the engine knowing about layouts.
        """
        return HashIndex(self.column(attribute), rows=rows)


class Catalog:
    """A registry of tables with cached hash indexes.

    Hash indexes are keyed by ``(table_name, attribute)`` and built
    lazily on first use, mirroring the build phase of a hash join.  The
    cache can be restricted to a subset of rows (used by semi-join
    reduction, which probes reduced relations).
    """

    def __init__(self):
        self._tables = {}
        self._indexes = {}
        #: bumped on every mutation; guards the cached fingerprint
        self._version = 0
        self._fingerprint = None
        self._fingerprint_version = -1
        #: live derivative catalogs (see :meth:`derived_with`); index
        #: invalidation propagates to them for the tables they share
        self._derived = weakref.WeakSet()
        #: strong ref to the catalog this one was derived from — keeps
        #: every intermediate of a derivation chain alive while a leaf
        #: is, so parent invalidation can always walk down to us
        self._parent = None
        #: tables awaiting a lazy :meth:`Table.refreshed` after an
        #: acknowledged in-place mutation ({name: [mutated tables]});
        #: flushed on first access, so catalogs that are never touched
        #: again (e.g. evicted plan caches) pay nothing
        self._pending_refresh = {}

    def __getstate__(self):
        """Pickle without the live-derivative bookkeeping.

        The :class:`weakref.WeakSet` of derived catalogs (and the
        deferred-refresh queue) only matter for in-process mutation
        propagation; a pickled copy (e.g. one shipped to a planning
        worker process) starts with no derivatives.  Tables, cached
        indexes and the content fingerprint travel as-is, so the copy
        is content-identical — ``fingerprint()`` returns the same hex
        string on both sides, which is what lets workers address
        catalogs by content.
        """
        self._flush_refresh()  # the copy must see current data
        state = self.__dict__.copy()
        state["_derived"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._derived = weakref.WeakSet()

    def add(self, table):
        """Register a table (replacing any previous table of that name)."""
        if not isinstance(table, Table):
            raise TypeError(f"expected Table, got {type(table).__name__}")
        self._tables[table.name] = table
        self._pending_refresh.pop(table.name, None)
        self._version += 1
        # Invalidate any cached indexes for the replaced table.
        self._indexes = {
            key: idx for key, idx in self._indexes.items() if key[0] != table.name
        }
        return table

    def add_table(self, name, columns):
        """Convenience: build and register a Table from raw columns."""
        return self.add(Table(name, columns))

    def _flush_refresh(self):
        """Apply deferred post-mutation refreshes (see
        :meth:`invalidate_indexes`)."""
        if not self._pending_refresh:
            return
        pending, self._pending_refresh = self._pending_refresh, {}
        for name, triggers in pending.items():
            table = self._tables[name]
            for trigger in triggers:
                table = table.refreshed(trigger)
            self._tables[name] = table

    def table(self, name):
        self._flush_refresh()
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table named {name!r}; available: {list(self._tables)}"
            ) from None

    def __contains__(self, name):
        return name in self._tables

    @property
    def table_names(self):
        return list(self._tables)

    @property
    def version(self):
        """Monotone counter bumped whenever a table is (re)registered."""
        return self._version

    def fingerprint(self):
        """A stable digest of the whole catalog's contents (hex string).

        Combines every table's :meth:`Table.fingerprint`.  Cached
        against the catalog :attr:`version`, so repeated calls between
        mutations are O(#tables) dictionary work, not O(data); the
        per-table content digests themselves are computed at most once
        per table.  Statistics and plan caches key on this value to
        invalidate automatically when the data changes.
        """
        self._flush_refresh()
        if self._fingerprint_version != self._version:
            digest = hashlib.blake2b(digest_size=16)
            for name in sorted(self._tables):
                payload = name.encode()
                digest.update(str(len(payload)).encode() + b":")
                digest.update(payload)
                # table fingerprints are fixed-width hex: no prefix needed
                digest.update(self._tables[name].fingerprint().encode())
            self._fingerprint = digest.hexdigest()
            self._fingerprint_version = self._version
        return self._fingerprint

    def hash_index(self, table_name, attribute):
        """Return (building if necessary) the hash index on an attribute.

        The index type is delegated to
        :meth:`Table.build_hash_index`, so a
        :class:`~repro.storage.partition.PartitionedTable` transparently
        serves a sharded index on its shard key and a merged view on
        every other attribute.
        """
        key = (table_name, attribute)
        index = self._indexes.get(key)
        if index is None:
            index = self.table(table_name).build_hash_index(attribute)
            self._indexes[key] = index
        return index

    def derived_with(self, replacements):
        """A shallow derivative catalog with some tables replaced.

        Returns a new :class:`Catalog` that shares this catalog's
        tables *and their already-built hash indexes* (tables are
        immutable by convention, so sharing is safe), except for the
        given ``{name: Table}`` replacements, whose indexes are
        rebuilt lazily.  Used by prepared statements to re-bind
        selection constants without re-deriving the unchanged
        relations.

        The derivative stays registered with its parent:
        :meth:`invalidate_indexes` on the parent also drops the
        derivative's cached indexes for every table the two still
        share, so an in-place data change acknowledged on the parent
        can never leave a derived catalog serving a stale index over
        the shared arrays.
        """
        self._flush_refresh()
        derived = Catalog()
        derived._tables = dict(self._tables)
        derived._version = 1
        derived._indexes = {
            key: index
            for key, index in self._indexes.items()
            if key[0] not in replacements
        }
        for table in replacements.values():
            derived.add(table)
        self.register_derived(derived)
        return derived

    def register_derived(self, derived):
        """Subscribe a catalog built over (some of) our tables or arrays
        to index-invalidation propagation.

        :meth:`derived_with` registers automatically; the planner's
        push-down catalogs (fresh alias-named tables that may *share
        column arrays* with ours) register through this so the
        in-place-mutation escape hatch reaches them too.
        """
        derived._parent = self
        self._derived.add(derived)
        return derived

    def invalidate_indexes(self, table_name=None):
        """Drop cached indexes (all, or for one table).

        This is the escape hatch for callers that mutate a table's
        arrays in place (tables are only immutable *by convention*).
        It also drops the affected tables' cached content fingerprints
        and bumps the catalog version, so every fingerprint-keyed cache
        (statistics, plans, re-clustered partitioned catalogs) misses
        instead of serving results derived from the old bytes.  The
        drop propagates to catalogs derived from this one — but only
        for tables they still share with us; a derivative whose table
        was replaced keeps its own consistent index.
        """
        if table_name is None:
            self._indexes.clear()
            affected = list(self._tables)
        else:
            self._indexes = {
                key: idx
                for key, idx in self._indexes.items()
                if key[0] != table_name
            }
            affected = [table_name] if table_name in self._tables else []
        origins = []
        for name in affected:
            table = self._tables[name]
            table.invalidate_fingerprint()
            # a directly-held partitioned table's shard layout is now
            # inconsistent with its (own, mutated) key column; refresh
            # re-clusters it lazily on next access
            self._pending_refresh.setdefault(name, []).append(table)
            origins.append(table)
        self._version += 1
        for derived in tuple(self._derived):
            derived._invalidate_shared(self._tables, table_name, origins)

    def _invalidate_shared(self, parent_tables, table_name, origins):
        """Drop indexes for tables sharing data with a mutated parent.

        ``parent_tables`` establishes *connectivity* (we are stale if
        we share data with the parent's affected table, directly or
        through a copy), but the refresh trigger recorded is always one
        of ``origins`` — the tables whose arrays were actually mutated.
        Deep derivations would otherwise receive a stale intermediate
        copy as the "mutated" table and re-cluster from the wrong side.
        Stale tables are scheduled for a lazy :meth:`Table.refreshed`
        on this catalog's next access — so a held plan pinning this
        catalog reads current data on its next run, while catalogs
        never touched again pay nothing.
        """
        if table_name is None:
            mutated = list(parent_tables.values())
        elif table_name in parent_tables:
            mutated = [parent_tables[table_name]]
        else:
            mutated = []
        stale = set()
        for name, table in self._tables.items():
            if any(table.shares_data_with(parent) for parent in mutated):
                stale.add(name)
        if not stale:
            return
        self._indexes = {
            key: idx for key, idx in self._indexes.items()
            if key[0] not in stale
        }
        for name in stale:
            table = self._tables[name]
            # array-sharing wrappers cache their own digest of the
            # shared (now mutated) bytes
            table.invalidate_fingerprint()
            # the origin whose arrays this table holds directly, if
            # any — Table-level check, so a partitioned *copy* of an
            # origin correctly refreshes from its source instead
            trigger = next(
                (origin for origin in origins
                 if Table.shares_data_with(table, origin)),
                origins[0] if origins else None,
            )
            self._pending_refresh.setdefault(name, []).append(trigger)
        # bump our version so the cached catalog digest recomputes
        self._version += 1
        for derived in tuple(self._derived):
            for name in stale:
                derived._invalidate_shared(self._tables, name, origins)
