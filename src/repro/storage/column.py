"""Columnar vector storage.

This module provides :class:`VectorColumn`, the smallest unit of data in
the engine, mirroring DuckDB-style vectors described in Section 4.2 of
the paper.  A vector holds a contiguous ``numpy`` array of values and an
optional *selection vector*: a boolean mask that marks which entries
participate in subsequent joins (entries whose selection bit is cleared
have been eliminated by a failed probe but are kept in place so that the
factorized representation stays positionally aligned).
"""

from __future__ import annotations

import numpy as np

__all__ = ["VectorColumn"]


class VectorColumn:
    """A typed column of values with an optional selection vector.

    Parameters
    ----------
    values:
        Any 1-D array-like.  Integer data is stored as ``int64``; other
        dtypes (floats, strings via ``object``) are preserved.
    selection:
        Optional boolean mask of the same length.  ``None`` means "all
        selected".  The mask is materialized lazily by
        :meth:`ensure_selection`.
    """

    __slots__ = ("values", "selection")

    def __init__(self, values, selection=None):
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise ValueError(f"VectorColumn requires 1-D data, got shape {arr.shape}")
        if np.issubdtype(arr.dtype, np.integer):
            arr = arr.astype(np.int64, copy=False)
        self.values = arr
        if selection is not None:
            selection = np.asarray(selection, dtype=bool)
            if selection.shape != arr.shape:
                raise ValueError(
                    f"selection shape {selection.shape} != values shape {arr.shape}"
                )
        self.selection = selection

    def __len__(self):
        return len(self.values)

    def __repr__(self):
        sel = "all" if self.selection is None else int(self.selection.sum())
        return f"VectorColumn(n={len(self)}, selected={sel}, dtype={self.values.dtype})"

    def __eq__(self, other):
        if not isinstance(other, VectorColumn):
            return NotImplemented
        if len(self) != len(other):
            return False
        return bool(
            np.array_equal(self.values, other.values)
            and np.array_equal(self.selection_mask(), other.selection_mask())
        )

    def ensure_selection(self):
        """Materialize the selection vector (all-true) if absent."""
        if self.selection is None:
            self.selection = np.ones(len(self.values), dtype=bool)
        return self.selection

    def selection_mask(self):
        """Return the effective boolean mask without mutating the column."""
        if self.selection is None:
            return np.ones(len(self.values), dtype=bool)
        return self.selection

    @property
    def num_selected(self):
        """Number of entries that still participate in joins."""
        if self.selection is None:
            return len(self.values)
        return int(self.selection.sum())

    def selected_values(self):
        """Values whose selection bit is set, in positional order."""
        if self.selection is None:
            return self.values
        return self.values[self.selection]

    def selected_indices(self):
        """Positions whose selection bit is set."""
        if self.selection is None:
            return np.arange(len(self.values))
        return np.nonzero(self.selection)[0]

    def deselect(self, positions):
        """Clear the selection bit at ``positions`` (array of indices)."""
        self.ensure_selection()[np.asarray(positions, dtype=np.int64)] = False

    def take(self, positions):
        """Gather a new column at ``positions`` (selection not carried)."""
        return VectorColumn(self.values[np.asarray(positions, dtype=np.int64)])

    def copy(self):
        """Deep copy of values and selection."""
        sel = None if self.selection is None else self.selection.copy()
        return VectorColumn(self.values.copy(), sel)
