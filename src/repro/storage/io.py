"""Catalog persistence: CSV tables plus a JSON schema manifest.

A saved catalog is a directory containing one ``<table>.csv`` per table
and a ``catalog.json`` manifest recording table order, column order and
dtypes, so a round trip is exact.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from .table import Catalog, Table

__all__ = ["save_catalog", "load_catalog", "table_to_csv", "table_from_csv"]

_MANIFEST = "catalog.json"


def table_to_csv(table, path):
    """Write one table as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        columns = [table.column(name) for name in table.column_names]
        for row in zip(*(col.tolist() for col in columns)):
            writer.writerow(row)


def table_from_csv(name, path, dtypes=None):
    """Read one table from CSV; ``dtypes`` maps column -> numpy dtype."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty (missing header)") from None
        rows = list(reader)
    columns = {}
    for index, column in enumerate(header):
        raw = [row[index] for row in rows]
        dtype = (dtypes or {}).get(column, "int64")
        columns[column] = np.asarray(raw, dtype=np.dtype(dtype))
    return Table(name, columns)


def save_catalog(catalog, directory):
    """Persist every table of ``catalog`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {"tables": []}
    for name in catalog.table_names:
        table = catalog.table(name)
        table_to_csv(table, directory / f"{name}.csv")
        manifest["tables"].append(
            {
                "name": name,
                "rows": table.num_rows,
                "columns": [
                    {"name": col, "dtype": str(table.column(col).dtype)}
                    for col in table.column_names
                ],
            }
        )
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory


def load_catalog(directory):
    """Load a catalog previously written by :func:`save_catalog`."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {_MANIFEST} in {directory}")
    manifest = json.loads(manifest_path.read_text())
    catalog = Catalog()
    for entry in manifest["tables"]:
        dtypes = {col["name"]: col["dtype"] for col in entry["columns"]}
        table = table_from_csv(
            entry["name"], directory / f"{entry['name']}.csv", dtypes
        )
        if table.num_rows != entry["rows"]:
            raise ValueError(
                f"table {entry['name']!r}: manifest says {entry['rows']} "
                f"rows, CSV has {table.num_rows}"
            )
        catalog.add(table)
    return catalog
