"""Vectorized hash index (the "build side" of a hash join).

The paper's engine (Section 4.2) builds, per join operator, a pointer
table plus a chained hash map that groups build-side tuples by join key.
The numpy equivalent used here is a *group index*: rows are sorted by
key once, and a lookup for a batch of probe keys is a vectorized binary
search that yields, per key, the count of matches and (on demand) the
flattened list of matching row indices.  The semantics relevant to the
paper — one *probe* per input key, returning all matches — are
identical; only the constant factors differ.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HashIndex", "LookupResult", "concat_ranges"]


def concat_ranges(starts, lengths):
    """Concatenate ``[arange(s, s + l) for s, l in zip(starts, lengths)]``.

    Fully vectorized; the workhorse of match expansion.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if len(starts) == 0:
        return np.empty(0, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Position of each output element within its own range:
    ends = np.cumsum(lengths)
    offsets = np.repeat(ends - lengths, lengths)
    within = np.arange(total, dtype=np.int64) - offsets
    return np.repeat(starts, lengths) + within


class LookupResult:
    """Outcome of probing a batch of keys into a :class:`HashIndex`.

    Attributes
    ----------
    counts:
        int64 array, one entry per probed key: number of matches.
    """

    __slots__ = ("_index", "_positions", "counts")

    def __init__(self, index, positions, counts):
        self._index = index
        self._positions = positions  # position in unique-key table, -1 if miss
        self.counts = counts

    def __len__(self):
        return len(self.counts)

    @property
    def matched_mask(self):
        """Boolean mask over probed keys: found at least one match."""
        return self.counts > 0

    def total_matches(self):
        return int(self.counts.sum())

    def matching_rows(self):
        """Flattened build-side row indices, grouped per probe key.

        For probe key ``i`` the matches occupy the slice
        ``[cumsum(counts)[i-1] : cumsum(counts)[i]]`` of the result.
        Keys with no match contribute nothing.
        """
        hit = self._positions >= 0
        starts = self._index._starts[self._positions[hit]]
        lengths = self.counts[hit]
        order_positions = concat_ranges(starts, lengths)
        return self._index._order[order_positions]


class HashIndex:
    """Group index over a key column (optionally restricted to a subset).

    Parameters
    ----------
    keys:
        1-D integer array: the join-key column of the build relation.
    rows:
        Optional row-index array; if given, the index covers only those
        rows (used for semi-join-reduced relations).
    row_offset:
        Constant added to the reported row ids; lets a caller index a
        contiguous slice ``keys[start:stop]`` (a view, no gather) while
        reporting whole-table row ids — the per-shard build path of a
        :class:`~repro.storage.partition.PartitionedTable`.  Mutually
        exclusive with ``rows``.
    """

    def __init__(self, keys, rows=None, row_offset=0):
        keys = np.asarray(keys)
        if rows is not None:
            if row_offset:
                raise ValueError("pass either rows or row_offset, not both")
            rows = np.asarray(rows, dtype=np.int64)
            keys = keys[rows]
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        if rows is not None:
            order = rows[order]
        order = order.astype(np.int64, copy=False)
        if row_offset:
            order += row_offset
        self._order = order
        if len(sorted_keys):
            unique_keys, starts, counts = np.unique(
                sorted_keys, return_index=True, return_counts=True
            )
        else:
            unique_keys = sorted_keys
            starts = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        self._unique_keys = unique_keys
        self._starts = starts.astype(np.int64, copy=False)
        self._counts = counts.astype(np.int64, copy=False)

    def __len__(self):
        """Number of indexed rows."""
        return len(self._order)

    @property
    def key_dtype(self):
        """Dtype of the indexed key column (probe batches are compared
        in ``np.result_type(key_dtype, probe dtype)``)."""
        return self._unique_keys.dtype

    def iter_groups(self):
        """Yield ``(key, [row ids])`` per distinct key, keys ascending.

        Row ids appear in the same order :meth:`LookupResult.matching_rows`
        reports them (the stable sort keeps equal keys in original row
        order).  This is the hook the interpreted execution kernels use
        to build their dict views of the index — plain Python scalars
        and lists, derived once from the vectorized structure.
        """
        keys = self._unique_keys.tolist()
        starts = self._starts.tolist()
        counts = self._counts.tolist()
        order = self._order.tolist()
        for key, start, count in zip(keys, starts, counts):
            yield key, order[start:start + count]

    @property
    def num_distinct(self):
        return len(self._unique_keys)

    @property
    def max_group_size(self):
        """Largest number of rows sharing one key value.

        The guaranteed per-probe match ceiling: no probe key can ever
        return more rows than the heaviest key group.  This is the
        max-frequency statistic the pessimistic bound derivation
        (:mod:`repro.core.bounds`) is built on.
        """
        return int(self._counts.max()) if len(self._counts) else 0

    def distinct_keys(self):
        """The distinct key values, ascending."""
        return self._unique_keys

    def lookup(self, keys):
        """Probe a batch of keys; one probe per entry of ``keys``."""
        keys = np.asarray(keys)
        if len(self._unique_keys) == 0:
            positions = np.full(len(keys), -1, dtype=np.int64)
            counts = np.zeros(len(keys), dtype=np.int64)
            return LookupResult(self, positions, counts)
        pos = np.searchsorted(self._unique_keys, keys)
        pos_clipped = np.minimum(pos, len(self._unique_keys) - 1)
        hit = self._unique_keys[pos_clipped] == keys
        positions = np.where(hit, pos_clipped, -1)
        counts = np.where(hit, self._counts[pos_clipped], 0).astype(np.int64)
        return LookupResult(self, positions, counts)

    def contains(self, keys):
        """Membership test per key (a semi-join probe)."""
        keys = np.asarray(keys)
        if len(self._unique_keys) == 0:
            return np.zeros(len(keys), dtype=bool)
        pos = np.searchsorted(self._unique_keys, keys)
        pos = np.minimum(pos, len(self._unique_keys) - 1)
        return self._unique_keys[pos] == keys

    def probe_stats(self, keys):
        """``(matched, total_matches)`` for a probe batch.

        The scalar summary statistics derivation needs — how many probe
        keys found a match, and how many matches in total — without
        materializing the matching rows.  A
        :class:`~repro.storage.partition.ShardedHashIndex` computes the
        same pair by summing per-shard contributions.
        """
        result = self.lookup(keys)
        return int(result.matched_mask.sum()), int(result.counts.sum())

    def rows_for_key(self, key):
        """All build-side row indices matching a single key."""
        result = self.lookup(np.asarray([key]))
        return result.matching_rows()
