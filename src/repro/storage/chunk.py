"""DataChunk: a batch of tuples stored column-wise.

A :class:`DataChunk` is the unit of data flow between operators in the
vectorized engine (Section 4.2).  For base relations and STD
intermediates every column has the same length; for COM intermediates
columns belonging to different join-tree nodes have different lengths
(the factorized representation, handled by
:mod:`repro.engine.factorized`, stores those per-node arrays itself and
only uses chunks for base-table scans and flat output).
"""

from __future__ import annotations

import numpy as np

from .column import VectorColumn

__all__ = ["DataChunk", "DEFAULT_CHUNK_SIZE"]

#: Default vector size, following the paper's prototype (Section 5).
DEFAULT_CHUNK_SIZE = 2048


class DataChunk:
    """An ordered mapping of column name -> :class:`VectorColumn`.

    All columns in a flat chunk must have equal length.  Chunks are
    cheap, mutable containers; operators create new chunks rather than
    mutating inputs (except for selection-vector updates).
    """

    __slots__ = ("columns",)

    def __init__(self, columns=None):
        self.columns = {}
        if columns:
            for name, col in columns.items():
                self.add_column(name, col)

    def add_column(self, name, column):
        """Attach a column; wraps raw arrays in :class:`VectorColumn`."""
        if not isinstance(column, VectorColumn):
            column = VectorColumn(column)
        if self.columns:
            n = len(next(iter(self.columns.values())))
            if len(column) != n:
                raise ValueError(
                    f"column {name!r} has length {len(column)}, chunk has {n}"
                )
        self.columns[name] = column

    def column(self, name):
        """Look up a column by name."""
        return self.columns[name]

    def __contains__(self, name):
        return name in self.columns

    def __len__(self):
        """Number of rows (0 for an empty chunk)."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self):
        return list(self.columns)

    def __repr__(self):
        return f"DataChunk(rows={len(self)}, columns={self.column_names})"

    def take(self, positions):
        """Gather a new chunk of the given row positions."""
        positions = np.asarray(positions, dtype=np.int64)
        return DataChunk(
            {name: col.take(positions) for name, col in self.columns.items()}
        )

    def to_rows(self):
        """Materialize as a list of tuples (test/debug helper)."""
        if not self.columns:
            return []
        cols = [col.values for col in self.columns.values()]
        return list(zip(*(c.tolist() for c in cols)))

    @classmethod
    def from_rows(cls, names, rows):
        """Build a chunk from row tuples (test/debug helper)."""
        if rows:
            arrays = [np.asarray(col) for col in zip(*rows)]
        else:
            arrays = [np.empty(0, dtype=np.int64) for _ in names]
        chunk = cls()
        for name, arr in zip(names, arrays):
            chunk.add_column(name, VectorColumn(arr))
        return chunk


def iter_chunks(table_columns, chunk_size=DEFAULT_CHUNK_SIZE):
    """Yield :class:`DataChunk` batches over aligned column arrays.

    ``table_columns`` is a mapping of name -> numpy array; all arrays
    must have the same length.
    """
    if not table_columns:
        return
    n = len(next(iter(table_columns.values())))
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        yield DataChunk(
            {name: VectorColumn(arr[start:stop]) for name, arr in table_columns.items()}
        )
