"""Columnar storage substrate: vectors, chunks, tables, hash indexes."""

from .chunk import DEFAULT_CHUNK_SIZE, DataChunk, iter_chunks
from .column import VectorColumn
from .hashindex import HashIndex, LookupResult, concat_ranges
from .io import load_catalog, save_catalog, table_from_csv, table_to_csv
from .table import Catalog, Table

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "Catalog",
    "DataChunk",
    "HashIndex",
    "LookupResult",
    "Table",
    "VectorColumn",
    "concat_ranges",
    "iter_chunks",
    "load_catalog",
    "save_catalog",
    "table_from_csv",
    "table_to_csv",
]
