"""Columnar storage substrate: vectors, chunks, tables, hash indexes."""

from .chunk import DEFAULT_CHUNK_SIZE, DataChunk, iter_chunks
from .column import VectorColumn
from .hashindex import HashIndex, LookupResult, concat_ranges
from .io import load_catalog, save_catalog, table_from_csv, table_to_csv
from .partition import (
    FLOAT_EXACT_MAX,
    PartitionedTable,
    ShardSketch,
    ShardedHashIndex,
    ShardedLookupResult,
    partition_replacements,
    partitioned_catalog,
    shard_ids,
)
from .table import Catalog, Table

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FLOAT_EXACT_MAX",
    "Catalog",
    "DataChunk",
    "HashIndex",
    "LookupResult",
    "PartitionedTable",
    "ShardSketch",
    "ShardedHashIndex",
    "ShardedLookupResult",
    "Table",
    "VectorColumn",
    "concat_ranges",
    "iter_chunks",
    "load_catalog",
    "partition_replacements",
    "partitioned_catalog",
    "save_catalog",
    "shard_ids",
    "table_from_csv",
    "table_to_csv",
]
