"""Static plan/spec verifier: pass-based checks over resolved plans.

Six PRs of growth made correctness rest on informal invariants — every
semantic knob must reach ``PhysicalPlan.fingerprint()`` and the plan
cache key, every parsed join predicate must be exactly one spanning-tree
edge XOR one residual, the resolved tree must actually be a tree rooted
at the driver.  This module checks those invariants *statically*:
:func:`verify_plan` walks a :class:`~repro.planner.PhysicalPlan` (and,
when available, the :class:`~repro.core.parser.ParsedQuery` it was
planned from) without executing anything, and :func:`verify_spec` does
the same for a shipped :class:`~repro.planner.PlanSpec` before
rehydration.

Checks are organized as passes (see :data:`PLAN_PASSES`); each pass
emits :class:`~repro.analysis.diagnostics.Diagnostic` values with stable
codes (registry in :mod:`repro.analysis.diagnostics`).  ``basic`` runs
the structural and metadata passes only; ``full`` adds the O(rows)
data scans (key-hazard detection, selection push-down audit,
base-row-id bijection) and the behavioral fingerprint-sensitivity
probe.

:class:`PlanVerifier` wraps the module functions with a per-fingerprint
verdict cache, which is what the planner/service wiring uses: a plan
(or its rehydrated twin — identical fingerprint by construction) is
verified once, and every warm-path repeat is a dictionary hit.
"""

from __future__ import annotations

import dataclasses
import inspect
from collections import Counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Tuple

import numpy as np

from ..core.bounds import ROBUSTNESS_CHOICES
from ..core.cyclic import ResidualPredicate, tree_query_from_residuals
from ..core.lru import LRUCache
from ..core.parser import Contradiction, ParsedQuery, Placeholder, parse_query
from ..core.query import JoinQuery
from ..distributed.placement import PLACEMENT_CHOICES, ShardPlacement
from ..modes import ExecutionMode
from ..storage.partition import FLOAT_EXACT_MAX
from .diagnostics import (
    PlanVerificationError,
    VerificationResult,
    _Emitter,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..planner import PhysicalPlan, PlanSpec
    from ..storage.table import Catalog, Table

__all__ = [
    "CACHE_EXEMPT_KNOBS",
    "CACHE_KEYED_KNOBS",
    "PLAN_FINGERPRINT_COVERED",
    "PLAN_FINGERPRINT_EXEMPT",
    "PLAN_PASSES",
    "PlanVerifier",
    "SPEC_FINGERPRINT_COVERED",
    "SPEC_FINGERPRINT_EXEMPT",
    "VALIDATE_CHOICES",
    "verify_plan",
    "verify_spec",
]

#: accepted values of the ``validate`` knob
VALIDATE_CHOICES: Tuple[str, ...] = ("off", "basic", "full")

#: resolved execution paths a plan may carry (never the raw ``"auto"``)
_RESOLVED_EXECUTIONS: Tuple[str, ...] = ("vectorized", "interpreted")

#: resolved cyclic strategies a plan may carry (never the raw ``"auto"``)
_RESOLVED_CYCLIC_STRATEGIES: Tuple[str, ...] = ("tree_filter", "wcoj")

# ----------------------------------------------------------------------
# Fingerprint / cache-key coverage registries
# ----------------------------------------------------------------------
# The completeness contract: every field of PhysicalPlan / PlanSpec and
# every Planner knob must be *explicitly* classified as either covered
# by the fingerprint / plan-cache key or exempt (derived metadata that
# cannot change results given the covered fields).  A newly added field
# or knob lands in neither set, and the fingerprint passes fail loudly
# until its author decides which it is.

#: PhysicalPlan fields hashed by ``fingerprint()``
PLAN_FINGERPRINT_COVERED: frozenset = frozenset({
    "query", "order", "mode", "child_orders", "residuals",
    "num_shards", "execution", "catalog",
    "cyclic_strategy", "wcoj_variable_order", "robustness",
    "placement", "num_workers",
})
#: PhysicalPlan fields that are derived metadata: fully determined by
#: the covered fields plus the cost model, or purely observational
PLAN_FINGERPRINT_EXEMPT: frozenset = frozenset({
    "stats", "predicted_cost", "weights", "residual_selectivities",
    "diagnostics", "prefix_bounds", "worst_case_bound",
})

#: PlanSpec fields a rehydrated plan's fingerprint covers
SPEC_FINGERPRINT_COVERED: frozenset = frozenset({
    "root", "order", "mode", "child_orders", "residuals",
    "num_shards", "execution", "catalog_fingerprint",
    "cyclic_strategy", "wcoj_variable_order", "robustness",
    "placement", "num_workers",
})
SPEC_FINGERPRINT_EXEMPT: frozenset = frozenset({
    "stats", "predicted_cost", "weights", "residual_selectivities",
    "prefix_bounds", "worst_case_bound",
})

#: Planner knobs (``__init__`` + ``plan()`` parameters) that are part
#: of the service plan-cache key, mapped to the token that must appear
#: in ``QuerySession._plan_options``'s source (knobs keyed through a
#: *resolved* form — e.g. ``partitioning`` via ``resolved_shards`` —
#: use the resolved token)
CACHE_KEYED_KNOBS: dict[str, str] = {
    "mode": "mode",
    "optimizer": "optimizer",
    "driver": "driver",
    "stats": "stats",
    "flat_output": "flat_output",
    "eps": "eps",
    "weights": "weights",
    "idp_block_size": "idp_block_size",
    "beam_width": "beam_width",
    "partitioning": "resolved_shards",
    "planning_budget_ms": "budget_ms",
    "tree_search": "tree_search",
    "max_spanning_trees": "max_spanning_trees",
    "execution": "execution",
    # keyed raw, not resolved: "auto" resolves per query by cost
    "cyclic_execution": "cyclic_execution",
    # keyed raw: postures annotate (and may reorder) plans differently
    "robustness": "robustness",
    # rides along with robustness: decides whether the regret gate swaps
    "regret_factor": "regret_factor",
    # keyed through their resolved forms: "auto" worker counts resolve
    # per host, and plans are stamped with the resolution
    "placement": "resolved_placement",
    "num_workers": "resolved_workers",
}
#: Planner parameters that legitimately stay out of the cache key:
#: the query and catalog are keyed separately (normalized query key +
#: catalog fingerprint), ``stats_cache`` is pure memoization, and
#: ``validate`` never changes which plan is produced
CACHE_EXEMPT_KNOBS: frozenset = frozenset({
    "query", "catalog", "stats_cache", "validate",
})


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _undirected(rel_a: str, attr_a: str, rel_b: str, attr_b: str) -> tuple:
    """Canonical direction-independent key for an equality predicate."""
    if (rel_a, attr_a) <= (rel_b, attr_b):
        return (rel_a, attr_a, rel_b, attr_b)
    return (rel_b, attr_b, rel_a, attr_a)


def _tree_shape(root: str, edges: Iterable[Any]) -> tuple:
    """``(parent_of, children, relations)`` recomputed from raw edges.

    Deliberately ignores ``JoinQuery``'s internal maps so corrupted
    queries (built around the constructor's validation) are judged on
    the edge list alone.
    """
    parent_of: dict[str, str] = {}
    children: dict[str, list[str]] = {root: []}
    for edge in edges:
        parent_of.setdefault(edge.child, edge.parent)
        children.setdefault(edge.parent, []).append(edge.child)
        children.setdefault(edge.child, [])
    relations = {root} | set(parent_of)
    return parent_of, children, relations


def _check_tree(root: str, edges: list, emitter: _Emitter) -> bool:
    """PLAN001: the edge list forms a tree rooted at ``root``."""
    ok = True
    seen_children: set[str] = set()
    for edge in edges:
        if edge.child == root:
            emitter.error(
                "PLAN001",
                f"root {root!r} appears as the child of "
                f"{edge.parent!r}",
            )
            ok = False
        elif edge.child in seen_children:
            emitter.error(
                "PLAN001",
                f"relation {edge.child!r} has two parents",
            )
            ok = False
        seen_children.add(edge.child)
    _, children, relations = _tree_shape(root, edges)
    visited: set[str] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in visited:
            emitter.error(
                "PLAN001", f"cycle through relation {node!r}"
            )
            return False
        visited.add(node)
        stack.extend(children.get(node, ()))
    unreachable = relations - visited
    if unreachable:
        emitter.error(
            "PLAN001",
            f"relations not reachable from root {root!r}: "
            f"{sorted(unreachable)}",
        )
        ok = False
    return ok


def _check_order(root: str, edges: list, order: Iterable[str],
                 emitter: _Emitter) -> None:
    """PLAN002: precedence-respecting permutation of the non-root set."""
    parent_of, _, _ = _tree_shape(root, edges)
    order = list(order)
    if Counter(order) != Counter(parent_of.keys()):
        emitter.error(
            "PLAN002",
            f"order {order!r} is not a permutation of the non-root "
            f"relations {sorted(parent_of)}",
        )
        return
    placed = {root}
    for relation in order:
        parent = parent_of[relation]
        if parent not in placed:
            emitter.error(
                "PLAN002",
                f"{relation!r} is ordered before its parent {parent!r}",
            )
            return
        placed.add(relation)


def _check_child_orders(root: str, edges: list, child_orders: dict,
                        emitter: _Emitter) -> None:
    """PLAN003: child_orders consistent with the rooted tree."""
    _, children, relations = _tree_shape(root, edges)
    for relation, declared in (child_orders or {}).items():
        if relation not in relations:
            emitter.error(
                "PLAN003",
                f"child_orders names unknown relation {relation!r}",
            )
        elif Counter(declared) != Counter(children.get(relation, [])):
            emitter.error(
                "PLAN003",
                f"child_orders[{relation!r}] = {list(declared)!r} is "
                f"not a permutation of its children "
                f"{children.get(relation, [])!r}",
            )


def _dtype_kind(dtype: np.dtype) -> str:
    if np.issubdtype(dtype, np.bool_):
        return "bool"
    if np.issubdtype(dtype, np.integer):
        return "int"
    if np.issubdtype(dtype, np.floating):
        return "float"
    if (np.issubdtype(dtype, np.str_) or np.issubdtype(dtype, np.bytes_)
            or dtype == np.dtype(object)):
        return "str"
    return "other"


def _predicate_sides(plan: "PhysicalPlan") -> list:
    """All join predicates of the plan as (rel_a, attr_a, rel_b, attr_b)."""
    sides = [
        (edge.parent, edge.parent_attr, edge.child, edge.child_attr)
        for edge in plan.query.edges
    ]
    sides.extend(
        (res.relation_a, res.attr_a, res.relation_b, res.attr_b)
        for res in plan.residuals
    )
    return sides


# ----------------------------------------------------------------------
# Plan passes
# ----------------------------------------------------------------------


def _pass_structure(plan: "PhysicalPlan", source: Optional[ParsedQuery],
                    emitter: _Emitter, level: str) -> None:
    """Tree shape, join order, child_orders, resolved-knob validity."""
    edges = list(plan.query.edges)
    root = plan.query.root
    if _check_tree(root, edges, emitter):
        _check_order(root, edges, plan.order, emitter)
    _check_child_orders(root, edges, plan.child_orders or {}, emitter)
    if plan.residual_selectivities and \
            len(plan.residual_selectivities) != len(plan.residuals):
        emitter.error(
            "PLAN004",
            f"{len(plan.residual_selectivities)} residual "
            f"selectivities for {len(plan.residuals)} residuals",
        )
    try:
        ExecutionMode(plan.mode)
    except ValueError:
        emitter.error(
            "PLAN005", f"invalid execution mode {plan.mode!r}"
        )
    if plan.execution not in _RESOLVED_EXECUTIONS:
        emitter.error(
            "PLAN005",
            f"plan carries unresolved execution {plan.execution!r} "
            f"(expected one of {_RESOLVED_EXECUTIONS})",
        )
    if not isinstance(plan.num_shards, int) \
            or isinstance(plan.num_shards, bool) or plan.num_shards < 1:
        emitter.error(
            "PLAN005", f"invalid num_shards {plan.num_shards!r}"
        )


def _pass_predicates(plan: "PhysicalPlan", source: Optional[ParsedQuery],
                     emitter: _Emitter, level: str) -> None:
    """Predicate accounting against the parsed source query.

    Each parsed join predicate must appear exactly once — as a
    spanning-tree edge XOR a residual (multiset semantics: a predicate
    stated twice must be covered twice).  Skipped when the plan was
    built straight from a :class:`JoinQuery` (no parsed predicate list
    to account against).
    """
    if source is None:
        return
    want = Counter(
        _undirected(*predicate) for predicate in source.join_predicates
    )
    have = Counter(
        _undirected(*sides) for sides in _predicate_sides(plan)
    )
    for key, count in want.items():
        if have[key] < count:
            rel_a, attr_a, rel_b, attr_b = key
            emitter.error(
                "PRED001",
                f"parsed predicate {rel_a}.{attr_a} = {rel_b}.{attr_b} "
                f"is covered {have[key]}x by the plan (expected {count}x "
                f"as tree edge or residual)",
            )
    for key, count in have.items():
        rel_a, attr_a, rel_b, attr_b = key
        if key not in want:
            emitter.error(
                "PRED003",
                f"plan covers {rel_a}.{attr_a} = {rel_b}.{attr_b}, "
                f"which is not a predicate of the source query",
            )
        elif count > want[key]:
            emitter.error(
                "PRED002",
                f"predicate {rel_a}.{attr_a} = {rel_b}.{attr_b} is "
                f"covered {count}x by the plan (expected {want[key]}x): "
                f"duplicated as tree edge and/or residual",
            )


def _pass_wcoj(plan: "PhysicalPlan", source: Optional[ParsedQuery],
               emitter: _Emitter, level: str) -> None:
    """WCOJ001-003: cyclic-strategy validity and variable-order coverage.

    A wcoj plan replaces tree-probe + residual-filter evaluation with
    attribute-at-a-time elimination, so its variable order must cover
    *exactly* the (relation, attribute) endpoints of the plan's
    predicates — tree edges and residuals alike.  A member the order
    misses would leave its predicate unjoined; an invented member would
    make the operator probe a column no predicate constrains.
    """
    strategy = plan.cyclic_strategy
    if strategy not in _RESOLVED_CYCLIC_STRATEGIES:
        emitter.error(
            "WCOJ001",
            f"plan carries unresolved cyclic strategy {strategy!r} "
            f"(expected one of {_RESOLVED_CYCLIC_STRATEGIES})",
        )
        return
    if strategy == "tree_filter":
        if plan.wcoj_variable_order:
            emitter.error(
                "WCOJ001",
                "tree_filter plan carries a wcoj variable order "
                "(stale strategy resolution)",
            )
        return
    if not plan.residuals:
        emitter.error(
            "WCOJ003",
            "wcoj strategy on a plan without residuals: the tree "
            "pipelines are strictly cheaper on an acyclic plan",
        )
    if not plan.wcoj_variable_order:
        emitter.error(
            "WCOJ003",
            "wcoj plan carries an empty variable order",
        )
        return
    expected = set()
    for rel_a, attr_a, rel_b, attr_b in _predicate_sides(plan):
        expected.add((rel_a, attr_a))
        expected.add((rel_b, attr_b))
    ordered: list = []
    for variable in plan.wcoj_variable_order:
        ordered.extend(tuple(member) for member in variable)
    for relation, attr in sorted(expected - set(ordered)):
        emitter.error(
            "WCOJ002",
            f"predicate attribute {relation}.{attr} is missing from "
            f"the wcoj variable order — its predicate would go "
            f"unjoined",
        )
    for relation, attr in sorted(set(ordered) - expected):
        emitter.error(
            "WCOJ002",
            f"wcoj variable order names {relation}.{attr}, which no "
            f"plan predicate constrains",
        )
    if len(ordered) != len(set(ordered)):
        duplicated = sorted(
            member for member, count in Counter(ordered).items()
            if count > 1
        )
        emitter.error(
            "WCOJ002",
            f"wcoj variable order repeats members {duplicated!r}",
        )


def _bound_annotation_checks(robustness: Any, prefix_bounds: Any,
                             worst_case_bound: Any, order_length: int,
                             emitter: _Emitter, subject: str) -> None:
    """BOUND001-003 over either a plan's or a spec's bound annotations."""
    if robustness not in ROBUSTNESS_CHOICES:
        emitter.error(
            "BOUND001",
            f"{subject} carries invalid robustness posture "
            f"{robustness!r} (expected one of {ROBUSTNESS_CHOICES})",
        )
        return
    if robustness == "off":
        if prefix_bounds or worst_case_bound:
            emitter.error(
                "BOUND002",
                f"off-mode {subject} carries bound annotations "
                f"(stale robustness resolution)",
            )
        return
    if len(prefix_bounds) != order_length:
        emitter.error(
            "BOUND002",
            f"robust {subject} carries {len(prefix_bounds)} prefix "
            f"bounds for {order_length} join steps (one guaranteed "
            f"cardinality bound per step is required)",
        )
    for position, bound in enumerate(prefix_bounds, start=1):
        if not np.isfinite(bound) or bound < 0:
            emitter.error(
                "BOUND003",
                f"prefix bound {bound!r} at join {position} is not a "
                f"finite non-negative cardinality",
            )
    if not np.isfinite(worst_case_bound) or worst_case_bound < 0:
        emitter.error(
            "BOUND003",
            f"worst-case bound {worst_case_bound!r} is not a finite "
            f"non-negative cost",
        )


def _pass_bounds(plan: "PhysicalPlan", source: Optional[ParsedQuery],
                 emitter: _Emitter, level: str) -> None:
    """BOUND001-003: robustness posture and bound-annotation hygiene.

    A plan produced under ``robustness != "off"`` promises one
    guaranteed cardinality upper bound per join step (what the regret
    gate reasoned about and what ``explain()`` prints); an off-mode
    plan promises it carries none (annotations there would be stale —
    nothing maintained them).  Bounds are products of max-frequencies,
    so a negative or non-finite value can only mean corrupted
    derivation.
    """
    _bound_annotation_checks(
        plan.robustness, plan.prefix_bounds, plan.worst_case_bound,
        len(plan.order), emitter, "plan",
    )


def _pass_schema(plan: "PhysicalPlan", source: Optional[ParsedQuery],
                 emitter: _Emitter, level: str) -> None:
    """Column existence and key-dtype consistency of every predicate.

    ``basic`` checks metadata only (existence, dtype kinds, bool/int
    mixes); ``full`` additionally scans key columns for the exact-key
    hazards the engine's ``exact_equal`` semantics were built for —
    integer keys at or beyond 2**53 meeting float keys, and NaN in
    float keys.
    """
    catalog = plan.catalog
    missing: set[str] = set()
    for relation in plan.query.relations:
        if relation not in catalog:
            emitter.error(
                "SCHEMA001",
                f"relation {relation!r} missing from the plan catalog",
            )
            missing.add(relation)
    for rel_a, attr_a, rel_b, attr_b in _predicate_sides(plan):
        columns = []
        for relation, attr in ((rel_a, attr_a), (rel_b, attr_b)):
            if relation in missing:
                continue
            if relation not in catalog:
                emitter.error(
                    "SCHEMA001",
                    f"predicate references relation {relation!r} "
                    f"missing from the plan catalog",
                )
                missing.add(relation)
                continue
            table = catalog.table(relation)
            if attr not in table.columns:
                emitter.error(
                    "SCHEMA002",
                    f"{relation!r} has no column {attr!r} "
                    f"(available: {table.column_names})",
                )
                continue
            columns.append((relation, attr, table.column(attr)))
        if len(columns) != 2:
            continue
        (rel_x, attr_x, col_x), (rel_y, attr_y, col_y) = columns
        kinds = {_dtype_kind(col_x.dtype), _dtype_kind(col_y.dtype)}
        label = f"{rel_x}.{attr_x} = {rel_y}.{attr_y}"
        if "str" in kinds and kinds & {"int", "float", "bool"}:
            emitter.warning(
                "SCHEMA003",
                f"join {label} compares string with numeric keys and "
                f"can never match",
            )
            continue
        if "bool" in kinds and kinds & {"int", "float"}:
            emitter.warning(
                "KEY003",
                f"join {label} mixes bool and numeric keys",
            )
        if level != "full":
            continue
        if kinds == {"int", "float"}:
            for col in (col_x, col_y):
                if _dtype_kind(col.dtype) == "int" and len(col) and \
                        max(-int(col.min()), int(col.max())) \
                        >= FLOAT_EXACT_MAX:
                    emitter.warning(
                        "KEY001",
                        f"join {label}: integer keys reach "
                        f"|value| >= 2**53, beyond float64's exact "
                        f"range",
                    )
                    break
        for relation, attr, col in columns:
            if _dtype_kind(col.dtype) == "float" and len(col) and \
                    bool(np.isnan(col).any()):
                emitter.warning(
                    "KEY002",
                    f"float key {relation}.{attr} contains NaN "
                    f"(NaN never matches; those rows drop out)",
                )


def _pass_selections(plan: "PhysicalPlan", source: Optional[ParsedQuery],
                     emitter: _Emitter, level: str) -> None:
    """PRED004 (full): every constant selection is fully pushed down.

    The plan's derived catalog must contain only rows matching the
    parsed selections; a :class:`Contradiction` literal must have
    folded the relation to empty.
    """
    if source is None:
        return
    catalog = plan.catalog
    for alias, predicate in source.selections.items():
        if alias not in catalog:
            continue  # SCHEMA001 already emitted by the schema pass
        table = catalog.table(alias)
        for column, literal in predicate.items():
            if isinstance(literal, Placeholder):
                continue  # unbound template; nothing to audit
            if isinstance(literal, Contradiction):
                if len(table):
                    emitter.error(
                        "PRED004",
                        f"contradictory selection on {alias}.{column} "
                        f"not folded: derived relation still holds "
                        f"{len(table)} row(s)",
                    )
                continue
            if column not in table.columns:
                emitter.error(
                    "SCHEMA002",
                    f"selection references missing column "
                    f"{alias}.{column}",
                )
                continue
            if not bool(np.all(table.column(column) == literal)):
                emitter.error(
                    "PRED004",
                    f"selection {alias}.{column} = {literal!r} not "
                    f"fully pushed down: derived relation holds "
                    f"non-matching rows",
                )


def _pass_shards(plan: "PhysicalPlan", source: Optional[ParsedQuery],
                 emitter: _Emitter, level: str) -> None:
    """SHARD001/002: plan shard fan-out vs. actual catalog layout."""
    catalog = plan.catalog
    shard_counts = {
        relation: getattr(catalog.table(relation), "num_shards", 1)
        for relation in plan.query.relations
        if relation in catalog
    }
    partitioned = {
        relation: count for relation, count in shard_counts.items()
        if count > 1
    }
    if plan.num_shards > 1:
        if not partitioned:
            emitter.error(
                "SHARD001",
                f"plan claims num_shards={plan.num_shards} but no "
                f"relation in its catalog is partitioned",
            )
        else:
            for relation, count in sorted(partitioned.items()):
                if count != plan.num_shards:
                    emitter.error(
                        "SHARD001",
                        f"{relation!r} is partitioned into {count} "
                        f"shard(s) but the plan claims "
                        f"{plan.num_shards}",
                    )
    elif partitioned:
        emitter.warning(
            "SHARD002",
            f"plan claims an unpartitioned layout but "
            f"{sorted(partitioned)} are partitioned (pre-partitioned "
            f"catalog?)",
        )


def _pass_row_ids(plan: "PhysicalPlan", source: Optional[ParsedQuery],
                  emitter: _Emitter, level: str) -> None:
    """ROWID001 (full): base-row-id mappings are bijections.

    Every partitioned relation's physical-to-base permutation must hit
    each base row exactly once — a corrupted mapping silently reports
    wrong row ids from otherwise-correct joins.
    """
    catalog = plan.catalog
    for relation in plan.query.relations:
        if relation not in catalog:
            continue
        table = catalog.table(relation)
        base = table.base_row_ids()
        if base is None:
            continue
        base = np.asarray(base)
        if len(base) != len(table) or not np.array_equal(
                np.sort(base), np.arange(len(table), dtype=base.dtype)):
            emitter.error(
                "ROWID001",
                f"{relation!r}: base-row-id mapping is not a "
                f"permutation of range({len(table)})",
            )


class _FingerprintProbe:
    """Stand-in catalog whose fingerprint no real catalog produces."""

    @staticmethod
    def fingerprint() -> str:
        return "__planlint_catalog_probe__"


def _placement_knob_checks(placement: Any, num_workers: Any,
                           emitter: _Emitter, subject: str) -> bool:
    """PLACE002 over either a plan's or a spec's placement knobs."""
    if placement not in PLACEMENT_CHOICES:
        emitter.error(
            "PLACE002",
            f"{subject} carries invalid placement {placement!r} "
            f"(expected one of {PLACEMENT_CHOICES})",
        )
        return False
    if not isinstance(num_workers, int) or isinstance(num_workers, bool) \
            or num_workers < 0:
        emitter.error(
            "PLACE002",
            f"{subject} carries invalid num_workers {num_workers!r} "
            f"(expected a non-negative int)",
        )
        return False
    if placement == "local" and num_workers != 0:
        emitter.error(
            "PLACE002",
            f"local {subject} carries num_workers={num_workers} "
            f"(stale worker-count resolution)",
        )
        return False
    if placement == "distributed" and num_workers < 1:
        emitter.error(
            "PLACE002",
            f"distributed {subject} carries num_workers={num_workers} "
            f"(an unresolved auto count — plans must be stamped with "
            f"the resolution)",
        )
        return False
    return True


def _pass_placement(plan: "PhysicalPlan", source: Optional[ParsedQuery],
                    emitter: _Emitter, level: str) -> None:
    """PLACE001/PLACE002: placement knobs and shard-coverage hygiene.

    A distributed plan must carry a resolved worker count, and the
    placements the pool would derive from it — rendezvous over the
    plan's shards and the striped fallback — must partition their
    shard ids (every shard owned by exactly one worker; a violation
    would execute a shard twice or not at all).  Re-deriving here is
    sound because placement is deterministic in (num_shards,
    num_workers): the pool and this pass see the same assignment.
    """
    placement = getattr(plan, "placement", "local")
    num_workers = getattr(plan, "num_workers", 0)
    if not _placement_knob_checks(placement, num_workers, emitter, "plan"):
        return
    if placement != "distributed":
        return
    candidates = [ShardPlacement.striped(num_workers)]
    if isinstance(plan.num_shards, int) \
            and not isinstance(plan.num_shards, bool) \
            and plan.num_shards >= 1:
        candidates.append(ShardPlacement.rendezvous(
            plan.num_shards, tuple(range(num_workers))
        ))
    for candidate in candidates:
        try:
            candidate.validate()
        except ValueError as exc:
            emitter.error(
                "PLACE001",
                f"{candidate.routing} placement over "
                f"{candidate.num_shards} shard(s) and "
                f"{num_workers} worker(s) does not partition the "
                f"shards: {exc}",
            )


def _pass_fingerprint_registry(plan: "PhysicalPlan",
                               source: Optional[ParsedQuery],
                               emitter: _Emitter, level: str) -> None:
    """FP001/FP003: every plan field and planner knob is classified.

    Introspects the live dataclass fields and ``Planner`` signatures so
    a knob added by a future PR that reaches neither the fingerprint
    registry nor the cache-key registry fails verification loudly —
    the under-keyed-cache failure mode this subsystem exists to block.
    """
    from ..planner import Planner

    plan_fields = {f.name for f in dataclasses.fields(plan)}
    for name in sorted(plan_fields - PLAN_FINGERPRINT_COVERED
                       - PLAN_FINGERPRINT_EXEMPT):
        emitter.error(
            "FP001",
            f"PhysicalPlan field {name!r} is neither covered by "
            f"fingerprint() nor registered as exempt "
            f"(PLAN_FINGERPRINT_COVERED / PLAN_FINGERPRINT_EXEMPT)",
        )
    for name in sorted((PLAN_FINGERPRINT_COVERED
                        | PLAN_FINGERPRINT_EXEMPT) - plan_fields):
        emitter.error(
            "FP001",
            f"fingerprint registry names {name!r}, which is not a "
            f"PhysicalPlan field (stale registry entry)",
        )

    knobs: set[str] = set()
    for func in (Planner.__init__, Planner.plan):
        knobs.update(inspect.signature(func).parameters)
    knobs.discard("self")
    for name in sorted(knobs - set(CACHE_KEYED_KNOBS)
                       - CACHE_EXEMPT_KNOBS):
        emitter.error(
            "FP003",
            f"Planner knob {name!r} is neither in the plan-cache-key "
            f"registry (CACHE_KEYED_KNOBS) nor registered as exempt "
            f"(CACHE_EXEMPT_KNOBS)",
        )
    try:
        from ..service.session import QuerySession
        options_source = inspect.getsource(QuerySession._plan_options)
    except (ImportError, OSError, TypeError):  # pragma: no cover
        options_source = None
    if options_source is not None:
        for knob in sorted(set(CACHE_KEYED_KNOBS) & knobs):
            token = CACHE_KEYED_KNOBS[knob]
            if token not in options_source:
                emitter.error(
                    "FP003",
                    f"Planner knob {knob!r} (token {token!r}) does "
                    f"not reach QuerySession._plan_options — the "
                    f"plan cache would serve across {knob!r} changes",
                )


def _pass_fingerprint_sensitivity(plan: "PhysicalPlan",
                                  source: Optional[ParsedQuery],
                                  emitter: _Emitter, level: str) -> None:
    """FP004 (full): fingerprint() reacts to every semantic field.

    Behavioral probe: perturb each covered field on a copy and demand a
    different digest.  Catches a fingerprint that silently stopped
    hashing a component (e.g. a refactor dropping ``execution`` from
    the payload) — the registry pass alone cannot see that.
    """
    try:
        baseline = plan.fingerprint()
    except Exception:  # structurally broken; other passes report it
        return

    def _perturbations() -> Iterable[tuple]:
        try:
            yield "mode", next(
                mode for mode in ExecutionMode.all_modes()
                if mode is not ExecutionMode(plan.mode)
            )
        except ValueError:
            pass
        yield "execution", (
            "interpreted" if plan.execution != "interpreted"
            else "vectorized"
        )
        if isinstance(plan.num_shards, int) \
                and not isinstance(plan.num_shards, bool):
            yield "num_shards", plan.num_shards + 1
        if len(plan.order) >= 2:
            yield "order", list(reversed(plan.order))
        yield "child_orders", {"__planlint_probe__": ("__x__",)}
        yield "residuals", tuple(plan.residuals) + (
            ResidualPredicate("__planlint__", "a", "__planlint__", "b"),
        )
        if plan.query.num_relations >= 2:
            yield "query", plan.query.rerooted(plan.query.edges[0].child)
        yield "cyclic_strategy", (
            "wcoj" if plan.cyclic_strategy != "wcoj" else "tree_filter"
        )
        yield "wcoj_variable_order", tuple(plan.wcoj_variable_order) + (
            (("__planlint__", "a"),),
        )
        yield "robustness", (
            "bounded" if plan.robustness != "bounded" else "off"
        )
        yield "placement", (
            "distributed" if plan.placement != "distributed" else "local"
        )
        if isinstance(plan.num_workers, int) \
                and not isinstance(plan.num_workers, bool):
            yield "num_workers", plan.num_workers + 1
        yield "catalog", _FingerprintProbe()

    for field_name, value in _perturbations():
        try:
            mutated = dataclasses.replace(plan, **{field_name: value})
            digest = mutated.fingerprint()
        except Exception:
            continue  # unbuildable perturbation proves nothing
        if digest == baseline:
            emitter.error(
                "FP004",
                f"fingerprint() is insensitive to field "
                f"{field_name!r}: perturbing it left the digest "
                f"unchanged",
            )


#: the plan passes, in execution order: (name, function, minimum level)
PLAN_PASSES: Tuple[Tuple[str, Callable, str], ...] = (
    ("structure", _pass_structure, "basic"),
    ("predicates", _pass_predicates, "basic"),
    ("wcoj", _pass_wcoj, "basic"),
    ("bounds", _pass_bounds, "basic"),
    ("placement", _pass_placement, "basic"),
    ("schema", _pass_schema, "basic"),
    ("shards", _pass_shards, "basic"),
    ("fingerprint-registry", _pass_fingerprint_registry, "basic"),
    ("selections", _pass_selections, "full"),
    ("row-ids", _pass_row_ids, "full"),
    ("fingerprint-sensitivity", _pass_fingerprint_sensitivity, "full"),
)


def verify_plan(plan: "PhysicalPlan",
                source: Optional[ParsedQuery | str] = None,
                level: str = "full") -> VerificationResult:
    """Run every applicable pass over ``plan``; nothing executes.

    ``source`` is the parsed query the plan was built from (SQL text is
    parsed here); without it the predicate-accounting and
    selection-push-down passes have nothing to compare against and are
    skipped.  ``level="basic"`` runs the structural/metadata passes
    only; ``"full"`` adds the O(rows) scans and the
    fingerprint-sensitivity probe.
    """
    if level not in ("basic", "full"):
        raise ValueError(
            f'level must be "basic" or "full", got {level!r}'
        )
    if isinstance(source, str):
        source = parse_query(source)
    try:
        fingerprint: Optional[str] = plan.fingerprint()
    except Exception:
        fingerprint = None  # structural passes will say why
    diagnostics = []
    for name, pass_func, min_level in PLAN_PASSES:
        if min_level == "full" and level != "full":
            continue
        emitter = _Emitter(pass_name=name, plan_fingerprint=fingerprint)
        pass_func(plan, source, emitter, level)
        diagnostics.extend(emitter.diagnostics)
    return VerificationResult(
        tuple(diagnostics), level=level, plan_fingerprint=fingerprint
    )


# ----------------------------------------------------------------------
# PlanSpec verification
# ----------------------------------------------------------------------


def verify_spec(spec: "PlanSpec",
                query: Optional[ParsedQuery | JoinQuery | str] = None,
                catalog: Optional["Catalog"] = None) -> VerificationResult:
    """Statically validate a shipped :class:`PlanSpec` before rehydration.

    Checks the resolved knobs, the field-coverage registry, staleness
    against ``catalog`` (when given), and — when the source ``query``
    is given — that the spec's residuals identify a spanning tree of
    that query and that order / child_orders are consistent with it.
    Specs carry no data, so there is no basic/full split.
    """
    if isinstance(query, str):
        query = parse_query(query)
    emitter = _Emitter(pass_name="spec")
    spec_fields = {f.name for f in dataclasses.fields(spec)}
    for name in sorted(spec_fields - SPEC_FINGERPRINT_COVERED
                       - SPEC_FINGERPRINT_EXEMPT):
        emitter.error(
            "FP002",
            f"PlanSpec field {name!r} is neither covered by the "
            f"rehydrated fingerprint nor registered as exempt",
        )
    for name in sorted((SPEC_FINGERPRINT_COVERED
                        | SPEC_FINGERPRINT_EXEMPT) - spec_fields):
        emitter.error(
            "FP002",
            f"spec registry names {name!r}, which is not a PlanSpec "
            f"field (stale registry entry)",
        )
    try:
        ExecutionMode(spec.mode)
    except ValueError:
        emitter.error(
            "SPEC001", f"invalid execution mode {spec.mode!r}"
        )
    if spec.execution not in _RESOLVED_EXECUTIONS:
        emitter.error(
            "SPEC002",
            f"spec carries unresolved execution {spec.execution!r} "
            f"(expected one of {_RESOLVED_EXECUTIONS})",
        )
    spec_strategy = getattr(spec, "cyclic_strategy", "tree_filter")
    if spec_strategy not in _RESOLVED_CYCLIC_STRATEGIES:
        emitter.error(
            "WCOJ001",
            f"spec carries unresolved cyclic strategy "
            f"{spec_strategy!r} "
            f"(expected one of {_RESOLVED_CYCLIC_STRATEGIES})",
        )
    elif spec_strategy == "tree_filter" \
            and getattr(spec, "wcoj_variable_order", ()):
        emitter.error(
            "WCOJ001",
            "tree_filter spec carries a wcoj variable order "
            "(stale strategy resolution)",
        )
    elif spec_strategy == "wcoj" \
            and not getattr(spec, "wcoj_variable_order", ()):
        emitter.error(
            "WCOJ003",
            "wcoj spec carries an empty variable order",
        )
    _bound_annotation_checks(
        getattr(spec, "robustness", "off"),
        tuple(getattr(spec, "prefix_bounds", ())),
        getattr(spec, "worst_case_bound", 0.0),
        len(spec.order), emitter, "spec",
    )
    _placement_knob_checks(
        getattr(spec, "placement", "local"),
        getattr(spec, "num_workers", 0),
        emitter, "spec",
    )
    if not isinstance(spec.num_shards, int) \
            or isinstance(spec.num_shards, bool) or spec.num_shards < 1:
        emitter.error(
            "SPEC003", f"invalid num_shards {spec.num_shards!r}"
        )
    if catalog is not None and \
            spec.catalog_fingerprint != catalog.fingerprint():
        emitter.error(
            "SPEC004",
            "stale PlanSpec: catalog content changed since planning "
            "(fingerprint mismatch)",
        )
    tree: Optional[JoinQuery] = None
    if isinstance(query, JoinQuery):
        tree = query if query.root == spec.root \
            else query.rerooted(spec.root)
    elif isinstance(query, ParsedQuery):
        try:
            if spec.residuals:
                tree = tree_query_from_residuals(
                    query, spec.residuals, spec.root
                )
            else:
                tree = query.to_join_query(driver=spec.root)
        except (KeyError, ValueError) as exc:
            emitter.error(
                "SPEC005",
                f"spec does not identify a spanning tree of the "
                f"query: {exc}",
            )
    if tree is not None:
        edges = list(tree.edges)
        if _check_tree(spec.root, edges, emitter):
            _check_order(spec.root, edges, spec.order, emitter)
        _check_child_orders(
            spec.root, edges, dict(spec.child_orders or ()), emitter
        )
    return VerificationResult(
        tuple(emitter.diagnostics), level="basic", plan_fingerprint=None
    )


# ----------------------------------------------------------------------
# Cached front end
# ----------------------------------------------------------------------


def _source_token(source: Optional[ParsedQuery]) -> Any:
    """A hashable identity for the source query (verdict-cache key)."""
    if source is None:
        return None
    try:
        from ..service.plancache import normalized_query_key
        return normalized_query_key(source)
    except Exception:  # pragma: no cover - unparseable fallback
        return repr(source)


class PlanVerifier:
    """Verdict-cached plan verification, keyed per fingerprint.

    The fingerprint covers everything the passes read (tree, order,
    knobs, catalog content), so one verdict per (fingerprint, source
    structure, level) is sound: a rehydrated spec fingerprints
    identically to the plan it snapshotted and re-verifies as a cache
    hit — the warm path pays a dictionary lookup, nothing more.
    """

    def __init__(self, cache_size: int = 256):
        self._verdicts = LRUCache(cache_size)

    def verify_plan(self, plan: "PhysicalPlan",
                    source: Optional[ParsedQuery | str] = None,
                    level: str = "full") -> VerificationResult:
        """Cached :func:`verify_plan`; raises on error findings."""
        if isinstance(source, str):
            source = parse_query(source)
        try:
            fingerprint: Optional[str] = plan.fingerprint()
        except Exception:
            fingerprint = None
        key = None
        if fingerprint is not None:
            key = (fingerprint, level, _source_token(source))
            cached = self._verdicts.get(key)
            if cached is not None:
                return cached.raise_if_errors()
        result = verify_plan(plan, source=source, level=level)
        if key is not None:
            self._verdicts.put(key, result)
        return result.raise_if_errors()

    def verify_spec(self, spec: "PlanSpec",
                    query: Optional[ParsedQuery | JoinQuery | str] = None,
                    catalog: Optional["Catalog"] = None,
                    ) -> VerificationResult:
        """Uncached :func:`verify_spec` (specs are verified pre-rehydration,
        once per arrival); raises on error findings."""
        return verify_spec(
            spec, query=query, catalog=catalog
        ).raise_if_errors()

    def cache_info(self) -> dict:
        return {"size": len(self._verdicts)}


# re-exported for callers that catch the verification failure
_ = PlanVerificationError
