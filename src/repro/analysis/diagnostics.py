"""Structured diagnostics for the static plan/spec verifier.

Every check in :mod:`repro.analysis.planlint` reports its findings as
:class:`Diagnostic` values — a stable ``code`` (the contract tests and
callers match on), a :class:`Severity`, the fingerprint of the plan the
finding is about, and a human-readable message.  A verification run
returns a :class:`VerificationResult` holding all of them;
``validate="basic"|"full"`` planning raises
:class:`PlanVerificationError` when any error-severity diagnostic is
present, and surfaces the full list on
:class:`~repro.service.QueryReport.diagnostics` otherwise.

The code registry below (:data:`DIAGNOSTIC_CODES`) is the single source
of truth for which codes exist; emitting an unregistered code is itself
a bug (the :class:`Diagnostic` constructor rejects it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional, Tuple

__all__ = [
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "PlanVerificationError",
    "Severity",
    "VerificationResult",
]


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings make a plan unservable (``validate`` raises);
    ``WARNING`` findings flag hazards the engine is known to handle but
    that deserve operator attention; ``INFO`` is purely informational.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: every diagnostic code the verifier can emit, with a one-line
#: description.  Codes are stable across releases — tests and callers
#: match on them — so entries may be added but never renamed.
DIAGNOSTIC_CODES: dict[str, str] = {
    # --- plan structure -------------------------------------------------
    "PLAN001": "join tree malformed: duplicate child, root as child, "
               "cycle, or relation unreachable from the root",
    "PLAN002": "join order is not a precedence-respecting permutation "
               "of the non-root relations",
    "PLAN003": "semi-join child_orders inconsistent with the rooted tree "
               "(unknown relation or not a permutation of its children)",
    "PLAN004": "residual_selectivities not aligned with residuals",
    "PLAN005": "invalid resolved knob on the plan (mode / execution / "
               "num_shards)",
    # --- predicate accounting (needs the parsed source query) ----------
    "PRED001": "parsed join predicate covered by neither a spanning-tree "
               "edge nor a residual (dropped predicate)",
    "PRED002": "parsed join predicate covered more than once "
               "(duplicate tree edge / edge duplicated as residual)",
    "PRED003": "tree edge or residual matches no parsed join predicate "
               "(invented predicate)",
    "PRED004": "constant selection not fully pushed down into the "
               "plan's derived catalog (or Contradiction not folded to "
               "an empty relation)",
    # --- schema / key-dtype consistency ---------------------------------
    "SCHEMA001": "plan references a relation missing from its catalog",
    "SCHEMA002": "join or residual predicate references a column missing "
                 "from the relation's schema",
    "SCHEMA003": "join between incomparable dtypes (string vs numeric): "
                 "the predicate can never match",
    "KEY001": "int/float join with integer keys at or beyond 2**53: "
              "float64 cannot represent them exactly (engine compares "
              "exactly, but check the data model)",
    "KEY002": "float join keys contain NaN: NaN never matches, those "
              "rows silently drop out",
    "KEY003": "bool/numeric key mix on a join predicate",
    # --- base-row-id space / partitioning -------------------------------
    "ROWID001": "partitioned table's base-row-id mapping is not a "
                "permutation of its row range",
    "SHARD001": "plan num_shards disagrees with the partitioned layout "
                "of its catalog",
    "SHARD002": "plan claims an unpartitioned layout but its catalog "
                "holds partitioned relations",
    # --- fingerprint / cache-key completeness ---------------------------
    "FP001": "PhysicalPlan field not accounted for in the fingerprint "
             "coverage registry (new knob missing from fingerprint())",
    "FP002": "PlanSpec field not accounted for in the spec coverage "
             "registry",
    "FP003": "Planner knob not accounted for in the plan-cache-key "
             "registry (new knob missing from the cache key)",
    "FP004": "fingerprint() is insensitive to a semantic plan field "
             "(stripped or shadowed fingerprint component)",
    # --- PlanSpec-level checks ------------------------------------------
    "SPEC001": "PlanSpec carries an invalid execution mode",
    "SPEC002": "PlanSpec carries an invalid resolved execution path",
    "SPEC003": "PlanSpec carries an invalid shard count",
    "SPEC004": "PlanSpec is stale: catalog content fingerprint mismatch",
    "SPEC005": "PlanSpec residuals do not identify a spanning tree of "
               "the query (tree reconstruction failed)",
    # --- worst-case-optimal (wcoj) strategy ------------------------------
    "WCOJ001": "invalid cyclic strategy on the plan or spec (unknown "
               "value, or a tree_filter plan carrying a wcoj variable "
               "order)",
    "WCOJ002": "wcoj variable order does not cover exactly the "
               "predicate attributes (a residual attribute would go "
               "unjoined, or the order names an unknown member)",
    "WCOJ003": "wcoj strategy on a plan without residuals, or with an "
               "empty variable order (nothing to eliminate)",
    # --- pessimistic bounds / robustness ---------------------------------
    "BOUND001": "invalid robustness posture on the plan or spec "
                "(unknown value)",
    "BOUND002": "bound-annotation completeness violated: a robust plan "
                "must carry one prefix bound per join step, an off-mode "
                "plan must carry none",
    "BOUND003": "malformed bound annotation: a prefix cardinality bound "
                "or the worst-case bound is negative or non-finite",
    # --- distributed placement -------------------------------------------
    "PLACE001": "shard placement does not cover every shard exactly "
                "once (a shard would execute twice or not at all)",
    "PLACE002": "invalid placement knobs on the plan or spec (unknown "
                "placement value, or a worker count inconsistent with "
                "it)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the plan/spec verifier."""

    code: str
    severity: Severity
    message: str
    #: fingerprint of the plan the finding is about (``None`` for
    #: spec-level findings, which have no resolved catalog to pin)
    plan_fingerprint: Optional[str] = None
    #: name of the verifier pass that emitted the finding
    pass_name: str = ""

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(
                f"unregistered diagnostic code {self.code!r}; add it to "
                f"repro.analysis.diagnostics.DIAGNOSTIC_CODES"
            )

    def __str__(self) -> str:
        return f"{self.code} [{self.severity}] {self.message}"


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one ``verify_plan`` / ``verify_spec`` run."""

    diagnostics: Tuple[Diagnostic, ...]
    #: the validation level the run executed ("basic" / "full")
    level: str = "full"
    #: fingerprint of the verified plan (``None`` for specs)
    plan_fingerprint: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.WARNING)

    def codes(self) -> Tuple[str, ...]:
        """All emitted codes, in emission order (with duplicates)."""
        return tuple(d.code for d in self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def raise_if_errors(self) -> "VerificationResult":
        """Raise :class:`PlanVerificationError` on any error finding."""
        if not self.ok:
            raise PlanVerificationError(self)
        return self

    def __repr__(self) -> str:
        return (
            f"VerificationResult(level={self.level!r}, "
            f"errors={len(self.errors)}, warnings={len(self.warnings)}, "
            f"total={len(self.diagnostics)})"
        )


class PlanVerificationError(ValueError):
    """A plan or spec failed static verification.

    Subclasses :class:`ValueError` so service-layer failure handling
    (which records planning ``ValueError`` s on the
    :class:`~repro.service.QueryReport` instead of raising) treats a
    rejected plan like any other planning failure.
    """

    def __init__(self, result: VerificationResult):
        self.result = result
        lines = [str(d) for d in result.errors]
        super().__init__(
            "plan failed static verification "
            f"({len(result.errors)} error(s)):\n  " + "\n  ".join(lines)
        )


@dataclass
class _Emitter:
    """Mutable accumulator the verifier passes write into."""

    pass_name: str
    plan_fingerprint: Optional[str] = None
    diagnostics: list = field(default_factory=list)

    def emit(self, code: str, severity: Severity, message: str) -> None:
        self.diagnostics.append(Diagnostic(
            code=code,
            severity=severity,
            message=message,
            plan_fingerprint=self.plan_fingerprint,
            pass_name=self.pass_name,
        ))

    def error(self, code: str, message: str) -> None:
        self.emit(code, Severity.ERROR, message)

    def warning(self, code: str, message: str) -> None:
        self.emit(code, Severity.WARNING, message)

    def info(self, code: str, message: str) -> None:
        self.emit(code, Severity.INFO, message)
