"""Static analysis for the reproduction: plan/spec verification.

Two consumers:

- the planner/service layers, through the ``validate`` knob
  (``Planner.plan(validate="basic"|"full")``,
  :class:`~repro.service.QuerySession`,
  :class:`~repro.service.AsyncQueryService`), which verify cold plans
  and rehydrated :class:`~repro.planner.PlanSpec` s and surface
  :class:`Diagnostic` s on :class:`~repro.service.QueryReport`;
- tests and tooling, through :func:`verify_plan` / :func:`verify_spec`
  directly.

The repo-invariant *linter* (AST rules run in CI) lives outside the
package at ``tools/check_invariants.py`` — it checks the source tree,
not runtime objects, and must stay importable without the package.
"""

from .diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    PlanVerificationError,
    Severity,
    VerificationResult,
)
from .planlint import (
    CACHE_EXEMPT_KNOBS,
    CACHE_KEYED_KNOBS,
    PLAN_FINGERPRINT_COVERED,
    PLAN_FINGERPRINT_EXEMPT,
    PLAN_PASSES,
    PlanVerifier,
    SPEC_FINGERPRINT_COVERED,
    SPEC_FINGERPRINT_EXEMPT,
    VALIDATE_CHOICES,
    verify_plan,
    verify_spec,
)

__all__ = [
    "CACHE_EXEMPT_KNOBS",
    "CACHE_KEYED_KNOBS",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "PLAN_FINGERPRINT_COVERED",
    "PLAN_FINGERPRINT_EXEMPT",
    "PLAN_PASSES",
    "PlanVerificationError",
    "PlanVerifier",
    "SPEC_FINGERPRINT_COVERED",
    "SPEC_FINGERPRINT_EXEMPT",
    "Severity",
    "VALIDATE_CHOICES",
    "VerificationResult",
    "verify_plan",
    "verify_spec",
]
