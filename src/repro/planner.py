"""End-to-end planner: SQL (or JoinQuery) in, executable plan out.

Ties the whole system together the way a downstream user would consume
it:

1. parse the query (:mod:`repro.core.parser`) and push constant
   selections down to the relations (Section 2.1's assumption);
2. derive statistics — exact (:func:`repro.core.stats.stats_from_data`)
   or via correlated sampling (Section 3.2);
3. pick the driver, the join order (Algorithm 1 or a greedy heuristic)
   and the execution strategy (the cost model prices all six; the
   paper: "our cost model ... can be used for making optimization
   decisions among the competing approaches");
4. return a :class:`PhysicalPlan` that executes on the engine and can
   ``explain()`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .core.costmodel import CostMemo, CostWeights, plan_cost
from .core.optimizer import (
    beam_order,
    choose_optimizer,
    exhaustive_optimal,
    greedy_order,
    idp_order,
    optimize_sj,
)
from .core.parser import Contradiction, ParsedQuery, parse_query
from .core.query import JoinQuery
from .core.stats import EdgeStats, QueryStats, StatsCache, stats_from_data
from .engine.executor import execute
from .modes import ExecutionMode
from .storage.table import Catalog, Table

__all__ = ["PhysicalPlan", "Planner", "filtered_table",
           "push_down_selections"]


def filtered_table(table, alias, predicate):
    """A :class:`Table` named ``alias`` holding the rows matching
    ``predicate`` ({column: literal} constant selections).

    A :class:`~repro.core.parser.Contradiction` literal (conjunctive
    selections requiring distinct constants on one column) matches no
    row, so the derived relation is empty and the executor
    short-circuits to an empty join result.
    """
    if predicate:
        mask = np.ones(len(table), dtype=bool)
        for column, literal in predicate.items():
            if isinstance(literal, Contradiction):
                mask[:] = False
                break
            mask &= table.column(column) == literal
        columns = {
            name: values[mask] for name, values in table.columns.items()
        }
    else:
        columns = dict(table.columns)
    return Table(alias, columns)


def push_down_selections(catalog, parsed):
    """Materialize constant selections into a derived catalog.

    Returns a new :class:`Catalog` where each selected relation is
    replaced by its filtered rows (registered under the query alias, so
    aliased self-references of the same base table stay distinct).
    """
    derived = Catalog()
    for alias, table_name in parsed.relations.items():
        table = catalog.table(table_name)
        predicate = parsed.selections.get(alias, {})
        derived.add(filtered_table(table, alias, predicate))
    return derived


@dataclass
class PhysicalPlan:
    """An optimized, executable plan."""

    catalog: Catalog
    query: JoinQuery
    order: list
    mode: ExecutionMode
    stats: QueryStats
    predicted_cost: float
    child_orders: dict = field(default_factory=dict)
    weights: CostWeights = field(default_factory=CostWeights)

    def execute(self, flat_output=True, collect_output=False,
                max_intermediate_tuples=50_000_000):
        """Run the plan on the engine."""
        return execute(
            self.catalog,
            self.query,
            self.order,
            self.mode,
            flat_output=flat_output,
            collect_output=collect_output,
            child_orders=self.child_orders or None,
            max_intermediate_tuples=max_intermediate_tuples,
        )

    def explain(self):
        """A human-readable plan tree with per-join statistics."""
        from .core.costmodel import com_probes_per_join, std_probes_per_join

        if self.mode.factorized:
            probes = com_probes_per_join(self.query, self.stats, self.order)
        else:
            probes = std_probes_per_join(self.query, self.stats, self.order)
        lines = [
            f"PhysicalPlan mode={self.mode} driver={self.query.root} "
            f"predicted_cost={self.predicted_cost:,.0f}",
            f"  SCAN {self.query.root} "
            f"(N={self.stats.driver_size:,.0f})",
        ]
        for position, relation in enumerate(self.order, start=1):
            edge = self.query.edge_to(relation)
            stats = self.stats.stats(relation)
            lines.append(
                f"  {position}. JOIN {relation} ON "
                f"{edge.parent}.{edge.parent_attr} = "
                f"{edge.child}.{edge.child_attr}  "
                f"[m={stats.m:.3f} fo={stats.fo:.2f} "
                f"est_probes={probes[relation]:,.0f}]"
            )
        if self.child_orders:
            lines.append(f"  semi-join child orders: {self.child_orders}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"PhysicalPlan(mode={self.mode}, driver={self.query.root!r}, "
            f"order={self.order}, cost={self.predicted_cost:.4g})"
        )


class Planner:
    """Query planner over a catalog.

    Parameters
    ----------
    catalog:
        The :class:`~repro.storage.Catalog` holding base tables.
    weights:
        Operation weights used to compare strategies (Section 5.4).
    eps:
        Assumed bitvector false-positive rate for BVP costing.
    stats_cache:
        Optional :class:`~repro.core.stats.StatsCache` (or ``True`` for
        a default-sized one).  When set, statistics derived for a
        (catalog contents, selections, rooted query, method) key are
        reused across ``plan()`` calls instead of being recomputed from
        data; the catalog fingerprint in the key invalidates entries
        automatically when the data changes.
    idp_block_size, beam_width:
        Tuning knobs for the scaling optimizers (``optimizer="idp"`` /
        ``"beam"`` / ``"auto"``); see :func:`repro.core.idp_order` and
        :func:`repro.core.beam_order`.
    """

    #: optimizer choices exposed to ``plan()`` — ``"auto"`` resolves by
    #: relation count via :func:`repro.core.choose_optimizer`
    OPTIMIZERS = ("exhaustive", "idp", "beam", "auto",
                  "survival", "rank", "result_size")

    def __init__(self, catalog, weights=None, eps=0.01, stats_cache=None,
                 idp_block_size=8, beam_width=8):
        self.catalog = catalog
        self.weights = weights or CostWeights()
        self.eps = eps
        if stats_cache is True:
            stats_cache = StatsCache()
        self.stats_cache = stats_cache
        self.idp_block_size = idp_block_size
        self.beam_width = beam_width

    @staticmethod
    def resolve_optimizer(optimizer, num_relations):
        """The concrete algorithm ``plan()`` will run for a query size.

        ``"auto"`` maps to ``"exhaustive"`` / ``"idp"`` / ``"beam"`` by
        relation count; anything else resolves to itself.  The resolved
        name is part of the service layer's plan-cache key, so cached
        plans are keyed by the algorithm that actually produced them.
        """
        if optimizer == "auto":
            return choose_optimizer(num_relations)
        return optimizer

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def derive_stats(self, catalog, query, method="exact",
                     sample_fraction=0.05, seed=0, data_token=None):
        """QueryStats for a rooted query: exact or sampling-based.

        ``data_token`` is an opaque hashable describing the data the
        stats are derived from (catalog fingerprint + selections); when
        both it and :attr:`stats_cache` are present, derivation is
        memoized.
        """
        if isinstance(method, QueryStats):
            return method
        if self.stats_cache is not None and data_token is not None:
            method_key = method
            if method == "sampling":
                method_key = f"sampling:{sample_fraction}:{seed}"
            return self.stats_cache.get_or_derive(
                data_token,
                query,
                method_key,
                lambda: self.derive_stats(
                    catalog, query, method, sample_fraction, seed
                ),
            )
        if method == "exact":
            return stats_from_data(catalog, query)
        if method == "sampling":
            from .estimation.sampling import CorrelatedSample

            edge_stats = {}
            for edge in query.edges:
                sample = CorrelatedSample(
                    catalog.table(edge.parent),
                    catalog.table(edge.child),
                    edge.parent_attr,
                    edge.child_attr,
                    sample_fraction=sample_fraction,
                    seed=seed,
                )
                estimate = sample.estimate()
                edge_stats[edge.child] = EdgeStats(
                    m=estimate.m, fo=max(estimate.fo, 1e-9)
                )
            sizes = {rel: len(catalog.table(rel)) for rel in query.relations}
            return QueryStats(len(catalog.table(query.root)), edge_stats,
                              relation_sizes=sizes)
        raise ValueError(
            f"stats method must be 'exact', 'sampling' or a QueryStats; "
            f"got {method!r}"
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _order_for_mode(self, query, stats, mode, optimizer, memo=None):
        """Best order (and SJ child orders) for one strategy.

        ``memo`` is an optional shared
        :class:`~repro.core.costmodel.CostMemo` for this (query, stats,
        eps) so every strategy's optimization and costing reuse one set
        of subset tables.
        """
        if mode.uses_semijoin:
            plan = optimize_sj(query, stats, factorized=mode.factorized,
                               weights=self.weights)
            return plan.order, plan.child_orders
        memoize = memo if memo is not None else True
        if optimizer == "exhaustive":
            plan = exhaustive_optimal(query, stats, mode=mode, eps=self.eps,
                                      weights=self.weights, memoize=memoize)
            return plan.order, {}
        if optimizer == "idp":
            plan = idp_order(query, stats, mode=mode, eps=self.eps,
                             weights=self.weights,
                             block_size=self.idp_block_size, memoize=memoize)
            return plan.order, {}
        if optimizer == "beam":
            plan = beam_order(query, stats, mode=mode, eps=self.eps,
                              weights=self.weights,
                              beam_width=self.beam_width, memoize=memoize)
            return plan.order, {}
        plan = greedy_order(query, stats, optimizer, mode=mode, eps=self.eps,
                            weights=self.weights)
        return plan.order, {}

    def _cost(self, query, stats, order, mode, flat_output, memo=None):
        return plan_cost(query, stats, order, mode, eps=self.eps,
                         flat_output=flat_output,
                         memo=memo).total(self.weights)

    def plan(
        self,
        query,
        mode="auto",
        optimizer="exhaustive",
        driver="fixed",
        stats="exact",
        flat_output=True,
    ):
        """Build a :class:`PhysicalPlan`.

        Parameters
        ----------
        query:
            SQL text, a :class:`ParsedQuery`, or a rooted
            :class:`JoinQuery`.
        mode:
            One of the six :class:`ExecutionMode` values, or ``"auto"``
            to let the cost model choose the cheapest strategy.
        optimizer:
            ``"exhaustive"`` (Algorithm 1), ``"idp"`` (blockwise DP),
            ``"beam"`` (beam search), ``"auto"`` (pick one of those
            three by relation count), or a greedy heuristic name.
        driver:
            ``"fixed"`` keeps the given rooting; ``"auto"`` tries every
            relation as the driver and keeps the cheapest plan.
        stats:
            ``"exact"``, ``"sampling"``, or a prebuilt
            :class:`QueryStats`.
        """
        if optimizer not in self.OPTIMIZERS:
            raise ValueError(
                f"optimizer must be one of {self.OPTIMIZERS}, got {optimizer!r}"
            )
        catalog = self.catalog
        data_token = None
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, ParsedQuery):
            if query.num_placeholders:
                raise ValueError(
                    "query has unbound '?' placeholders; bind constants "
                    "with ParsedQuery.bind(...) or plan it through "
                    "QuerySession.prepare(...)"
                )
            catalog = push_down_selections(catalog, query)
            join_query = query.to_join_query()
            if self.stats_cache is not None:
                data_token = (
                    self.catalog.fingerprint(),
                    tuple(sorted(query.relations.items())),
                    tuple(sorted(
                        (alias, column, literal)
                        for alias, predicate in query.selections.items()
                        for column, literal in predicate.items()
                    )),
                )
        elif isinstance(query, JoinQuery):
            join_query = query
            if self.stats_cache is not None:
                data_token = (self.catalog.fingerprint(),)
        else:
            raise TypeError(
                f"query must be SQL text, ParsedQuery or JoinQuery; "
                f"got {type(query).__name__}"
            )

        optimizer = self.resolve_optimizer(optimizer,
                                           join_query.num_relations)
        drivers = (
            join_query.relations if driver == "auto" else [join_query.root]
        )
        modes = (
            ExecutionMode.all_modes()
            if mode == "auto"
            else [ExecutionMode(mode)]
        )
        best = None
        for root in drivers:
            rooted = join_query.rerooted(root)
            rooted_stats = self.derive_stats(catalog, rooted, stats,
                                             data_token=data_token)
            # One memo per rooting: every strategy's order search and
            # costing share the same survival/Eq. (1) subset tables.
            memo = CostMemo(rooted)
            for candidate_mode in modes:
                order, child_orders = self._order_for_mode(
                    rooted, rooted_stats, candidate_mode, optimizer, memo
                )
                cost = self._cost(rooted, rooted_stats, order,
                                  candidate_mode, flat_output, memo)
                if best is None or cost < best.predicted_cost:
                    best = PhysicalPlan(
                        catalog=catalog,
                        query=rooted,
                        order=order,
                        mode=candidate_mode,
                        stats=rooted_stats,
                        predicted_cost=cost,
                        child_orders=child_orders,
                        weights=self.weights,
                    )
        return best
