"""End-to-end planner: SQL (or JoinQuery) in, executable plan out.

Ties the whole system together the way a downstream user would consume
it:

1. parse the query (:mod:`repro.core.parser`) and push constant
   selections down to the relations (Section 2.1's assumption);
2. derive statistics — exact (:func:`repro.core.stats.stats_from_data`)
   or via correlated sampling (Section 3.2);
3. pick the driver, the join order (Algorithm 1 or a greedy heuristic)
   and the execution strategy (the cost model prices all six; the
   paper: "our cost model ... can be used for making optimization
   decisions among the competing approaches");
4. return a :class:`PhysicalPlan` that executes on the engine and can
   ``explain()`` itself.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from .core.costmodel import CostMemo, CostWeights, plan_cost
from .core.lru import LRUCache
from .core.optimizer import (
    beam_order,
    choose_optimizer,
    exhaustive_optimal,
    greedy_order,
    idp_order,
    optimize_sj,
)
from .core.parser import Contradiction, ParsedQuery, parse_query
from .core.query import JoinQuery
from .core.stats import EdgeStats, QueryStats, StatsCache, stats_from_data
from .engine.executor import execute
from .modes import ExecutionMode
from .storage.partition import partition_replacements
from .storage.table import Catalog, Table

__all__ = ["AUTO_MAX_SHARDS", "AUTO_MIN_ROWS_PER_SHARD", "PhysicalPlan",
           "Planner", "filtered_table", "push_down_selections"]

#: ``partitioning="auto"`` only shards when the largest probe target
#: has at least this many rows per shard — below that, shard routing
#: overhead outweighs the smaller per-shard sorts and probes
AUTO_MIN_ROWS_PER_SHARD = 16_384
#: cap for ``partitioning="auto"`` (explicit ints may exceed it)
AUTO_MAX_SHARDS = 8


def filtered_table(table, alias, predicate):
    """A :class:`Table` named ``alias`` holding the rows matching
    ``predicate`` ({column: literal} constant selections).

    A :class:`~repro.core.parser.Contradiction` literal (conjunctive
    selections requiring distinct constants on one column) matches no
    row, so the derived relation is empty and the executor
    short-circuits to an empty join result.

    The result is always in *base* row order: filtering a
    hash-partitioned table goes through
    :meth:`~repro.storage.Table.original_rows` /
    :meth:`~repro.storage.Table.gather`, so planning over an already
    re-clustered catalog still reports layout-independent row ids (the
    planner re-partitions the filtered relations itself when asked).
    """
    partitioned = getattr(table, "num_shards", 1) > 1
    if predicate:
        mask = np.ones(len(table), dtype=bool)
        for column, literal in predicate.items():
            if isinstance(literal, Contradiction):
                mask[:] = False
                break
            mask &= table.column(column) == literal
        if partitioned:
            base_rows = np.sort(table.original_rows(np.flatnonzero(mask)))
            columns = table.gather(base_rows)
        else:
            columns = {
                name: values[mask] for name, values in table.columns.items()
            }
    elif partitioned:
        # no selection: keep the caller's layout (zero-copy rename) —
        # it is already self-describing and layout-correct
        return table.renamed(alias)
    else:
        columns = dict(table.columns)
    return Table(alias, columns)


def push_down_selections(catalog, parsed):
    """Materialize constant selections into a derived catalog.

    Returns a new :class:`Catalog` where each selected relation is
    replaced by its filtered rows (registered under the query alias, so
    aliased self-references of the same base table stay distinct).
    """
    derived = Catalog()
    for alias, table_name in parsed.relations.items():
        table = catalog.table(table_name)
        predicate = parsed.selections.get(alias, {})
        derived.add(filtered_table(table, alias, predicate))
    # unselected aliases share the base catalog's arrays — register so
    # an acknowledged in-place mutation invalidates this catalog's
    # indexes too (plans pin their derived catalog and may be re-run)
    return catalog.register_derived(derived)


@dataclass
class PhysicalPlan:
    """An optimized, executable plan."""

    catalog: Catalog
    query: JoinQuery
    order: list
    mode: ExecutionMode
    stats: QueryStats
    predicted_cost: float
    child_orders: dict = field(default_factory=dict)
    weights: CostWeights = field(default_factory=CostWeights)
    #: resolved hash-shard fan-out of the plan's catalog (1 = off)
    num_shards: int = 1

    def execute(self, flat_output=True, collect_output=False,
                max_intermediate_tuples=50_000_000):
        """Run the plan on the engine."""
        return execute(
            self.catalog,
            self.query,
            self.order,
            self.mode,
            flat_output=flat_output,
            collect_output=collect_output,
            child_orders=self.child_orders or None,
            max_intermediate_tuples=max_intermediate_tuples,
        )

    def explain(self):
        """A human-readable plan tree with per-join statistics."""
        from .core.costmodel import com_probes_per_join, std_probes_per_join

        if self.mode.factorized:
            probes = com_probes_per_join(self.query, self.stats, self.order)
        else:
            probes = std_probes_per_join(self.query, self.stats, self.order)
        shards = f" shards={self.num_shards}" if self.num_shards > 1 else ""
        lines = [
            f"PhysicalPlan mode={self.mode} driver={self.query.root} "
            f"predicted_cost={self.predicted_cost:,.0f}{shards}",
            f"  SCAN {self.query.root} "
            f"(N={self.stats.driver_size:,.0f})",
        ]
        for position, relation in enumerate(self.order, start=1):
            edge = self.query.edge_to(relation)
            stats = self.stats.stats(relation)
            lines.append(
                f"  {position}. JOIN {relation} ON "
                f"{edge.parent}.{edge.parent_attr} = "
                f"{edge.child}.{edge.child_attr}  "
                f"[m={stats.m:.3f} fo={stats.fo:.2f} "
                f"est_probes={probes[relation]:,.0f}]"
            )
        if self.child_orders:
            lines.append(f"  semi-join child orders: {self.child_orders}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"PhysicalPlan(mode={self.mode}, driver={self.query.root!r}, "
            f"order={self.order}, cost={self.predicted_cost:.4g})"
        )


class Planner:
    """Query planner over a catalog.

    Parameters
    ----------
    catalog:
        The :class:`~repro.storage.Catalog` holding base tables.
    weights:
        Operation weights used to compare strategies (Section 5.4).
    eps:
        Assumed bitvector false-positive rate for BVP costing.
    stats_cache:
        Optional :class:`~repro.core.stats.StatsCache` (or ``True`` for
        a default-sized one).  When set, statistics derived for a
        (catalog contents, selections, rooted query, method) key are
        reused across ``plan()`` calls instead of being recomputed from
        data; the catalog fingerprint in the key invalidates entries
        automatically when the data changes.
    idp_block_size, beam_width:
        Tuning knobs for the scaling optimizers (``optimizer="idp"`` /
        ``"beam"`` / ``"auto"``); see :func:`repro.core.idp_order` and
        :func:`repro.core.beam_order`.
    partitioning:
        Default storage layout for planned queries: ``"off"`` (the
        exact single-index behavior), an ``int`` shard count, or
        ``"auto"`` (shard count from the largest probe target and the
        core count; 1 when tables are small).  When the resolved count
        exceeds 1, each non-root relation is replaced by a
        :class:`~repro.storage.partition.PartitionedTable` hash-sharded
        on its probe attribute, so index builds and probes fan out
        shard-by-shard.  Plans, predicted costs and result sets are
        identical across shard counts; only wall time changes.
        Overridable per :meth:`plan` call.
    """

    #: optimizer choices exposed to ``plan()`` — ``"auto"`` resolves by
    #: relation count via :func:`repro.core.choose_optimizer`
    OPTIMIZERS = ("exhaustive", "idp", "beam", "auto",
                  "survival", "rank", "result_size")

    def __init__(self, catalog, weights=None, eps=0.01, stats_cache=None,
                 idp_block_size=8, beam_width=8, partitioning="off"):
        self.catalog = catalog
        self.weights = weights or CostWeights()
        self.eps = eps
        if stats_cache is True:
            stats_cache = StatsCache()
        self.stats_cache = stats_cache
        self.idp_block_size = idp_block_size
        self.beam_width = beam_width
        self.partitioning = self._check_partitioning(partitioning)
        # Two levels of content-addressed partitioning reuse: whole
        # derived catalogs (so exact-repeat plan() calls share built
        # sharded indexes) and the re-clustered replacement tables
        # alone, keyed only on the *partitioned* relations' content —
        # queries differing elsewhere (e.g. a driver-side selection
        # constant) reuse the expensive re-clustering and only pay a
        # cheap catalog derivation.
        self._partition_cache = LRUCache(8)
        self._replacement_cache = LRUCache(8)

    @staticmethod
    def _check_partitioning(partitioning):
        if partitioning == "off" or partitioning == "auto":
            return partitioning
        if isinstance(partitioning, int) and not isinstance(partitioning, bool):
            if partitioning < 1:
                raise ValueError(
                    f"partitioning shard count must be >= 1, got {partitioning}"
                )
            return partitioning
        raise ValueError(
            f'partitioning must be "auto", "off" or a shard count, '
            f"got {partitioning!r}"
        )

    def resolve_partitioning(self, partitioning=None, query=None):
        """The concrete shard count a query will be planned with.

        ``None`` falls back to the planner default; ``"off"`` resolves
        to 1; an ``int`` to itself; ``"auto"`` scales with the largest
        non-root base table (one shard per
        :data:`AUTO_MIN_ROWS_PER_SHARD` rows) capped by the core count
        and :data:`AUTO_MAX_SHARDS`.  The resolved count is part of the
        service layer's plan-cache key, mirroring
        :meth:`resolve_optimizer`.
        """
        if partitioning is None:
            partitioning = self.partitioning
        partitioning = self._check_partitioning(partitioning)
        if partitioning == "off":
            return 1
        if isinstance(partitioning, int):
            return partitioning
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, ParsedQuery):
            aliases = list(query.relations)
            sizes = [
                len(self.catalog.table(query.relations[alias]))
                for alias in aliases[1:]
                if query.relations[alias] in self.catalog
            ]
        elif isinstance(query, JoinQuery):
            sizes = [
                len(self.catalog.table(rel))
                for rel in query.non_root_relations
                if rel in self.catalog
            ]
        else:
            sizes = []
        max_rows = max(sizes, default=0)
        cpus = os.cpu_count() or 1
        return int(max(
            1, min(AUTO_MAX_SHARDS, cpus, max_rows // AUTO_MIN_ROWS_PER_SHARD)
        ))

    def resolve_partition_floor(self, partitioning=None):
        """Minimum (post-selection) table size worth re-clustering.

        Non-zero only for ``"auto"`` — explicit shard counts always
        apply.  Part of the service plan-cache key: the floor changes
        which relations actually shard, so ``"auto"`` and an explicit
        count that resolve to the same number must not share a plan.
        """
        if partitioning is None:
            partitioning = self.partitioning
        return AUTO_MIN_ROWS_PER_SHARD if partitioning == "auto" else 0

    @staticmethod
    def resolve_optimizer(optimizer, num_relations):
        """The concrete algorithm ``plan()`` will run for a query size.

        ``"auto"`` maps to ``"exhaustive"`` / ``"idp"`` / ``"beam"`` by
        relation count; anything else resolves to itself.  The resolved
        name is part of the service layer's plan-cache key, so cached
        plans are keyed by the algorithm that actually produced them.
        """
        if optimizer == "auto":
            return choose_optimizer(num_relations)
        return optimizer

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def derive_stats(self, catalog, query, method="exact",
                     sample_fraction=0.05, seed=0, data_token=None):
        """QueryStats for a rooted query: exact or sampling-based.

        ``data_token`` is an opaque hashable describing the data the
        stats are derived from (catalog fingerprint + selections); when
        both it and :attr:`stats_cache` are present, derivation is
        memoized.
        """
        if isinstance(method, QueryStats):
            return method
        if self.stats_cache is not None and data_token is not None:
            method_key = method
            if method == "sampling":
                method_key = f"sampling:{sample_fraction}:{seed}"
            return self.stats_cache.get_or_derive(
                data_token,
                query,
                method_key,
                lambda: self.derive_stats(
                    catalog, query, method, sample_fraction, seed
                ),
            )
        if method == "exact":
            return stats_from_data(catalog, query)
        if method == "sampling":
            from .estimation.sampling import CorrelatedSample

            edge_stats = {}
            for edge in query.edges:
                sample = CorrelatedSample(
                    catalog.table(edge.parent),
                    catalog.table(edge.child),
                    edge.parent_attr,
                    edge.child_attr,
                    sample_fraction=sample_fraction,
                    seed=seed,
                )
                estimate = sample.estimate()
                edge_stats[edge.child] = EdgeStats(
                    m=estimate.m, fo=max(estimate.fo, 1e-9)
                )
            sizes = {rel: len(catalog.table(rel)) for rel in query.relations}
            return QueryStats(len(catalog.table(query.root)), edge_stats,
                              relation_sizes=sizes)
        raise ValueError(
            f"stats method must be 'exact', 'sampling' or a QueryStats; "
            f"got {method!r}"
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _order_for_mode(self, query, stats, mode, optimizer, memo=None):
        """Best order (and SJ child orders) for one strategy.

        ``memo`` is an optional shared
        :class:`~repro.core.costmodel.CostMemo` for this (query, stats,
        eps) so every strategy's optimization and costing reuse one set
        of subset tables.
        """
        if mode.uses_semijoin:
            plan = optimize_sj(query, stats, factorized=mode.factorized,
                               weights=self.weights)
            return plan.order, plan.child_orders
        memoize = memo if memo is not None else True
        if optimizer == "exhaustive":
            plan = exhaustive_optimal(query, stats, mode=mode, eps=self.eps,
                                      weights=self.weights, memoize=memoize)
            return plan.order, {}
        if optimizer == "idp":
            plan = idp_order(query, stats, mode=mode, eps=self.eps,
                             weights=self.weights,
                             block_size=self.idp_block_size, memoize=memoize)
            return plan.order, {}
        if optimizer == "beam":
            plan = beam_order(query, stats, mode=mode, eps=self.eps,
                              weights=self.weights,
                              beam_width=self.beam_width, memoize=memoize)
            return plan.order, {}
        plan = greedy_order(query, stats, optimizer, mode=mode, eps=self.eps,
                            weights=self.weights)
        return plan.order, {}

    def _cost(self, query, stats, order, mode, flat_output, memo=None):
        return plan_cost(query, stats, order, mode, eps=self.eps,
                         flat_output=flat_output,
                         memo=memo).total(self.weights)

    def plan(
        self,
        query,
        mode="auto",
        optimizer="exhaustive",
        driver="fixed",
        stats="exact",
        flat_output=True,
        partitioning=None,
    ):
        """Build a :class:`PhysicalPlan`.

        Parameters
        ----------
        query:
            SQL text, a :class:`ParsedQuery`, or a rooted
            :class:`JoinQuery`.
        mode:
            One of the six :class:`ExecutionMode` values, or ``"auto"``
            to let the cost model choose the cheapest strategy.
        optimizer:
            ``"exhaustive"`` (Algorithm 1), ``"idp"`` (blockwise DP),
            ``"beam"`` (beam search), ``"auto"`` (pick one of those
            three by relation count), or a greedy heuristic name.
        driver:
            ``"fixed"`` keeps the given rooting; ``"auto"`` tries every
            relation as the driver and keeps the cheapest plan.
        stats:
            ``"exact"``, ``"sampling"``, or a prebuilt
            :class:`QueryStats`.
        partitioning:
            ``"auto"``, ``"off"`` or a shard count; ``None`` (default)
            uses the planner's configured default.  When the resolved
            count exceeds 1 the plan executes against a hash-partitioned
            derivative of the catalog; the partitioned layout is chosen
            for the query's given rooting, so with ``driver="auto"`` a
            rerooted winner still runs correctly (merged-view indexes)
            but only probes matching the shard key fan out.
        """
        if optimizer not in self.OPTIMIZERS:
            raise ValueError(
                f"optimizer must be one of {self.OPTIMIZERS}, got {optimizer!r}"
            )
        catalog = self.catalog
        data_token = None
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, ParsedQuery):
            if query.num_placeholders:
                raise ValueError(
                    "query has unbound '?' placeholders; bind constants "
                    "with ParsedQuery.bind(...) or plan it through "
                    "QuerySession.prepare(...)"
                )
            catalog = push_down_selections(catalog, query)
            join_query = query.to_join_query()
            token_extra = (
                tuple(sorted(query.relations.items())),
                tuple(sorted(
                    (alias, column, literal)
                    for alias, predicate in query.selections.items()
                    for column, literal in predicate.items()
                )),
            )
        elif isinstance(query, JoinQuery):
            join_query = query
            token_extra = ()
        else:
            raise TypeError(
                f"query must be SQL text, ParsedQuery or JoinQuery; "
                f"got {type(query).__name__}"
            )

        num_shards = self.resolve_partitioning(partitioning, query)
        # "auto" resolves from base-table sizes (cache keys must be
        # computable before push-down); this floor keeps it from
        # re-clustering a selection that kept only a few rows
        partition_floor = self.resolve_partition_floor(partitioning)
        content_token = None
        if num_shards > 1 or self.stats_cache is not None:
            # the base-catalog fingerprint (content-cached) anchors both
            # the partitioned-catalog reuse and the stats cache, so any
            # data change re-partitions and re-derives automatically
            content_token = (self.catalog.fingerprint(),) + token_extra
        source_catalog = catalog
        effective_shards = 1
        if num_shards > 1:
            shard_spec = tuple(sorted(
                (edge.child, edge.child_attr) for edge in join_query.edges
            ))
            children = {edge.child for edge in join_query.edges}
            if isinstance(query, ParsedQuery):
                # only the partitioned relations' identity + selections:
                # a literal on the driver must not force a re-cluster
                child_token = (
                    tuple(sorted(
                        (alias, table_name)
                        for alias, table_name in query.relations.items()
                        if alias in children
                    )),
                    tuple(sorted(
                        (alias, column, literal)
                        for alias, predicate in query.selections.items()
                        if alias in children
                        for column, literal in predicate.items()
                    )),
                )
            else:
                child_token = ()
            replacements = self._replacement_cache.get_or_compute(
                (self.catalog.fingerprint(), child_token, shard_spec,
                 num_shards, partition_floor),
                lambda: partition_replacements(
                    source_catalog, join_query, num_shards,
                    min_rows=partition_floor,
                ),
            )
            if replacements:
                effective_shards = num_shards
                catalog = self._partition_cache.get_or_compute(
                    content_token + (shard_spec, num_shards, partition_floor),
                    lambda: source_catalog.derived_with(replacements),
                )
        # Sampling draws row *positions*, so it must see the layout-
        # independent source rows or the fixed-seed sample (and hence
        # the plan) would vary with the shard count; exact derivation
        # is bit-identical either way and runs on the partitioned
        # catalog to use (and warm) the sharded indexes.
        stats_catalog = source_catalog if stats == "sampling" else catalog
        if self.stats_cache is not None:
            # derived statistics are layout-independent by construction
            # (exact derivation sums the same integers shard by shard;
            # sampling reads the source catalog), so entries are shared
            # across shard counts instead of re-running an identical
            # O(data) scan every time the knob changes
            data_token = content_token

        optimizer = self.resolve_optimizer(optimizer,
                                           join_query.num_relations)
        drivers = (
            join_query.relations if driver == "auto" else [join_query.root]
        )
        modes = (
            ExecutionMode.all_modes()
            if mode == "auto"
            else [ExecutionMode(mode)]
        )
        best = None
        for root in drivers:
            rooted = join_query.rerooted(root)
            rooted_stats = self.derive_stats(stats_catalog, rooted, stats,
                                             data_token=data_token)
            # One memo per rooting: every strategy's order search and
            # costing share the same survival/Eq. (1) subset tables.
            memo = CostMemo(rooted)
            for candidate_mode in modes:
                order, child_orders = self._order_for_mode(
                    rooted, rooted_stats, candidate_mode, optimizer, memo
                )
                cost = self._cost(rooted, rooted_stats, order,
                                  candidate_mode, flat_output, memo)
                if best is None or cost < best.predicted_cost:
                    best = PhysicalPlan(
                        catalog=catalog,
                        query=rooted,
                        order=order,
                        mode=candidate_mode,
                        stats=rooted_stats,
                        predicted_cost=cost,
                        child_orders=child_orders,
                        weights=self.weights,
                        num_shards=effective_shards,
                    )
        return best
