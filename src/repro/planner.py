"""End-to-end planner: SQL (or JoinQuery) in, executable plan out.

Ties the whole system together the way a downstream user would consume
it:

1. parse the query (:mod:`repro.core.parser`) and push constant
   selections down to the relations (Section 2.1's assumption);
2. derive statistics — exact (:func:`repro.core.stats.stats_from_data`)
   or via correlated sampling (Section 3.2);
3. pick the driver, the join order (Algorithm 1 or a greedy heuristic)
   and the execution strategy (the cost model prices all six; the
   paper: "our cost model ... can be used for making optimization
   decisions among the competing approaches");
4. return a :class:`PhysicalPlan` that executes on the engine and can
   ``explain()`` itself.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from .core.adaptive import (
    adaptive_beam_width,
    adaptive_block_size,
    crossover_relations,
    load_scaling_profile,
)
from .core.costmodel import (
    CostMemo,
    CostWeights,
    expected_output_size,
    plan_cost,
)
from .core.cyclic import (
    CYCLIC_EXECUTION_CHOICES,
    CyclicPlan,
    ResidualPredicate,
    _rooted_tree,
    cyclic_attr_distincts,
    cyclic_directed_stats,
    cyclic_signature,
    edge_pair_selectivity,
    enumerate_spanning_trees,
    execute_cyclic,
    log_pair_weight,
    residual_filter_cost,
    stats_for_tree,
    tree_query_from_residuals,
    wcoj_cost,
)
from .analysis import VALIDATE_CHOICES, PlanVerifier
from .core.lru import LRUCache
from .core.bounds import (
    bound_signature,
    bound_stats_for_rooting,
    max_frequencies_from_data,
    prefix_cardinality_bounds,
    resolve_robustness,
)
from .core.optimizer import (
    PlanningBudgetExceeded,
    beam_order,
    choose_optimizer,
    exhaustive_optimal,
    greedy_order,
    idp_order,
    optimize_sj,
    worst_case_cost,
)
from .core.parser import Contradiction, ParsedQuery, parse_query
from .distributed.placement import DEFAULT_MAX_WORKERS, PLACEMENT_CHOICES
from .core.query import JoinQuery
from .core.stats import (
    EdgeStats,
    QueryStats,
    StatsCache,
    directed_stats_from_data,
    stats_for_rooting,
    stats_from_data,
)
from .engine.executor import execute
from .engine.kernels import (
    EXECUTION_CHOICES,
    resolve_execution as _resolve_kernel_execution,
)
from .engine.wcoj import execute_wcoj, plan_variable_order, variable_classes
from .modes import ExecutionMode
from .storage.partition import partition_replacements
from .storage.table import Catalog, Table

__all__ = ["AUTO_MAX_SHARDS", "AUTO_MIN_ROWS_PER_SHARD", "PhysicalPlan",
           "PlanSpec", "Planner", "filtered_table", "push_down_selections"]

#: ``partitioning="auto"`` only shards when the largest probe target
#: has at least this many rows per shard — below that, shard routing
#: overhead outweighs the smaller per-shard sorts and probes
AUTO_MIN_ROWS_PER_SHARD = 16_384
#: cap for ``partitioning="auto"`` (explicit ints may exceed it)
AUTO_MAX_SHARDS = 8


def filtered_table(table, alias, predicate):
    """A :class:`Table` named ``alias`` holding the rows matching
    ``predicate`` ({column: literal} constant selections).

    A :class:`~repro.core.parser.Contradiction` literal (conjunctive
    selections requiring distinct constants on one column) matches no
    row, so the derived relation is empty and the executor
    short-circuits to an empty join result.

    The result is always in *base* row order: filtering a
    hash-partitioned table goes through
    :meth:`~repro.storage.Table.original_rows` /
    :meth:`~repro.storage.Table.gather`, so planning over an already
    re-clustered catalog still reports layout-independent row ids (the
    planner re-partitions the filtered relations itself when asked).
    """
    partitioned = getattr(table, "num_shards", 1) > 1
    if predicate:
        mask = np.ones(len(table), dtype=bool)
        for column, literal in predicate.items():
            if isinstance(literal, Contradiction):
                mask[:] = False
                break
            mask &= table.column(column) == literal
        if partitioned:
            base_rows = np.sort(table.original_rows(np.flatnonzero(mask)))
            columns = table.gather(base_rows)
        else:
            columns = {
                name: values[mask] for name, values in table.columns.items()
            }
    elif partitioned:
        # no selection: keep the caller's layout (zero-copy rename) —
        # it is already self-describing and layout-correct
        return table.renamed(alias)
    else:
        columns = dict(table.columns)
    return Table(alias, columns)


def push_down_selections(catalog, parsed):
    """Materialize constant selections into a derived catalog.

    Returns a new :class:`Catalog` where each selected relation is
    replaced by its filtered rows (registered under the query alias, so
    aliased self-references of the same base table stay distinct).
    """
    derived = Catalog()
    for alias, table_name in parsed.relations.items():
        table = catalog.table(table_name)
        predicate = parsed.selections.get(alias, {})
        derived.add(filtered_table(table, alias, predicate))
    # unselected aliases share the base catalog's arrays — register so
    # an acknowledged in-place mutation invalidates this catalog's
    # indexes too (plans pin their derived catalog and may be re-run)
    return catalog.register_derived(derived)


@dataclass
class PhysicalPlan:
    """An optimized, executable plan.

    For a cyclic query, :attr:`query` is the spanning tree the joint
    search selected and :attr:`residuals` the join predicates left for
    residual filtering (applied in this exact order — ascending
    estimated selectivity); :attr:`predicted_cost` then includes the
    residual-filter term, so cyclic plans are comparable on the same
    scale as acyclic ones.
    """

    catalog: Catalog
    query: JoinQuery
    order: list
    mode: ExecutionMode
    stats: QueryStats
    predicted_cost: float
    child_orders: dict = field(default_factory=dict)
    weights: CostWeights = field(default_factory=CostWeights)
    #: resolved hash-shard fan-out of the plan's catalog (1 = off)
    num_shards: int = 1
    #: residual predicates of a cyclic plan, in application order
    residuals: tuple = ()
    #: estimated selectivity per residual (aligned with :attr:`residuals`)
    residual_selectivities: tuple = ()
    #: resolved kernel path ("vectorized" / "interpreted") the plan
    #: executes with — part of the fingerprint and the plan-cache key
    execution: str = "vectorized"
    #: resolved cyclic-core strategy ("tree_filter" / "wcoj") the
    #: ``cyclic_execution`` knob selected — always "tree_filter" for
    #: acyclic plans; part of the fingerprint
    cyclic_strategy: str = "tree_filter"
    #: costed variable-elimination order for a wcoj plan: a tuple of
    #: variables, each a tuple of ``(relation, attribute)`` members —
    #: empty for tree_filter plans; part of the fingerprint
    wcoj_variable_order: tuple = ()
    #: static-verifier findings (``validate="basic"|"full"``), in
    #: emission order — observational metadata, never fingerprinted
    diagnostics: tuple = ()
    #: resolved ``robustness`` knob the plan was produced under ("off" /
    #: "bounded" / "auto") — part of the fingerprint (and, via the
    #: session, the plan-cache key)
    robustness: str = "off"
    #: guaranteed cardinality upper bound after each join of
    #: :attr:`order` (:func:`repro.core.bounds.prefix_cardinality_bounds`;
    #: empty when ``robustness="off"``) — derived metadata, never
    #: fingerprinted
    prefix_bounds: tuple = ()
    #: guaranteed worst-case probe work of running :attr:`order`
    #: (:func:`repro.core.optimizer.worst_case_cost`; 0.0 when
    #: ``robustness="off"``) — derived metadata, never fingerprinted
    worst_case_bound: float = 0.0
    #: resolved execution placement ("local" / "distributed") — part of
    #: the fingerprint and the plan-cache key; "distributed" routes
    #: session executions through the scatter/gather worker pool
    #: (:mod:`repro.distributed`)
    placement: str = "local"
    #: resolved worker-process count of a distributed plan (0 for local
    #: plans) — part of the fingerprint and the plan-cache key
    num_workers: int = 0

    @property
    def is_cyclic(self):
        return bool(self.residuals)

    def execute(self, flat_output=True, collect_output=False,
                max_intermediate_tuples=50_000_000, monitor=None,
                driver_rows=None):
        """Run the plan on the engine.

        Cyclic plans route by :attr:`cyclic_strategy`: ``tree_filter``
        runs :func:`~repro.core.cyclic.execute_cyclic` (tree join +
        residual filters, with root-to-leaf residuals pushed into
        factorized expansion), ``wcoj`` runs
        :func:`~repro.engine.wcoj.execute_wcoj` (attribute-at-a-time
        variable elimination over the costed
        :attr:`wcoj_variable_order`).  Either way cyclic output is
        always flat — residual predicates break factorization, so
        ``flat_output`` is moot for them.

        ``monitor`` (a
        :class:`~repro.engine.feedback.CardinalityMonitor`) is
        forwarded to the acyclic pipelines only — cyclic execution
        interleaves residual filtering with the tree join, so its
        per-join counters do not measure a single edge selectivity.

        ``driver_rows`` restricts the run to a subset of root rows (the
        distributed scatter path).  Always executes in-process — even on
        a ``placement="distributed"`` plan — so the worker side of the
        pool can call it without recursing; the session layer is what
        routes distributed plans to the pool.
        """
        if self.residuals:
            if self.cyclic_strategy == "wcoj":
                if driver_rows is not None:
                    raise ValueError(
                        "wcoj plans are not driver-decomposable; "
                        "driver_rows is only supported for tree pipelines"
                    )
                _, result, _ = execute_wcoj(
                    self.catalog,
                    CyclicPlan(self.query, list(self.residuals)),
                    mode=self.mode,
                    order=self.order,
                    collect_output=collect_output,
                    max_intermediate_tuples=max_intermediate_tuples,
                    variable_order=self.wcoj_variable_order or None,
                    execution=self.execution,
                )
                return result
            _, result, _ = execute_cyclic(
                self.catalog,
                CyclicPlan(self.query, list(self.residuals)),
                mode=self.mode,
                order=self.order,
                collect_output=collect_output,
                max_intermediate_tuples=max_intermediate_tuples,
                child_orders=self.child_orders or None,
                execution=self.execution,
                driver_rows=driver_rows,
            )
            return result
        return execute(
            self.catalog,
            self.query,
            self.order,
            self.mode,
            flat_output=flat_output,
            collect_output=collect_output,
            child_orders=self.child_orders or None,
            max_intermediate_tuples=max_intermediate_tuples,
            execution=self.execution,
            monitor=monitor,
            driver_rows=driver_rows,
        )

    def fingerprint(self):
        """A stable content digest of the resolved plan (hex string).

        Covers everything the optimizer decided — driver, tree edges,
        join order, mode, semi-join child orders, residuals, shard
        fan-out, kernel path, cyclic strategy and its wcoj variable
        order, the resolved robustness knob — plus the catalog content
        it was planned against, so
        two planning passes that resolved identically (e.g. a cache hit
        and the plan it was seeded from, or a worker-planned spec and
        its rehydration) fingerprint identically.
        """
        payload = repr((
            self.query.root,
            tuple(sorted(
                (edge.parent, edge.child, edge.parent_attr, edge.child_attr)
                for edge in self.query.edges
            )),
            tuple(self.order),
            str(self.mode),
            tuple(sorted(
                (relation, tuple(children))
                for relation, children in (self.child_orders or {}).items()
            )),
            tuple(residual.key for residual in self.residuals),
            self.num_shards,
            self.execution,
            self.cyclic_strategy,
            tuple(tuple(member) for member in self.wcoj_variable_order),
            self.robustness,
            self.placement,
            self.num_workers,
            self.catalog.fingerprint(),
        ))
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    def explain(self):
        """A human-readable plan tree with per-join statistics."""
        from .core.costmodel import com_probes_per_join, std_probes_per_join

        if self.mode.factorized:
            probes = com_probes_per_join(self.query, self.stats, self.order)
        else:
            probes = std_probes_per_join(self.query, self.stats, self.order)
        shards = f" shards={self.num_shards}" if self.num_shards > 1 else ""
        lines = [
            f"PhysicalPlan mode={self.mode} driver={self.query.root} "
            f"predicted_cost={self.predicted_cost:,.0f}{shards}",
            f"  SCAN {self.query.root} "
            f"(N={self.stats.driver_size:,.0f})",
        ]
        for position, relation in enumerate(self.order, start=1):
            edge = self.query.edge_to(relation)
            stats = self.stats.stats(relation)
            bound = ""
            if position <= len(self.prefix_bounds):
                bound = f" ub={self.prefix_bounds[position - 1]:,.0f}"
            lines.append(
                f"  {position}. JOIN {relation} ON "
                f"{edge.parent}.{edge.parent_attr} = "
                f"{edge.child}.{edge.child_attr}  "
                f"[m={stats.m:.3f} fo={stats.fo:.2f} "
                f"est_probes={probes[relation]:,.0f}{bound}]"
            )
        if self.robustness != "off":
            lines.append(
                f"  ROBUSTNESS {self.robustness} "
                f"worst_case_bound={self.worst_case_bound:,.0f}"
            )
        if self.child_orders:
            lines.append(f"  semi-join child orders: {self.child_orders}")
        for residual, selectivity in zip(
            self.residuals,
            self.residual_selectivities or [None] * len(self.residuals),
        ):
            estimated = (
                f"  [s={selectivity:.4g}]" if selectivity is not None else ""
            )
            lines.append(
                f"  RESIDUAL {residual.relation_a}.{residual.attr_a} = "
                f"{residual.relation_b}.{residual.attr_b}{estimated}"
            )
        if self.cyclic_strategy == "wcoj":
            rendered = " -> ".join(
                "{" + ", ".join(f"{rel}.{attr}" for rel, attr in members)
                + "}"
                for members in self.wcoj_variable_order
            )
            lines.append(f"  STRATEGY wcoj variables: {rendered}")
        return "\n".join(lines)

    def to_spec(self, catalog_fingerprint):
        """A :class:`PlanSpec` snapshot of this plan (catalog-free).

        ``catalog_fingerprint`` is the *base* catalog's content digest
        at planning time — the address a rehydrating process checks
        before trusting the spec.
        """
        return PlanSpec(
            root=self.query.root,
            order=tuple(self.order),
            mode=str(self.mode),
            stats=self.stats,
            predicted_cost=self.predicted_cost,
            child_orders=tuple(sorted(
                (relation, tuple(children))
                for relation, children in (self.child_orders or {}).items()
            )),
            weights=self.weights,
            num_shards=self.num_shards,
            catalog_fingerprint=catalog_fingerprint,
            residuals=tuple(self.residuals),
            residual_selectivities=tuple(self.residual_selectivities),
            execution=self.execution,
            cyclic_strategy=self.cyclic_strategy,
            wcoj_variable_order=tuple(
                tuple(member) for member in self.wcoj_variable_order
            ),
            robustness=self.robustness,
            prefix_bounds=tuple(self.prefix_bounds),
            worst_case_bound=self.worst_case_bound,
            placement=self.placement,
            num_workers=self.num_workers,
        )

    def __repr__(self):
        residuals = (
            f", residuals={len(self.residuals)}" if self.residuals else ""
        )
        return (
            f"PhysicalPlan(mode={self.mode}, driver={self.query.root!r}, "
            f"order={self.order}, cost={self.predicted_cost:.4g}{residuals})"
        )


@dataclass(frozen=True)
class PlanSpec:
    """A picklable, catalog-free snapshot of a :class:`PhysicalPlan`.

    Everything the optimizer *decided* — driver, join order, execution
    mode, semi-join child orders, statistics, predicted cost — without
    the derived catalog the plan executes against.  A process-pool
    planning worker returns one of these (pickling a whole partitioned
    catalog per query would swamp the planning speedup); the service
    process rehydrates it against its own copy of the data with
    :meth:`Planner.rehydrate`, which re-derives the (content-addressed,
    LRU-cached) execution catalog locally.

    ``catalog_fingerprint`` pins the spec to the base-catalog content it
    was planned for: rehydration refuses a spec whose fingerprint no
    longer matches, exactly like the plan cache misses on data changes.

    For a cyclic query the spec additionally ships the ``residuals``
    (picklable :class:`~repro.core.cyclic.ResidualPredicate` tuples, in
    application order): together with ``root`` they identify the
    resolved spanning tree — rehydration reconstructs it as the query's
    predicate multiset minus the residuals
    (:func:`~repro.core.cyclic.tree_query_from_residuals`).
    """

    root: str
    order: tuple
    mode: str
    stats: QueryStats
    predicted_cost: float
    child_orders: tuple
    weights: CostWeights
    num_shards: int
    catalog_fingerprint: str
    residuals: tuple = ()
    residual_selectivities: tuple = ()
    #: resolved kernel path the plan executes with (defaults keep specs
    #: pickled before this field existed rehydratable)
    execution: str = "vectorized"
    #: resolved cyclic-core strategy; "tree_filter" default keeps older
    #: pickled specs rehydratable
    cyclic_strategy: str = "tree_filter"
    #: costed wcoj variable-elimination order (tuples of
    #: ``(relation, attribute)`` member tuples); empty for tree_filter
    wcoj_variable_order: tuple = ()
    #: resolved robustness knob; "off" default keeps older pickled
    #: specs rehydratable
    robustness: str = "off"
    #: guaranteed per-prefix cardinality bounds (aligned with ``order``;
    #: empty when robustness="off") — derived metadata
    prefix_bounds: tuple = ()
    #: guaranteed worst-case probe work of ``order`` (0.0 when
    #: robustness="off") — derived metadata
    worst_case_bound: float = 0.0
    #: resolved execution placement; "local" default keeps older
    #: pickled specs rehydratable
    placement: str = "local"
    #: resolved worker-process count (0 for local plans)
    num_workers: int = 0

    def __repr__(self):
        residuals = (
            f", residuals={len(self.residuals)}" if self.residuals else ""
        )
        return (
            f"PlanSpec(driver={self.root!r}, mode={self.mode}, "
            f"order={list(self.order)}, "
            f"cost={self.predicted_cost:.4g}{residuals})"
        )


@dataclass
class _PreparedQuery:
    """Everything :meth:`Planner._prepare` derives for one query."""

    #: the parsed query (or the JoinQuery as given)
    query: object
    #: the rooted join tree — ``None`` for a cyclic query, whose tree
    #: the joint search chooses (partitioning is deferred until then)
    join_query: JoinQuery
    #: execution catalog: selections pushed down, partitioning applied
    catalog: Catalog
    #: catalog statistics derivation reads (source rows for sampling)
    stats_catalog: Catalog
    #: stats-cache token (``None`` when uncached)
    data_token: tuple = None
    #: resolved hash-shard fan-out of :attr:`catalog` (1 = off)
    effective_shards: int = 1
    #: push-down catalog before any partitioning (re-partition source)
    source_catalog: Catalog = None
    #: resolved shard count / size floor / content token, kept so the
    #: cyclic path can partition once its winning tree is known
    num_shards: int = 1
    partition_floor: int = 0
    content_token: tuple = None


class Planner:
    """Query planner over a catalog.

    Parameters
    ----------
    catalog:
        The :class:`~repro.storage.Catalog` holding base tables.
    weights:
        Operation weights used to compare strategies (Section 5.4).
    eps:
        Assumed bitvector false-positive rate for BVP costing.
    stats_cache:
        Optional :class:`~repro.core.stats.StatsCache` (or ``True`` for
        a default-sized one).  When set, statistics derived for a
        (catalog contents, selections, rooted query, method) key are
        reused across ``plan()`` calls instead of being recomputed from
        data; the catalog fingerprint in the key invalidates entries
        automatically when the data changes.
    idp_block_size, beam_width:
        Tuning knobs for the scaling optimizers (``optimizer="idp"`` /
        ``"beam"`` / ``"auto"``); see :func:`repro.core.idp_order` and
        :func:`repro.core.beam_order`.  ``"auto"`` derives the value
        from the measured crossover points in
        ``benchmarks/results/BENCH_optimizer_scaling.json`` (falling
        back to the historical constants when no benchmark record
        exists); the resolved integer is what cache keys and planning
        use.
    planning_budget_ms:
        Optional per-``plan()`` wall-time budget.  When set,
        ``optimizer="auto"`` resolves its crossovers against the budget
        (via the measured scaling profile) and the order search runs
        under a deadline: an exhaustive DP that overruns falls back to
        IDP, an IDP run that overruns falls back to beam search — the
        anytime ladder.  ``None`` (default) keeps planning unbounded.
    partitioning:
        Default storage layout for planned queries: ``"off"`` (the
        exact single-index behavior), an ``int`` shard count, or
        ``"auto"`` (shard count from the largest probe target and the
        core count; 1 when tables are small).  When the resolved count
        exceeds 1, each non-root relation is replaced by a
        :class:`~repro.storage.partition.PartitionedTable` hash-sharded
        on its probe attribute, so index builds and probes fan out
        shard-by-shard.  Plans, predicted costs and result sets are
        identical across shard counts; only wall time changes.
        Overridable per :meth:`plan` call.
    max_spanning_trees:
        Cap on the candidate spanning trees the *joint* cyclic search
        evaluates (``tree_search="joint"``).  Candidates stream in
        approximately ascending tree-output order starting from the
        greedy Kruskal tree, each branch-and-bound pruned against the
        incumbent total cost, so raising the cap only ever matches or
        improves the chosen plan at more planning time.  Part of the
        service layer's plan-cache key.
    execution:
        Default kernel path planned queries execute with:
        ``"vectorized"`` (NumPy kernels), ``"interpreted"`` (the
        pure-Python tuple-at-a-time oracle — bit-identical results and
        counters, orders of magnitude slower) or ``"auto"`` (the
        ``REPRO_EXECUTION`` environment override, else vectorized).
        Resolved at plan time; the resolved value is stored on the
        plan, covered by its fingerprint, and part of the service
        layer's plan-cache key.  Overridable per :meth:`plan` call.
    validate:
        Static-verification level for produced plans: ``"off"``
        (default), ``"basic"`` (structural + metadata passes) or
        ``"full"`` (adds O(rows) data scans and the
        fingerprint-sensitivity probe); see
        :mod:`repro.analysis.planlint`.  Error findings raise
        :class:`~repro.analysis.PlanVerificationError`; all findings
        land on :attr:`PhysicalPlan.diagnostics`.  Verdicts are cached
        per plan fingerprint, so repeat planning of a verified plan
        (and rehydration of its spec) pays a dictionary lookup.  Never
        part of cache keys — verification cannot change which plan is
        produced.  Overridable per :meth:`plan` call.
    """

    #: optimizer choices exposed to ``plan()`` — ``"auto"`` resolves by
    #: relation count via :func:`repro.core.choose_optimizer`
    OPTIMIZERS = ("exhaustive", "idp", "beam", "auto",
                  "survival", "rank", "result_size")

    def __init__(self, catalog, weights=None, eps=0.01, stats_cache=None,
                 idp_block_size=8, beam_width=8, planning_budget_ms=None,
                 partitioning="off", max_spanning_trees=16,
                 execution="auto", cyclic_execution="auto", validate="off",
                 robustness="off", regret_factor=4.0,
                 placement="local", num_workers=0):
        self.catalog = catalog
        self.weights = weights or CostWeights()
        self.eps = eps
        if stats_cache is True:
            stats_cache = StatsCache()
        self.stats_cache = stats_cache
        if planning_budget_ms is not None and planning_budget_ms <= 0:
            raise ValueError(
                f"planning_budget_ms must be positive or None, "
                f"got {planning_budget_ms}"
            )
        self.planning_budget_ms = planning_budget_ms
        self.idp_block_size = self._resolve_knob(
            "idp_block_size", idp_block_size, adaptive_block_size,
            planning_budget_ms,
        )
        self.beam_width = self._resolve_knob(
            "beam_width", beam_width, adaptive_beam_width, planning_budget_ms,
        )
        self.partitioning = self._check_partitioning(partitioning)
        if not isinstance(max_spanning_trees, int) \
                or isinstance(max_spanning_trees, bool) \
                or max_spanning_trees < 1:
            raise ValueError(
                f"max_spanning_trees must be an int >= 1, "
                f"got {max_spanning_trees!r}"
            )
        self.max_spanning_trees = max_spanning_trees
        if execution not in EXECUTION_CHOICES:
            raise ValueError(
                f"execution must be one of {EXECUTION_CHOICES}, "
                f"got {execution!r}"
            )
        self.execution = execution
        if cyclic_execution not in CYCLIC_EXECUTION_CHOICES:
            raise ValueError(
                f"cyclic_execution must be one of "
                f"{CYCLIC_EXECUTION_CHOICES}, got {cyclic_execution!r}"
            )
        self.cyclic_execution = cyclic_execution
        if validate not in VALIDATE_CHOICES:
            raise ValueError(
                f"validate must be one of {VALIDATE_CHOICES}, "
                f"got {validate!r}"
            )
        self.validate = validate
        self.robustness = resolve_robustness(robustness)
        if not isinstance(regret_factor, (int, float)) \
                or isinstance(regret_factor, bool) or regret_factor < 1.0:
            raise ValueError(
                f"regret_factor must be a number >= 1.0, "
                f"got {regret_factor!r}"
            )
        self.regret_factor = float(regret_factor)
        if placement not in PLACEMENT_CHOICES:
            raise ValueError(
                f"placement must be one of {PLACEMENT_CHOICES}, "
                f"got {placement!r}"
            )
        self.placement = placement
        if not isinstance(num_workers, int) or isinstance(num_workers, bool) \
                or num_workers < 0:
            raise ValueError(
                f"num_workers must be an int >= 0 (0 = auto), "
                f"got {num_workers!r}"
            )
        self.num_workers = num_workers
        self._verifier = PlanVerifier()
        # Two levels of content-addressed partitioning reuse: whole
        # derived catalogs (so exact-repeat plan() calls share built
        # sharded indexes) and the re-clustered replacement tables
        # alone, keyed only on the *partitioned* relations' content —
        # queries differing elsewhere (e.g. a driver-side selection
        # constant) reuse the expensive re-clustering and only pay a
        # cheap catalog derivation.
        self._partition_cache = LRUCache(8)
        self._replacement_cache = LRUCache(8)

    @staticmethod
    def _resolve_knob(name, value, derive, planning_budget_ms):
        """Resolve a scaling knob: an explicit int, or ``"auto"``.

        ``"auto"`` derives the value from the measured scaling profile
        (:mod:`repro.core.adaptive`) at the configured planning budget;
        the resolved *integer* is stored, so plan-cache keys and
        workers always see a concrete value.
        """
        if value == "auto":
            return derive(load_scaling_profile(), planning_budget_ms)
        if isinstance(value, int) and not isinstance(value, bool):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
            return value
        raise ValueError(
            f'{name} must be an int >= 1 or "auto", got {value!r}'
        )

    @staticmethod
    def _check_partitioning(partitioning):
        if partitioning == "off" or partitioning == "auto":
            return partitioning
        if isinstance(partitioning, int) and not isinstance(partitioning, bool):
            if partitioning < 1:
                raise ValueError(
                    f"partitioning shard count must be >= 1, got {partitioning}"
                )
            return partitioning
        raise ValueError(
            f'partitioning must be "auto", "off" or a shard count, '
            f"got {partitioning!r}"
        )

    def resolve_partitioning(self, partitioning=None, query=None):
        """The concrete shard count a query will be planned with.

        ``None`` falls back to the planner default; ``"off"`` resolves
        to 1; an ``int`` to itself; ``"auto"`` scales with the largest
        non-root base table (one shard per
        :data:`AUTO_MIN_ROWS_PER_SHARD` rows) capped by the core count
        and :data:`AUTO_MAX_SHARDS`.  The resolved count is part of the
        service layer's plan-cache key, mirroring
        :meth:`resolve_optimizer`.
        """
        if partitioning is None:
            partitioning = self.partitioning
        partitioning = self._check_partitioning(partitioning)
        if partitioning == "off":
            return 1
        if isinstance(partitioning, int):
            return partitioning
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, ParsedQuery):
            aliases = list(query.relations)
            sizes = [
                len(self.catalog.table(query.relations[alias]))
                for alias in aliases[1:]
                if query.relations[alias] in self.catalog
            ]
        elif isinstance(query, JoinQuery):
            sizes = [
                len(self.catalog.table(rel))
                for rel in query.non_root_relations
                if rel in self.catalog
            ]
        else:
            sizes = []
        max_rows = max(sizes, default=0)
        cpus = os.cpu_count() or 1
        return int(max(
            1, min(AUTO_MAX_SHARDS, cpus, max_rows // AUTO_MIN_ROWS_PER_SHARD)
        ))

    def resolve_partition_floor(self, partitioning=None):
        """Minimum (post-selection) table size worth re-clustering.

        Non-zero only for ``"auto"`` — explicit shard counts always
        apply.  Part of the service plan-cache key: the floor changes
        which relations actually shard, so ``"auto"`` and an explicit
        count that resolve to the same number must not share a plan.
        """
        if partitioning is None:
            partitioning = self.partitioning
        return AUTO_MIN_ROWS_PER_SHARD if partitioning == "auto" else 0

    def resolve_execution(self, execution=None):
        """The concrete kernel path a query will execute with.

        ``None`` falls back to the planner default; ``"auto"`` resolves
        via the ``REPRO_EXECUTION`` environment variable (else
        vectorized); explicit choices resolve to themselves.  The
        resolved name is part of the service layer's plan-cache key,
        mirroring :meth:`resolve_optimizer` /
        :meth:`resolve_partitioning`.
        """
        if execution is None:
            execution = self.execution
        return _resolve_kernel_execution(execution)

    def resolve_placement(self, placement=None):
        """The concrete execution placement a query will run under.

        ``None`` falls back to the planner default; anything else must
        be a member of
        :data:`~repro.distributed.placement.PLACEMENT_CHOICES`.  The
        resolved value is part of the service layer's plan-cache key
        (and the plan fingerprint), mirroring the other resolve
        helpers.
        """
        if placement is None:
            placement = self.placement
        if placement not in PLACEMENT_CHOICES:
            raise ValueError(
                f"placement must be one of {PLACEMENT_CHOICES}, "
                f"got {placement!r}"
            )
        return placement

    def resolve_num_workers(self, num_workers=None, placement=None):
        """The concrete worker count a distributed plan will run with.

        Local placements always resolve to 0 (no pool).  For
        ``"distributed"``, ``0`` ("auto") resolves to the host's core
        count capped at
        :data:`~repro.distributed.placement.DEFAULT_MAX_WORKERS`;
        explicit counts resolve to themselves.  Part of the plan-cache
        key and the plan fingerprint.
        """
        if num_workers is None:
            num_workers = self.num_workers
        if not isinstance(num_workers, int) or isinstance(num_workers, bool) \
                or num_workers < 0:
            raise ValueError(
                f"num_workers must be an int >= 0 (0 = auto), "
                f"got {num_workers!r}"
            )
        if self.resolve_placement(placement) == "local":
            return 0
        if num_workers > 0:
            return num_workers
        return max(1, min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1))

    @staticmethod
    def resolve_optimizer(optimizer, num_relations, planning_budget_ms=None):
        """The concrete algorithm ``plan()`` will run for a query size.

        ``"auto"`` maps to ``"exhaustive"`` / ``"idp"`` / ``"beam"`` by
        relation count; anything else resolves to itself.  The resolved
        name is part of the service layer's plan-cache key, so cached
        plans are keyed by the algorithm that actually produced them.

        With a ``planning_budget_ms``, the ``"auto"`` crossovers come
        from the measured scaling profile evaluated at that budget
        (:func:`repro.core.adaptive.crossover_relations`) instead of
        the static constants — a generous budget keeps the exhaustive
        DP viable for larger queries, a tight one steps down earlier.
        """
        if optimizer != "auto":
            return optimizer
        if planning_budget_ms is not None:
            exhaustive_max, idp_max = crossover_relations(
                load_scaling_profile(), planning_budget_ms
            )
            return choose_optimizer(num_relations, exhaustive_max, idp_max)
        return choose_optimizer(num_relations)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @staticmethod
    def _stats_method_key(method, sample_fraction=0.05, seed=0):
        """The stats-cache method component for a derivation request.

        The single producer of this key string: :meth:`derive_stats`
        and the driver search's per-rooting pre-registration must
        agree byte-for-byte or entries written by one are unreadable
        by the other.  The defaults here are :meth:`derive_stats`'s
        defaults (the only configuration :meth:`plan` can reach).
        """
        if method == "sampling":
            return f"sampling:{sample_fraction}:{seed}"
        return method

    def derive_stats(self, catalog, query, method="exact",
                     sample_fraction=0.05, seed=0, data_token=None):
        """QueryStats for a rooted query: exact or sampling-based.

        ``data_token`` is an opaque hashable describing the data the
        stats are derived from (catalog fingerprint + selections); when
        both it and :attr:`stats_cache` are present, derivation is
        memoized.
        """
        if isinstance(method, QueryStats):
            return method
        if self.stats_cache is not None and data_token is not None:
            method_key = self._stats_method_key(method, sample_fraction,
                                                seed)
            return self.stats_cache.get_or_derive(
                data_token,
                query,
                method_key,
                lambda: self.derive_stats(
                    catalog, query, method, sample_fraction, seed
                ),
            )
        if method == "exact":
            return stats_from_data(catalog, query)
        if method == "sampling":
            from .estimation.sampling import CorrelatedSample

            edge_stats = {}
            for edge in query.edges:
                sample = CorrelatedSample(
                    catalog.table(edge.parent),
                    catalog.table(edge.child),
                    edge.parent_attr,
                    edge.child_attr,
                    sample_fraction=sample_fraction,
                    seed=seed,
                )
                estimate = sample.estimate()
                edge_stats[edge.child] = EdgeStats(
                    m=estimate.m, fo=max(estimate.fo, 1e-9)
                )
            sizes = {rel: len(catalog.table(rel)) for rel in query.relations}
            return QueryStats(len(catalog.table(query.root)), edge_stats,
                              relation_sizes=sizes)
        raise ValueError(
            f"stats method must be 'exact', 'sampling' or a QueryStats; "
            f"got {method!r}"
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    #: anytime fallback order per starting algorithm: an order search
    #: that overruns its deadline falls to the next rung; beam search is
    #: the floor (linear time, never deadline-checked)
    _LADDER = {
        "exhaustive": ("exhaustive", "idp", "beam"),
        "idp": ("idp", "beam"),
        "beam": ("beam",),
    }

    def _order_for_mode(self, query, stats, mode, optimizer, memo=None,
                        upper_bound=None, deadline=None):
        """Best order (and SJ child orders) for one strategy.

        ``memo`` is an optional shared
        :class:`~repro.core.costmodel.CostMemo` for this (query, stats,
        eps) so every strategy's optimization and costing reuse one set
        of subset tables.

        ``upper_bound`` enables branch-and-bound pruning against an
        incumbent plan's cost (the ``driver="auto"`` search supplies
        it); the return is ``(None, {})`` when every candidate order
        was pruned — the incumbent cannot be beaten from here.
        ``deadline`` activates the anytime ladder: a DP that overruns
        falls down to the next cheaper algorithm instead of failing.
        """
        if mode.uses_semijoin:
            plan = optimize_sj(query, stats, factorized=mode.factorized,
                               weights=self.weights)
            return plan.order, plan.child_orders
        memoize = memo if memo is not None else True
        rungs = self._LADDER.get(optimizer)
        if rungs is None:
            plan = greedy_order(query, stats, optimizer, mode=mode,
                                eps=self.eps, weights=self.weights)
            return plan.order, {}
        if deadline is None:
            rungs = rungs[:1]  # nothing can overrun: no fallback needed
        plan = None
        for rung in rungs:
            try:
                if rung == "exhaustive":
                    plan = exhaustive_optimal(
                        query, stats, mode=mode, eps=self.eps,
                        weights=self.weights, memoize=memoize,
                        upper_bound=upper_bound, deadline=deadline,
                    )
                elif rung == "idp":
                    plan = idp_order(
                        query, stats, mode=mode, eps=self.eps,
                        weights=self.weights,
                        block_size=self.idp_block_size, memoize=memoize,
                        upper_bound=upper_bound, deadline=deadline,
                    )
                else:
                    plan = beam_order(
                        query, stats, mode=mode, eps=self.eps,
                        weights=self.weights,
                        beam_width=self.beam_width, memoize=memoize,
                        upper_bound=upper_bound,
                    )
            except PlanningBudgetExceeded:
                continue  # fall down the ladder
            break
        if plan is None:
            return None, {}  # pruned out: incumbent is at least as good
        return plan.order, {}

    def _cost(self, query, stats, order, mode, flat_output, memo=None):
        return plan_cost(query, stats, order, mode, eps=self.eps,
                         flat_output=flat_output,
                         memo=memo).total(self.weights)

    def _apply_partitioning(self, query, source_catalog, join_query,
                            num_shards, partition_floor, content_token):
        """``(execution catalog, effective shards)`` for a rooted tree.

        The content-addressed partitioning step shared by
        :meth:`_prepare` (acyclic queries, whose tree is the query) and
        the cyclic joint search (which partitions once its winning tree
        is known): re-clustered replacement tables are keyed only on
        the partitioned relations' content, whole derived catalogs on
        the full content token, so exact repeats reuse built sharded
        indexes and near-repeats reuse the expensive re-clustering.
        """
        if num_shards <= 1:
            return source_catalog, 1
        shard_spec = tuple(sorted(
            (edge.child, edge.child_attr) for edge in join_query.edges
        ))
        children = {edge.child for edge in join_query.edges}
        if isinstance(query, ParsedQuery):
            # only the partitioned relations' identity + selections:
            # a literal on the driver must not force a re-cluster
            child_token = (
                tuple(sorted(
                    (alias, table_name)
                    for alias, table_name in query.relations.items()
                    if alias in children
                )),
                tuple(sorted(
                    (alias, column, literal)
                    for alias, predicate in query.selections.items()
                    if alias in children
                    for column, literal in predicate.items()
                )),
            )
        else:
            child_token = ()
        replacements = self._replacement_cache.get_or_compute(
            (self.catalog.fingerprint(), child_token, shard_spec,
             num_shards, partition_floor),
            lambda: partition_replacements(
                source_catalog, join_query, num_shards,
                min_rows=partition_floor,
            ),
        )
        if not replacements:
            return source_catalog, 1
        catalog = self._partition_cache.get_or_compute(
            content_token + (shard_spec, num_shards, partition_floor),
            lambda: source_catalog.derived_with(replacements),
        )
        return catalog, num_shards

    def _prepare(self, query, partitioning, stats="exact", tree=None):
        """Parse + derive the execution catalog for a query.

        Shared by :meth:`plan` and :meth:`rehydrate`: selection
        push-down, hash-partitioning (both content-addressed and
        LRU-reused) and the stats/data tokens.  Returns a
        :class:`_PreparedQuery`; the expensive steps hit the same
        caches from every entry point, which is what makes rehydrating
        a :class:`PlanSpec` cheap — the worker only ships decisions,
        the local catalog derivation is a cache lookup after the first
        query of a shape.

        A *cyclic* :class:`ParsedQuery` prepares with
        ``join_query=None`` — its spanning tree is an optimizer
        decision, so partitioning (whose layout follows the tree's
        probe attributes) is deferred until the joint search picks one.
        ``tree`` short-circuits that: rehydration passes the tree a
        :class:`PlanSpec` resolved, and preparation proceeds exactly
        like the acyclic path.
        """
        catalog = self.catalog
        data_token = None
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, ParsedQuery):
            if query.num_placeholders:
                raise ValueError(
                    "query has unbound '?' placeholders; bind constants "
                    "with ParsedQuery.bind(...) or plan it through "
                    "QuerySession.prepare(...)"
                )
            catalog = push_down_selections(catalog, query)
            if tree is not None:
                join_query = tree
            elif query.is_connected() and not query.is_acyclic():
                join_query = None  # cyclic: the joint search picks the tree
            else:
                join_query = query.to_join_query()
            token_extra = (
                tuple(sorted(query.relations.items())),
                tuple(sorted(
                    (alias, column, literal)
                    for alias, predicate in query.selections.items()
                    for column, literal in predicate.items()
                )),
            )
        elif isinstance(query, JoinQuery):
            join_query = query
            token_extra = ()
        else:
            raise TypeError(
                f"query must be SQL text, ParsedQuery or JoinQuery; "
                f"got {type(query).__name__}"
            )

        num_shards = self.resolve_partitioning(partitioning, query)
        # "auto" resolves from base-table sizes (cache keys must be
        # computable before push-down); this floor keeps it from
        # re-clustering a selection that kept only a few rows
        partition_floor = self.resolve_partition_floor(partitioning)
        content_token = None
        if num_shards > 1 or self.stats_cache is not None:
            # the base-catalog fingerprint (content-cached) anchors both
            # the partitioned-catalog reuse and the stats cache, so any
            # data change re-partitions and re-derives automatically
            content_token = (self.catalog.fingerprint(),) + token_extra
        source_catalog = catalog
        effective_shards = 1
        if join_query is not None:
            catalog, effective_shards = self._apply_partitioning(
                query, source_catalog, join_query, num_shards,
                partition_floor, content_token,
            )
        # Sampling draws row *positions*, so it must see the layout-
        # independent source rows or the fixed-seed sample (and hence
        # the plan) would vary with the shard count; exact derivation
        # is bit-identical either way and runs on the partitioned
        # catalog to use (and warm) the sharded indexes.
        stats_catalog = source_catalog if stats == "sampling" else catalog
        if self.stats_cache is not None:
            # derived statistics are layout-independent by construction
            # (exact derivation sums the same integers shard by shard;
            # sampling reads the source catalog), so entries are shared
            # across shard counts instead of re-running an identical
            # O(data) scan every time the knob changes
            data_token = content_token
        return _PreparedQuery(
            query=query,
            join_query=join_query,
            catalog=catalog,
            stats_catalog=stats_catalog,
            data_token=data_token,
            effective_shards=effective_shards,
            source_catalog=source_catalog,
            num_shards=num_shards,
            partition_floor=partition_floor,
            content_token=content_token,
        )

    def plan(
        self,
        query,
        mode="auto",
        optimizer="exhaustive",
        driver="fixed",
        stats="exact",
        flat_output=True,
        partitioning=None,
        planning_budget_ms=None,
        tree_search="joint",
        execution=None,
        cyclic_execution=None,
        validate=None,
        robustness=None,
        placement=None,
        num_workers=None,
    ):
        """Build a :class:`PhysicalPlan`.

        Parameters
        ----------
        query:
            SQL text, a :class:`ParsedQuery`, or a rooted
            :class:`JoinQuery`.
        mode:
            One of the six :class:`ExecutionMode` values, or ``"auto"``
            to let the cost model choose the cheapest strategy.
        optimizer:
            ``"exhaustive"`` (Algorithm 1), ``"idp"`` (blockwise DP),
            ``"beam"`` (beam search), ``"auto"`` (pick one of those
            three by relation count), or a greedy heuristic name.
        driver:
            ``"fixed"`` keeps the given rooting; ``"auto"`` searches
            every relation as the driver and keeps the cheapest plan.
            The search derives statistics for *both directions* of
            every edge once (instead of once per rooting), ranks the
            rootings by a cheap greedy proxy plan, and prunes each
            remaining rooting's DP against the incumbent cost
            (branch-and-bound over the non-negative delta costs) — the
            winning plan is the same one the exhaustive per-rooting
            sweep would pick, found in a fraction of the time.
        stats:
            ``"exact"``, ``"sampling"``, or a prebuilt
            :class:`QueryStats`.
        partitioning:
            ``"auto"``, ``"off"`` or a shard count; ``None`` (default)
            uses the planner's configured default.  When the resolved
            count exceeds 1 the plan executes against a hash-partitioned
            derivative of the catalog; the partitioned layout is chosen
            for the query's given rooting, so with ``driver="auto"`` a
            rerooted winner still runs correctly (merged-view indexes)
            but only probes matching the shard key fan out.
        planning_budget_ms:
            Per-call override of the planner's configured planning
            budget (see the class docstring): order searches run under
            a deadline and fall down the exhaustive -> IDP -> beam
            ladder when they overrun it.  For a cyclic query the
            deadline additionally bounds the candidate-tree sweep (the
            greedy Kruskal tree is always fully evaluated, so a plan
            exists at any budget).
        tree_search:
            Cyclic queries only.  ``"joint"`` (default) searches
            spanning tree and join order together — candidate trees
            stream in ascending estimated-output order, each priced by
            the full cost model (tree join + expansion + residual
            filters) with its order search branch-and-bound pruned
            against the incumbent.  ``"greedy"`` evaluates only the
            Kruskal minimum-selectivity tree (the historical
            behaviour, exposed as the benchmark baseline).
        execution:
            ``"vectorized"``, ``"interpreted"`` or ``"auto"``; ``None``
            (default) uses the planner's configured default.  Both
            paths produce bit-identical results and counters — the
            knob never changes the chosen plan, only the kernels it
            runs on.
        cyclic_execution:
            Cyclic queries only.  ``"tree_filter"`` evaluates the
            spanning tree and filters residuals; ``"wcoj"`` evaluates
            the cyclic core with the worst-case-optimal operator
            (:mod:`repro.engine.wcoj`); ``"auto"`` (the planner default
            when ``None``) costs both —
            :func:`~repro.core.cyclic.wcoj_cost` vs. tree join +
            :func:`~repro.core.cyclic.residual_filter_cost` — and picks
            the cheaper strategy per query.  The resolved strategy (and
            the costed wcoj variable order) lands in the plan
            fingerprint and :class:`PlanSpec`; both strategies return
            bit-identical results.
        validate:
            ``"off"``, ``"basic"`` or ``"full"``; ``None`` (default)
            uses the planner's configured default.  When on, the
            produced plan is statically verified
            (:mod:`repro.analysis.planlint`) before being returned:
            error findings raise
            :class:`~repro.analysis.PlanVerificationError`, and all
            findings are attached as
            :attr:`PhysicalPlan.diagnostics`.  Like ``execution``, the
            knob never changes which plan is produced.
        robustness:
            ``"off"``, ``"bounded"`` or ``"auto"``; ``None`` (default)
            uses the planner's configured default.  ``"bounded"``
            derives guaranteed cardinality upper bounds
            (:mod:`repro.core.bounds`) and, when the estimated-optimal
            order's worst-case bound exceeds ``regret_factor`` times
            the best achievable bound, swaps to the bound-optimal
            order — capping worst-case regret at the configured factor.
            ``"auto"`` additionally arms runtime cardinality-feedback
            replanning (a :class:`~repro.service.session.QuerySession`
            behavior; a bare ``plan()`` treats it like ``"bounded"``
            plus the annotation).  The resolved value lands in the plan
            fingerprint, :class:`PlanSpec` and the session plan-cache
            key.
        placement:
            ``"local"`` or ``"distributed"``; ``None`` (default) uses
            the planner's configured default.  ``"distributed"`` stamps
            the plan for scatter/gather execution on a
            :class:`~repro.distributed.WorkerPool` — the session layer
            routes it there; a bare :meth:`PhysicalPlan.execute` still
            runs in-process.  Bit-identical results and counters either
            way.  Resolved into the fingerprint, :class:`PlanSpec` and
            the session plan-cache key.
        num_workers:
            Worker-process count for ``placement="distributed"``
            (``0`` = auto: core count capped at
            :data:`~repro.distributed.placement.DEFAULT_MAX_WORKERS`);
            ``None`` (default) uses the planner's configured default.
            Always resolves to 0 under local placement.
        """
        if optimizer not in self.OPTIMIZERS:
            raise ValueError(
                f"optimizer must be one of {self.OPTIMIZERS}, got {optimizer!r}"
            )
        if tree_search not in ("joint", "greedy"):
            raise ValueError(
                f'tree_search must be "joint" or "greedy", got {tree_search!r}'
            )
        if cyclic_execution is None:
            cyclic_execution = self.cyclic_execution
        if cyclic_execution not in CYCLIC_EXECUTION_CHOICES:
            raise ValueError(
                f"cyclic_execution must be one of "
                f"{CYCLIC_EXECUTION_CHOICES}, got {cyclic_execution!r}"
            )
        if validate is None:
            validate = self.validate
        if validate not in VALIDATE_CHOICES:
            raise ValueError(
                f"validate must be one of {VALIDATE_CHOICES}, "
                f"got {validate!r}"
            )
        if robustness is None:
            robustness = self.robustness
        robustness = resolve_robustness(robustness)
        if planning_budget_ms is None:
            planning_budget_ms = self.planning_budget_ms
        deadline = (
            time.perf_counter() + planning_budget_ms / 1e3
            if planning_budget_ms else None
        )
        execution = self.resolve_execution(execution)
        placement = self.resolve_placement(placement)
        num_workers = self.resolve_num_workers(num_workers, placement)
        prep = self._prepare(query, partitioning, stats)
        join_query = prep.join_query
        num_relations = (
            join_query.num_relations if join_query is not None
            else len(prep.query.relations)
        )
        optimizer = self.resolve_optimizer(
            optimizer, num_relations, planning_budget_ms
        )
        modes = (
            ExecutionMode.all_modes()
            if mode == "auto"
            else [ExecutionMode(mode)]
        )
        if join_query is None:
            return self._validated(
                self._placed(
                    self._plan_cyclic(
                        prep, modes, optimizer, driver, stats, deadline,
                        tree_search, execution, cyclic_execution, robustness,
                    ),
                    placement, num_workers,
                ),
                prep, validate,
            )
        if driver == "auto" and join_query.num_relations > 1:
            return self._validated(
                self._placed(
                    self._plan_driver_auto(
                        prep, modes, optimizer, stats, flat_output, deadline,
                        execution, robustness,
                    ),
                    placement, num_workers,
                ),
                prep, validate,
            )
        best = None
        rooted = join_query
        rooted_stats = self.derive_stats(prep.stats_catalog, rooted, stats,
                                         data_token=prep.data_token)
        # One memo per rooting: every strategy's order search and
        # costing share the same survival/Eq. (1) subset tables.
        memo = CostMemo(rooted)
        for candidate_mode in modes:
            order, child_orders = self._order_for_mode(
                rooted, rooted_stats, candidate_mode, optimizer, memo,
                deadline=deadline,
            )
            cost = self._cost(rooted, rooted_stats, order,
                              candidate_mode, flat_output, memo)
            if best is None or cost < best.predicted_cost:
                best = PhysicalPlan(
                    catalog=prep.catalog,
                    query=rooted,
                    order=order,
                    mode=candidate_mode,
                    stats=rooted_stats,
                    predicted_cost=cost,
                    child_orders=child_orders,
                    weights=self.weights,
                    num_shards=prep.effective_shards,
                    execution=execution,
                )
        best = self._apply_robustness(
            robustness, best, prep, modes, optimizer, deadline, flat_output,
        )
        best = self._placed(best, placement, num_workers)
        return self._validated(best, prep, validate)

    @staticmethod
    def _placed(plan, placement, num_workers):
        """Stamp the resolved placement knobs on a produced plan."""
        if plan is not None:
            plan.placement = placement
            plan.num_workers = num_workers
        return plan

    def _validated(self, plan, prep, validate):
        """Apply the resolved ``validate`` level to a produced plan.

        Error findings raise
        :class:`~repro.analysis.PlanVerificationError`; otherwise all
        findings (warnings, infos) are attached as
        :attr:`PhysicalPlan.diagnostics`.  The verifier caches verdicts
        per plan fingerprint, so re-planning an already-verified plan
        (or rehydrating its spec) costs a dictionary lookup.
        """
        if validate == "off" or plan is None:
            return plan
        source = prep.query if isinstance(prep.query, ParsedQuery) else None
        result = self._verifier.verify_plan(
            plan, source=source, level=validate
        )
        plan.diagnostics = tuple(result.diagnostics)
        return plan

    # ------------------------------------------------------------------
    # Pessimistic bounded-regret planning (the robustness knob)
    # ------------------------------------------------------------------

    def _bound_stats(self, rooted, catalog, data_token=None):
        """Bound statistics (``m=1, fo=max-frequency``) for a rooting.

        Max-frequency derivation is O(edges) over catalog-cached hash
        indexes and memoized through the stats cache under a
        rooting-independent signature, exactly like
        :func:`~repro.core.stats.directed_stats_from_data` — every
        candidate rooting of one join graph shares a single derivation.
        """
        def derive():
            return max_frequencies_from_data(catalog, rooted)

        if self.stats_cache is not None and data_token is not None:
            max_freqs, sizes = self.stats_cache.get_or_derive_signature(
                data_token, bound_signature(rooted), "exact", derive,
            )
        else:
            max_freqs, sizes = derive()
        return bound_stats_for_rooting(rooted, max_freqs, sizes)

    def _apply_robustness(self, robustness, plan, prep, modes, optimizer,
                          deadline, flat_output, extra_cost=0.0):
        """Tag, annotate and (possibly) re-order a winning plan.

        ``"off"`` tags the plan and returns it untouched.  Otherwise:

        1. derive bound statistics and find the **bound-optimal** order
           — the existing order search under ``ExecutionMode.STD``
           minimizes the worst-case objective exactly (see
           :mod:`repro.core.bounds`);
        2. the bounded-regret gate: if the estimated-optimal order's
           worst-case cost exceeds ``regret_factor`` times the
           bound-optimal order's, swap to the bound-optimal order and
           re-price it under the *estimated* statistics across the
           requested non-semi-join modes (semi-join child orders are
           entangled with their own phase-1 search, and full reduction
           already discards doomed tuples before the join, so SJ-only
           mode requests keep their plan and only gain annotations);
        3. annotate the final order with its guaranteed per-prefix
           cardinality bounds and worst-case cost.

        Guarantee: the returned plan's worst-case bound cost is at most
        ``regret_factor`` times the best achievable worst-case bound
        cost, no matter how wrong the estimates were.  ``extra_cost``
        rides along when the caller's predicted cost includes an
        order-invariant term (a cyclic winner's residual filters).
        """
        if plan is None:
            return None
        plan.robustness = robustness
        if robustness == "off":
            return plan
        rooted = plan.query
        bound_stats = self._bound_stats(rooted, prep.stats_catalog,
                                        data_token=prep.data_token)
        memo_bound = CostMemo(rooted)
        current_bound = worst_case_cost(
            rooted, bound_stats, plan.order, eps=self.eps,
            weights=self.weights, memo=memo_bound,
        )
        robust_order, _ = self._order_for_mode(
            rooted, bound_stats, ExecutionMode.STD, optimizer, memo_bound,
            deadline=deadline,
        )
        optimal_bound = current_bound
        if robust_order is not None:
            optimal_bound = min(current_bound, worst_case_cost(
                rooted, bound_stats, robust_order, eps=self.eps,
                weights=self.weights, memo=memo_bound,
            ))
        swap_modes = [m for m in modes if not m.uses_semijoin]
        if (robust_order is not None and swap_modes
                and current_bound > self.regret_factor * optimal_bound):
            best_mode = best_cost = None
            memo = CostMemo(rooted)
            for candidate_mode in swap_modes:
                cost = self._cost(rooted, plan.stats, robust_order,
                                  candidate_mode, flat_output, memo)
                if best_cost is None or cost < best_cost:
                    best_mode, best_cost = candidate_mode, cost
            plan.order = list(robust_order)
            plan.mode = best_mode
            plan.child_orders = {}
            plan.predicted_cost = best_cost + extra_cost
            current_bound = optimal_bound
        plan.prefix_bounds = prefix_cardinality_bounds(
            bound_stats, plan.order
        )
        plan.worst_case_bound = current_bound
        return plan

    def replan(self, plan, corrected, mode="auto", optimizer="auto",
               flat_output=True):
        """Re-optimize an acyclic plan against corrected statistics.

        The cold half of runtime cardinality feedback
        (:mod:`repro.engine.feedback`): keeps the plan's derived
        catalog (selections already pushed down, partitioning already
        applied) and its tree edges, and re-runs the order + mode
        search with ``corrected`` — typically
        :func:`~repro.engine.feedback.corrected_stats` output built
        from a :class:`~repro.engine.feedback.ReplanSignal`'s
        observations.  Pass the original ``mode`` knob so a forced mode
        stays forced; ``"auto"`` re-picks the cheapest strategy.

        Robustness bound annotations are recomputed when the original
        plan carried them, so a replanned plan passes the same BOUND
        lint checks (the max-frequency read hits the catalog's index
        cache — the executed plan already built those indexes).
        """
        if plan.is_cyclic:
            raise ValueError(
                "replan() supports acyclic plans only (cyclic execution "
                "interleaves residual filters, so per-join feedback does "
                "not measure single edges)"
            )
        rooted = plan.query
        modes = (
            ExecutionMode.all_modes() if mode == "auto"
            else [ExecutionMode(mode)]
        )
        optimizer = self.resolve_optimizer(
            optimizer, rooted.num_relations, self.planning_budget_ms
        )
        memo = CostMemo(rooted)
        best = None
        for candidate_mode in modes:
            order, child_orders = self._order_for_mode(
                rooted, corrected, candidate_mode, optimizer, memo,
            )
            cost = self._cost(rooted, corrected, order, candidate_mode,
                              flat_output, memo)
            if best is None or cost < best[0]:
                best = (cost, order, candidate_mode, child_orders)
        cost, order, new_mode, child_orders = best
        replanned = replace(
            plan, order=list(order), mode=new_mode,
            child_orders=child_orders, stats=corrected,
            predicted_cost=cost, diagnostics=(),
            prefix_bounds=(), worst_case_bound=0.0,
        )
        if plan.robustness != "off":
            bound_stats = self._bound_stats(rooted, plan.catalog)
            replanned.prefix_bounds = prefix_cardinality_bounds(
                bound_stats, replanned.order
            )
            replanned.worst_case_bound = worst_case_cost(
                rooted, bound_stats, replanned.order, eps=self.eps,
                weights=self.weights,
            )
        return replanned

    # ------------------------------------------------------------------
    # Driver choice at scale (cross-rooting search)
    # ------------------------------------------------------------------

    def _directed_stats(self, prep, method, sample_fraction=0.05, seed=0):
        """Direction-complete edge statistics for a driver search.

        One measurement (or sampling) pass covers both probe directions
        of every edge — every candidate rooting's :class:`QueryStats`
        is then assembled with dictionary work.  Cached in the stats
        cache under the *undirected* query signature, so repeated
        ``driver="auto"`` plans (and plans over rerooted variants of
        one graph) share a single derivation.
        """
        catalog, join_query = prep.stats_catalog, prep.join_query
        if method == "exact":
            def derive():
                return directed_stats_from_data(catalog, join_query)
        elif method == "sampling":
            def derive():
                return self._directed_sampling_stats(
                    catalog, join_query, sample_fraction, seed
                )
        else:
            raise ValueError(
                f"stats method must be 'exact', 'sampling' or a QueryStats; "
                f"got {method!r}"
            )
        if self.stats_cache is not None and prep.data_token is not None:
            method_key = self._stats_method_key(method, sample_fraction,
                                                seed)
            return self.stats_cache.get_or_derive_directed(
                prep.data_token, join_query, method_key, derive
            )
        return derive()

    @staticmethod
    def _directed_sampling_stats(catalog, query, sample_fraction, seed):
        """Sampling-based :func:`directed_stats_from_data` equivalent.

        Each direction's estimate is built exactly as
        :meth:`derive_stats` would for a rooting that orients the edge
        that way (same constructor arguments, same seed), so assembled
        per-rooting stats are bit-identical to the per-rooting path.
        """
        from .estimation.sampling import CorrelatedSample

        directed = {}
        for rel_a, attr_a, rel_b, attr_b in query.undirected_edges():
            for parent, parent_attr, child, child_attr in (
                (rel_a, attr_a, rel_b, attr_b),
                (rel_b, attr_b, rel_a, attr_a),
            ):
                estimate = CorrelatedSample(
                    catalog.table(parent),
                    catalog.table(child),
                    parent_attr,
                    child_attr,
                    sample_fraction=sample_fraction,
                    seed=seed,
                ).estimate()
                directed[(parent, child)] = EdgeStats(
                    m=estimate.m, fo=max(estimate.fo, 1e-9)
                )
        sizes = {rel: len(catalog.table(rel)) for rel in query.relations}
        return directed, sizes

    def _plan_driver_auto(self, prep, modes, optimizer, stats, flat_output,
                          deadline, execution, robustness="off"):
        """The cross-rooting driver search (see :meth:`plan`).

        Three coordinated optimizations over the naive
        once-per-rooting sweep:

        1. **shared statistics** — both directions of every edge are
           measured once (:meth:`_directed_stats`); per-rooting stats
           are assembled, not re-derived, turning O(n) data scans into
           O(1);
        2. **proxy ranking** — every rooting gets a width-1 beam
           (greedy minimum-delta) plan first; rootings are evaluated
           in ascending proxy cost so the incumbent is strong early;
        3. **incumbent pruning** — each rooting's real order search
           runs with ``upper_bound`` set to the best full plan cost so
           far; DP states that reach it are dropped, and most losing
           rootings exit without finishing (delta costs are
           non-negative, and a plan's full cost only adds non-negative
           terms on top of the DP objective, so the bound is sound).
        """
        join_query = prep.join_query
        if isinstance(stats, QueryStats):
            # Edge statistics are directional: a prebuilt QueryStats
            # only describes the rooting it was derived for, so probing
            # other drivers with it would read edges that do not exist.
            raise ValueError(
                'driver="auto" needs per-rooting statistics; pass '
                'stats="exact" or "sampling" (prebuilt QueryStats are '
                "valid only for their own rooting)"
            )
        directed, sizes = self._directed_stats(prep, stats)
        proxy_mode = next(
            (mode for mode in modes if not mode.uses_semijoin), None
        )
        candidates = []
        for position, root in enumerate(join_query.relations):
            rooted = join_query.rerooted(root)
            rooted_stats = stats_for_rooting(rooted, directed, sizes)
            if self.stats_cache is not None and \
                    prep.data_token is not None:
                # register under the per-rooting key too (the same key
                # derive_stats would use): later fixed-driver plans of
                # any rooting reuse it
                method_key = self._stats_method_key(stats)
                rooted_stats = self.stats_cache.get_or_derive(
                    prep.data_token, rooted, method_key,
                    lambda built=rooted_stats: built,
                )
            # One memo per rooting (survival tables are
            # rooting-specific); shared by the proxy, every strategy's
            # order search, and the final costing.
            memo = CostMemo(rooted)
            if proxy_mode is not None:
                greedy = beam_order(
                    rooted, rooted_stats, mode=proxy_mode, eps=self.eps,
                    weights=self.weights, beam_width=1, memoize=memo,
                )
                proxy_cost = self._cost(rooted, rooted_stats, greedy.order,
                                        proxy_mode, flat_output, memo)
            else:
                proxy_cost = 0.0  # SJ-only: polynomial, nothing to prune
            candidates.append(
                (proxy_cost, position, rooted, rooted_stats, memo)
            )
        candidates.sort(key=lambda entry: (entry[0], entry[1]))
        best = None
        for _, _, rooted, rooted_stats, memo in candidates:
            for candidate_mode in modes:
                upper_bound = None
                if best is not None:
                    # The DP objective counts probes only; a plan's full
                    # cost adds tuple-generation terms with a guaranteed
                    # floor — the expected flat output size — whenever
                    # flat output is requested (the expansion step) or
                    # the mode materializes tuples (STD variants' last
                    # join emits the full result).  Subtracting that
                    # floor converts the incumbent's full cost into a
                    # sound, *tight* bound in DP units.
                    slack = 0.0
                    if flat_output or not candidate_mode.factorized:
                        slack = (
                            expected_output_size(rooted, rooted_stats)
                            * self.weights.tuple_generation
                        )
                    upper_bound = best.predicted_cost - slack
                    if upper_bound <= 0.0:
                        continue  # the floor alone reaches the incumbent
                order, child_orders = self._order_for_mode(
                    rooted, rooted_stats, candidate_mode, optimizer, memo,
                    upper_bound=upper_bound, deadline=deadline,
                )
                if order is None:
                    continue  # pruned: cannot beat the incumbent
                cost = self._cost(rooted, rooted_stats, order,
                                  candidate_mode, flat_output, memo)
                if best is None or cost < best.predicted_cost:
                    best = PhysicalPlan(
                        catalog=prep.catalog,
                        query=rooted,
                        order=order,
                        mode=candidate_mode,
                        stats=rooted_stats,
                        predicted_cost=cost,
                        child_orders=child_orders,
                        weights=self.weights,
                        num_shards=prep.effective_shards,
                        execution=execution,
                    )
        return self._apply_robustness(
            robustness, best, prep, modes, optimizer, deadline, flat_output,
        )

    # ------------------------------------------------------------------
    # Cyclic queries: joint spanning-tree + join-order search
    # ------------------------------------------------------------------

    def _cyclic_directed_stats(self, prep, method, sample_fraction=0.05,
                               seed=0):
        """Direction-complete predicate statistics for a cyclic query.

        One measurement (or sampling) pass covers both probe directions
        of *every* join predicate — tree edges and residuals alike — so
        each candidate spanning tree's :class:`QueryStats`, every
        rooting of it, and every residual selectivity are assembled
        with dictionary work.  Cached under the rooting-free
        :func:`~repro.core.cyclic.cyclic_signature`, so repeated cyclic
        plans of one join graph share a single derivation.
        """
        catalog, parsed = prep.stats_catalog, prep.query
        if method == "exact":
            def derive():
                return cyclic_directed_stats(catalog, parsed)
        elif method == "sampling":
            def derive():
                return self._cyclic_sampling_stats(
                    catalog, parsed, sample_fraction, seed
                )
        else:
            raise ValueError(
                f"stats method must be 'exact' or 'sampling' for a cyclic "
                f"query; got {method!r}"
            )
        if self.stats_cache is not None and prep.data_token is not None:
            method_key = self._stats_method_key(method, sample_fraction,
                                                seed)
            return self.stats_cache.get_or_derive_signature(
                prep.data_token,
                cyclic_signature(parsed),
                f"cyclic-directed:{method_key}",
                derive,
            )
        return derive()

    @staticmethod
    def _cyclic_sampling_stats(catalog, parsed, sample_fraction, seed):
        """Sampling-based :func:`cyclic_directed_stats` equivalent.

        Each direction's estimate is built exactly as
        :meth:`derive_stats` would for a tree that orients the
        predicate that way (same constructor arguments, same seed).
        """
        from .estimation.sampling import CorrelatedSample

        directed = {}
        for rel_a, attr_a, rel_b, attr_b in parsed.join_predicates:
            if (rel_a, attr_a, rel_b, attr_b) in directed:
                continue
            for parent, parent_attr, child, child_attr in (
                (rel_a, attr_a, rel_b, attr_b),
                (rel_b, attr_b, rel_a, attr_a),
            ):
                estimate = CorrelatedSample(
                    catalog.table(parent),
                    catalog.table(child),
                    parent_attr,
                    child_attr,
                    sample_fraction=sample_fraction,
                    seed=seed,
                ).estimate()
                directed[(parent, parent_attr, child, child_attr)] = \
                    EdgeStats(m=estimate.m, fo=max(estimate.fo, 1e-9))
        sizes = {
            alias: len(catalog.table(alias)) for alias in parsed.relations
        }
        return directed, sizes

    def _cyclic_distincts(self, prep):
        """Per-attribute distinct counts for the wcoj cost model.

        Measured once per (data, join-graph) pair — the counts depend
        on neither the spanning tree nor the rooting, so they share the
        rooting-free :func:`~repro.core.cyclic.cyclic_signature` cache
        slot family with the directed stats.
        """
        catalog, parsed = prep.stats_catalog, prep.query

        def derive():
            return cyclic_attr_distincts(catalog, parsed)

        if self.stats_cache is not None and prep.data_token is not None:
            return self.stats_cache.get_or_derive_signature(
                prep.data_token,
                cyclic_signature(parsed),
                "cyclic-distincts",
                derive,
            )
        return derive()

    def _plan_cyclic(self, prep, modes, optimizer, driver, stats, deadline,
                     tree_search, execution, cyclic_execution,
                     robustness="off"):
        """Joint spanning-tree + join-order search for a cyclic query.

        The cyclic analogue of :meth:`_plan_driver_auto`, one level up:

        1. **shared statistics** — both directions of every join
           predicate are measured once; candidate-tree stats and
           residual selectivities are assembled, not re-derived;
        2. **ranked candidates** — spanning trees stream in
           approximately ascending estimated tree-output order (the
           greedy Kruskal minimum first, so the incumbent is strong
           immediately and the search can only match or beat greedy);
        3. **incumbent pruning** — each tree's fixed cost floor (the
           expansion of its expected output plus its residual-filter
           term, both order- and rooting-invariant) is subtracted from
           the incumbent's total cost to form the ``upper_bound`` for
           the tree's order searches; trees whose floor alone reaches
           the incumbent are skipped without any order search.

        Every candidate tree is priced by the *total* cost model —
        tree-join cost (flat output: residual filtering always pays the
        expansion) plus :func:`~repro.core.cyclic.residual_filter_cost`
        — so a tree with a slightly larger join output still wins when
        its probe structure or residuals are cheaper.  ``driver="auto"``
        re-roots each candidate tree (proxy-ranked, as in the acyclic
        driver search); a ``deadline`` bounds the candidate sweep after
        the greedy tree, which is always fully evaluated.

        ``cyclic_execution`` arbitrates the execution *strategy* on top
        of the winning tree: ``"auto"`` prices the worst-case-optimal
        operator (:func:`~repro.core.cyclic.wcoj_cost` over the greedy
        variable order) against the winning tree+filter plan and keeps
        the cheaper; ``"wcoj"`` / ``"tree_filter"`` force one side.  A
        wcoj plan still records the winning spanning tree — its
        residual split is what the edge-XOR-residual invariant and
        rehydration key on — but executes the full cyclic predicate
        set attribute-at-a-time instead.
        """
        parsed = prep.query
        if isinstance(stats, QueryStats):
            raise ValueError(
                "cyclic planning derives per-tree statistics; pass "
                'stats="exact" or "sampling" (a prebuilt QueryStats only '
                "describes one rooting of one spanning tree)"
            )
        directed, sizes = self._cyclic_directed_stats(prep, stats)
        predicates = list(parsed.join_predicates)
        pair_sels = [
            edge_pair_selectivity(directed, sizes, predicate)
            for predicate in predicates
        ]
        tree_weights = [log_pair_weight(s) for s in pair_sels]
        max_trees = 1 if tree_search == "greedy" else self.max_spanning_trees
        relations = list(parsed.relations)
        roots = (
            relations if driver == "auto" and len(relations) > 1
            else [relations[0]]
        )
        proxy_mode = next(
            (mode for mode in modes if not mode.uses_semijoin), None
        )
        best = None
        candidate_trees = enumerate_spanning_trees(
            relations, predicates, tree_weights, max_trees=max_trees
        )
        for tree_index, tree in enumerate(candidate_trees):
            if tree_index and deadline is not None \
                    and time.perf_counter() > deadline:
                break  # anytime: the greedy tree is always evaluated
            in_tree = set(tree)
            tree_predicates = [predicates[index] for index in tree]
            residual_pairs = sorted(
                (pair_sels[index], index)
                for index in range(len(predicates))
                if index not in in_tree
            )
            # applied most-reducing first, matching residual_filter_cost
            residuals = tuple(
                ResidualPredicate(*predicates[index])
                for _, index in residual_pairs
            )
            residual_sels = tuple(sel for sel, _ in residual_pairs)

            # Same proxy-rank-then-prune shape as _plan_driver_auto's
            # rooting loop, with two deliberate differences: the slack
            # below adds the tree's residual term, and per-rooting stats
            # are NOT pre-registered in the stats cache — every tree's
            # rootings assemble from the one shared directed map, and
            # registering up to max_spanning_trees x n per-rooting
            # entries would churn the cache for keys no fixed-driver
            # plan will ever ask for.
            candidates = []
            for position, root in enumerate(roots):
                # root the already-materialized tree edges directly; the
                # predicate-multiset subtraction behind
                # tree_query_from_residuals is root-independent and
                # would be redone once per rooting
                rooted = _rooted_tree(relations, tree_predicates, root)
                rooted_stats = stats_for_tree(rooted, directed, sizes)
                memo = CostMemo(rooted)
                if len(roots) > 1 and proxy_mode is not None:
                    greedy = beam_order(
                        rooted, rooted_stats, mode=proxy_mode, eps=self.eps,
                        weights=self.weights, beam_width=1, memoize=memo,
                    )
                    proxy_cost = self._cost(rooted, rooted_stats,
                                            greedy.order, proxy_mode, True,
                                            memo)
                else:
                    proxy_cost = 0.0
                candidates.append(
                    (proxy_cost, position, rooted, rooted_stats, memo)
                )
            candidates.sort(key=lambda entry: (entry[0], entry[1]))

            # Order- and rooting-invariant cost floor of this tree: the
            # expansion of its expected flat output plus the residual
            # filters over it.  Subtracted from the incumbent to form
            # the order searches' branch-and-bound bound (the same
            # soundness argument as the driver search's slack).
            expected_out = expected_output_size(
                candidates[0][2], candidates[0][3]
            )
            residual_cost = residual_filter_cost(
                expected_out, residual_sels, self.weights
            )
            slack = residual_cost \
                + expected_out * self.weights.tuple_generation
            if best is not None and slack >= best.predicted_cost:
                continue  # the floor alone reaches the incumbent

            for _, _, rooted, rooted_stats, memo in candidates:
                for candidate_mode in modes:
                    upper_bound = None
                    if best is not None:
                        upper_bound = best.predicted_cost - slack
                        if upper_bound <= 0.0:
                            continue
                    order, child_orders = self._order_for_mode(
                        rooted, rooted_stats, candidate_mode, optimizer,
                        memo, upper_bound=upper_bound, deadline=deadline,
                    )
                    if order is None:
                        continue  # pruned: cannot beat the incumbent
                    total = self._cost(
                        rooted, rooted_stats, order, candidate_mode, True,
                        memo,
                    ) + residual_cost
                    if best is None or total < best.predicted_cost:
                        best = PhysicalPlan(
                            catalog=prep.source_catalog,
                            query=rooted,
                            order=order,
                            mode=candidate_mode,
                            stats=rooted_stats,
                            predicted_cost=total,
                            child_orders=child_orders,
                            weights=self.weights,
                            num_shards=1,
                            residuals=residuals,
                            residual_selectivities=residual_sels,
                            execution=execution,
                        )
        if best is not None:
            # Gate the winning *tree* order before strategy arbitration
            # (wcoj keeps the tree order; only the strategy flag and
            # cost change after this).  The residual-filter term is
            # order-invariant for the winning tree, so it rides along
            # as extra cost when the gate re-prices a swapped order.
            best = self._apply_robustness(
                robustness, best, prep, modes, optimizer, deadline, True,
                extra_cost=residual_filter_cost(
                    expected_output_size(best.query, best.stats),
                    best.residual_selectivities, self.weights,
                ),
            )
        if cyclic_execution != "tree_filter" and best.residuals:
            distincts = self._cyclic_distincts(prep)
            classes = variable_classes(predicates)
            variable_order = plan_variable_order(classes, distincts)
            strategy_cost = wcoj_cost(
                variable_order, distincts, sizes, self.weights
            )
            if cyclic_execution == "wcoj" \
                    or strategy_cost < best.predicted_cost:
                best.cyclic_strategy = "wcoj"
                best.wcoj_variable_order = variable_order
                best.predicted_cost = strategy_cost
        # Partitioning follows the winning tree's probe attributes, so
        # it is applied only now (content-addressed, like every plan).
        catalog, effective_shards = self._apply_partitioning(
            prep.query, prep.source_catalog, best.query, prep.num_shards,
            prep.partition_floor, prep.content_token,
        )
        best.catalog = catalog
        best.num_shards = effective_shards
        return best

    # ------------------------------------------------------------------
    # Plan-spec rehydration (process-pool planning)
    # ------------------------------------------------------------------

    def rehydrate(self, spec, query, partitioning=None, validate=None):
        """A :class:`PhysicalPlan` from a :class:`PlanSpec` planned
        elsewhere (typically a planning-worker process).

        ``query`` must be the same query the spec was planned for and
        this planner's catalog must hold the same content the spec was
        planned against (checked via the spec's pinned fingerprint).
        The execution catalog is derived locally through the same
        content-addressed caches :meth:`plan` uses, so rehydration costs
        a push-down plus cache lookups — never an order search.

        With ``validate`` on (``None`` uses the planner's default), the
        arriving spec is statically verified before rehydration and the
        rehydrated plan after it; a worker-planned spec that survived
        the trip fingerprints identically to a locally planned twin, so
        the plan-level verdict is usually already cached.
        """
        if validate is None:
            validate = self.validate
        if validate not in VALIDATE_CHOICES:
            raise ValueError(
                f"validate must be one of {VALIDATE_CHOICES}, "
                f"got {validate!r}"
            )
        if spec.catalog_fingerprint != self.catalog.fingerprint():
            raise ValueError(
                "stale PlanSpec: the catalog content changed since it "
                "was planned (fingerprint mismatch)"
            )
        if isinstance(query, str):
            query = parse_query(query)
        if validate != "off":
            self._verifier.verify_spec(spec, query=query,
                                       catalog=self.catalog)
        residuals = tuple(getattr(spec, "residuals", ()))
        tree = None
        if residuals:
            if not isinstance(query, ParsedQuery):
                raise ValueError(
                    "a cyclic PlanSpec (with residuals) can only be "
                    "rehydrated against the ParsedQuery it was planned for"
                )
            # The spec's residuals identify the resolved spanning tree:
            # the query's predicate multiset minus them, rooted at the
            # spec's driver.
            tree = tree_query_from_residuals(query, residuals, spec.root)
        prep = self._prepare(query, partitioning, tree=tree)
        rooted = tree if tree is not None \
            else prep.join_query.rerooted(spec.root)
        if prep.effective_shards != spec.num_shards:
            raise ValueError(
                f"PlanSpec was planned for {spec.num_shards} shard(s) "
                f"but this planner derives {prep.effective_shards}"
            )
        plan = PhysicalPlan(
            catalog=prep.catalog,
            query=rooted,
            order=list(spec.order),
            mode=ExecutionMode(spec.mode),
            stats=spec.stats,
            predicted_cost=spec.predicted_cost,
            child_orders={
                relation: list(children)
                for relation, children in spec.child_orders
            },
            weights=spec.weights,
            num_shards=spec.num_shards,
            residuals=residuals,
            residual_selectivities=tuple(
                getattr(spec, "residual_selectivities", ())
            ),
            execution=getattr(spec, "execution", "vectorized"),
            cyclic_strategy=getattr(spec, "cyclic_strategy", "tree_filter"),
            wcoj_variable_order=tuple(
                tuple(member)
                for member in getattr(spec, "wcoj_variable_order", ())
            ),
            robustness=getattr(spec, "robustness", "off"),
            prefix_bounds=tuple(getattr(spec, "prefix_bounds", ())),
            worst_case_bound=getattr(spec, "worst_case_bound", 0.0),
            placement=getattr(spec, "placement", "local"),
            num_workers=getattr(spec, "num_workers", 0),
        )
        if validate != "off":
            source = query if isinstance(query, ParsedQuery) else None
            result = self._verifier.verify_plan(
                plan, source=source, level=validate
            )
            plan.diagnostics = tuple(result.diagnostics)
        return plan
