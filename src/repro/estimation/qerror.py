"""Q-error, the standard cardinality-estimation accuracy metric.

Used by Figure 4 to compare the naive and sampling-based estimators of
match probability and fanout (Moerkotte et al., "Preventing bad plans
by bounding the impact of cardinality estimation errors").
"""

from __future__ import annotations

import numpy as np

__all__ = ["q_error", "mean_q_error", "running_q_error"]

#: floor applied to both estimate and truth, avoiding division blow-ups
_FLOOR = 1e-9


def q_error(estimate, truth, floor=_FLOOR):
    """``max(estimate / truth, truth / estimate)`` with floor guards.

    A perfect estimate scores 1.0; the metric is symmetric in over- and
    under-estimation.  Zero (or near-zero) values are floored so that an
    estimator that predicts "no match" for a genuinely empty join is not
    penalized with infinity.
    """
    est = max(float(estimate), floor)
    tru = max(float(truth), floor)
    return max(est / tru, tru / est)


def mean_q_error(estimates, truths, floor=_FLOOR):
    """Average q-error over paired arrays (returns mean and std).

    Vectorized: both arrays are floored elementwise and the symmetric
    ratio is taken with :func:`numpy.maximum`, matching :func:`q_error`
    pair for pair.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    truths = np.asarray(truths, dtype=np.float64)
    if estimates.shape != truths.shape:
        raise ValueError(
            f"shape mismatch: {estimates.shape} vs {truths.shape}"
        )
    if estimates.size == 0:
        return 0.0, 0.0
    est = np.maximum(estimates, floor)
    tru = np.maximum(truths, floor)
    errors = np.maximum(est / tru, tru / est)
    return float(errors.mean()), float(errors.std())


def running_q_error(previous, estimate, truth, floor=_FLOOR):
    """Running maximum q-error, one O(1) scalar update per observation.

    The executor's cardinality-feedback loop calls this once per join
    step with the estimated and observed edge selectivities; no arrays
    are materialized.  Seed with ``1.0`` (an empty prefix is exact).
    """
    return max(float(previous), q_error(estimate, truth, floor))
