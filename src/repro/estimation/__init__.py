"""Match-probability and fanout estimation (Section 3.2)."""

from .naive import (
    naive_estimate,
    naive_estimate_from_tables,
    predicate_selectivity,
)
from .qerror import mean_q_error, q_error, running_q_error
from .sampling import CorrelatedSample, true_join_stats

__all__ = [
    "CorrelatedSample",
    "mean_q_error",
    "naive_estimate",
    "naive_estimate_from_tables",
    "predicate_selectivity",
    "q_error",
    "running_q_error",
    "true_join_stats",
]
