"""Naive (uniformity + independence) estimator of match prob and fanout.

Section 3.2: for a join ``R |><|_A S`` probed from ``R``,

.. math::

    m = V(A, S) / max(V(A, R), V(A, S)), \\qquad fo = |S| / V(A, S)

where ``V(A, X)`` is the number of distinct ``A`` values in ``X``.  A
predicate on ``S`` with selectivity ``s_p`` scales the fanout, unless
``s_p |S| < V(A, S)`` in which case matching values themselves become
scarce: then ``fo = 1`` and ``m = min(s_p |S| / V(A, R), 1)``.
"""

from __future__ import annotations

import numpy as np

from ..core.stats import EdgeStats

__all__ = ["naive_estimate", "naive_estimate_from_tables", "predicate_selectivity"]


def naive_estimate(
    distinct_probe,
    distinct_build,
    build_size,
    build_predicate_selectivity=1.0,
):
    """Estimate :class:`EdgeStats` from distinct counts and sizes.

    Parameters
    ----------
    distinct_probe:
        ``V(A, R)``: distinct join values on the probing side.
    distinct_build:
        ``V(A, S)``: distinct join values on the build side.
    build_size:
        ``|S|`` after any predicate-independent filtering.
    build_predicate_selectivity:
        ``s_p``: selectivity of a predicate applied to ``S``.
    """
    if distinct_probe <= 0 or distinct_build <= 0 or build_size <= 0:
        return EdgeStats(m=0.0, fo=1.0)
    v_max = max(distinct_probe, distinct_build)
    m = distinct_build / v_max
    fo = build_size / distinct_build
    s_p = build_predicate_selectivity
    if s_p < 1.0:
        if s_p * build_size < distinct_build:
            # Fewer surviving tuples than distinct values: each surviving
            # value appears once, and values themselves become scarce.
            fo = 1.0
            m = min(s_p * build_size / distinct_probe, 1.0)
        else:
            fo = max(fo * s_p, 1.0)
    return EdgeStats(m=min(m, 1.0), fo=fo)


def predicate_selectivity(table, predicate):
    """Fraction of ``table`` rows satisfying an equality predicate map."""
    if not predicate:
        return 1.0
    mask = np.ones(len(table), dtype=bool)
    for column, value in predicate.items():
        mask &= table.column(column) == value
    if len(mask) == 0:
        return 0.0
    return float(mask.mean())


def naive_estimate_from_tables(
    probe_table,
    build_table,
    probe_attr,
    build_attr,
    build_predicate=None,
    probe_predicate=None,
):
    """Naive estimate using only per-table summary statistics.

    Only distinct counts and predicate selectivities are consulted —
    never the joint distribution — which is exactly the information a
    classical optimizer keeps and the reason this estimator degrades on
    correlated data (Figure 4).  The probe-side predicate does not
    change ``m`` or ``fo`` under independence, so it is accepted solely
    for interface symmetry.
    """
    del probe_predicate  # independence assumption: no effect on (m, fo)
    s_p = predicate_selectivity(build_table, build_predicate or {})
    return naive_estimate(
        distinct_probe=probe_table.distinct_count(probe_attr),
        distinct_build=build_table.distinct_count(build_attr),
        build_size=len(build_table),
        build_predicate_selectivity=s_p,
    )
