"""Correlated sampling estimator (join synopses, Section 3.2 / Figure 4).

Adapting Acharya et al.'s join synopses: sample tuples uniformly from
the probing relation and store, per sampled tuple, its match count in
the build relation plus a uniform sample of the matching build rows.
The synopsis answers match-probability and fanout queries of the form
``sigma_{R.a = x and S.c = y}(R |><|_B S)`` with appropriate scaling,
capturing cross-relation correlations the naive estimator misses.
"""

from __future__ import annotations

import numpy as np

from ..core.stats import EdgeStats
from ..storage.hashindex import HashIndex

__all__ = ["CorrelatedSample", "true_join_stats"]


class CorrelatedSample:
    """A join synopsis between a probe table and a build table.

    Parameters
    ----------
    probe_table, build_table:
        :class:`repro.storage.Table` instances.
    probe_attr, build_attr:
        The equi-join columns.
    sample_fraction:
        Fraction of probe tuples sampled uniformly at random.
    max_matches_per_tuple:
        Cap on stored matches per sampled tuple; counts beyond the cap
        are retained exactly, only the stored rows are subsampled, and
        estimates are scaled accordingly.
    """

    def __init__(
        self,
        probe_table,
        build_table,
        probe_attr,
        build_attr,
        sample_fraction=0.01,
        max_matches_per_tuple=64,
        seed=0,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        self.probe_table = probe_table
        self.build_table = build_table
        self.probe_attr = probe_attr
        self.build_attr = build_attr
        rng = np.random.default_rng(seed)
        n = len(probe_table)
        sample_size = max(1, int(round(sample_fraction * n)))
        self.sample_rows = rng.choice(n, size=min(sample_size, n), replace=False)
        index = HashIndex(build_table.column(build_attr))
        keys = probe_table.column(probe_attr)[self.sample_rows]
        lookup = index.lookup(keys)
        self.match_counts = lookup.counts
        flat_matches = lookup.matching_rows()
        # Per-tuple slices into flat_matches; subsample over-long ones.
        offsets = np.concatenate(([0], np.cumsum(self.match_counts)))
        kept_rows = []
        kept_counts = np.zeros(len(self.sample_rows), dtype=np.int64)
        for i in range(len(self.sample_rows)):
            matches = flat_matches[offsets[i]:offsets[i + 1]]
            if len(matches) > max_matches_per_tuple:
                matches = rng.choice(
                    matches, size=max_matches_per_tuple, replace=False
                )
            kept_rows.append(matches)
            kept_counts[i] = len(matches)
        self.kept_counts = kept_counts
        self.kept_rows = (
            np.concatenate(kept_rows) if kept_rows else np.empty(0, np.int64)
        )
        self.kept_offsets = np.concatenate(([0], np.cumsum(kept_counts)))

    @property
    def sample_size(self):
        return len(self.sample_rows)

    def _probe_mask(self, probe_predicate):
        mask = np.ones(len(self.sample_rows), dtype=bool)
        for column, value in (probe_predicate or {}).items():
            mask &= self.probe_table.column(column)[self.sample_rows] == value
        return mask

    def _surviving_counts(self, build_predicate):
        """Estimated matches per sampled tuple after the build predicate."""
        if not build_predicate:
            return self.match_counts.astype(np.float64)
        pass_mask = np.ones(len(self.kept_rows), dtype=bool)
        for column, value in build_predicate.items():
            pass_mask &= self.build_table.column(column)[self.kept_rows] == value
        passing_per_tuple = np.add.reduceat(
            np.concatenate((pass_mask.astype(np.float64), [0.0])),
            self.kept_offsets[:-1],
        ) if len(self.kept_rows) else np.zeros(len(self.sample_rows))
        # reduceat quirk: empty slices copy the element at the offset;
        # zero them out explicitly.
        passing_per_tuple = np.where(self.kept_counts > 0, passing_per_tuple, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                self.kept_counts > 0,
                self.match_counts / np.maximum(self.kept_counts, 1),
                0.0,
            )
        return passing_per_tuple * scale

    def estimate(self, probe_predicate=None, build_predicate=None):
        """Estimate :class:`EdgeStats` for the predicated join."""
        probe_mask = self._probe_mask(probe_predicate)
        if not probe_mask.any():
            return EdgeStats(m=0.0, fo=1.0)
        surviving = self._surviving_counts(build_predicate)[probe_mask]
        matched = surviving > 0
        m = float(matched.mean())
        if matched.any():
            fo = float(surviving[matched].mean())
        else:
            fo = 1.0
        return EdgeStats(m=min(m, 1.0), fo=max(fo, 0.0))


def true_join_stats(
    probe_table,
    build_table,
    probe_attr,
    build_attr,
    probe_predicate=None,
    build_predicate=None,
):
    """Exact ``(m, fo)`` of a predicated join (ground truth for Figure 4)."""
    probe_mask = np.ones(len(probe_table), dtype=bool)
    for column, value in (probe_predicate or {}).items():
        probe_mask &= probe_table.column(column) == value
    build_mask = np.ones(len(build_table), dtype=bool)
    for column, value in (build_predicate or {}).items():
        build_mask &= build_table.column(column) == value
    probe_keys = probe_table.column(probe_attr)[probe_mask]
    if len(probe_keys) == 0:
        return EdgeStats(m=0.0, fo=1.0)
    build_rows = np.nonzero(build_mask)[0]
    index = HashIndex(build_table.column(build_attr), rows=build_rows)
    lookup = index.lookup(probe_keys)
    matched = lookup.matched_mask
    m = float(matched.mean())
    if matched.any():
        fo = float(lookup.counts[matched].mean())
    else:
        fo = 1.0
    return EdgeStats(m=m, fo=fo)
