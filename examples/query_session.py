"""Query-service layer: plan caching, prepared statements, batches.

A long-lived process (a server, a benchmark harness) should not pay
full optimization for every query.  `QuerySession` wraps the planner
with an LRU plan cache keyed on normalized query structure + a content
fingerprint of the catalog, memoizes statistics derivation, and adds
prepared statements (plan once, execute many with new constants).

Run with:  python examples/query_session.py
"""

import time

import numpy as np

from repro import QuerySession
from repro.storage import Catalog

# ----------------------------------------------------------------------
# 1. A small orders database with many-to-many joins.
# ----------------------------------------------------------------------
rng = np.random.default_rng(11)
catalog = Catalog()
num_customers = 1_500
catalog.add_table("customers", {
    "cid": np.arange(num_customers),
    "region": rng.integers(0, 8, num_customers),
})
num_orders = 6_000
catalog.add_table("orders", {
    "cid": rng.integers(0, num_customers, num_orders),
    "oid": np.arange(num_orders),
    "status": rng.integers(0, 4, num_orders),
})
catalog.add_table("items", {
    "oid": rng.integers(0, int(num_orders * 1.2), 20_000),
    "pid": rng.integers(0, 500, 20_000),
})

session = QuerySession(catalog)
SQL = ("select * from customers, orders, items "
       "where customers.cid = orders.cid and orders.oid = items.oid")

# ----------------------------------------------------------------------
# 2. Plan caching: the second plan() is a dictionary lookup.
# ----------------------------------------------------------------------
t0 = time.perf_counter()
plan = session.plan(SQL)
cold_ms = (time.perf_counter() - t0) * 1e3
t0 = time.perf_counter()
assert session.plan(SQL) is plan
cached_ms = (time.perf_counter() - t0) * 1e3
print(f"cold plan   {cold_ms:8.2f} ms   ({plan.mode}, driver={plan.query.root})")
print(f"cached plan {cached_ms:8.2f} ms   ({cold_ms / cached_ms:.0f}x faster)")
print(f"cache info: {session.cache_info()}")

# ----------------------------------------------------------------------
# 3. Prepared statements: plan once, bind new constants per execution.
# ----------------------------------------------------------------------
stmt = session.prepare(
    "select * from customers, orders "
    "where customers.cid = orders.cid and orders.status = ?"
)
print("\nprepared statement over order status:")
for status in range(4):
    report = stmt.execute(status)
    print(f"  status={status}: {report.result.output_size:6d} rows "
          f"plan={report.planning_seconds * 1e3:6.2f}ms "
          f"exec={report.execution_seconds * 1e3:6.2f}ms "
          f"{'(template reused)' if report.cache_hit else '(planned)'}")

# ----------------------------------------------------------------------
# 4. Batched execution with per-query budgets.
# ----------------------------------------------------------------------
batch = [
    SQL,
    "select * from customers, orders where customers.cid = orders.cid",
    "select * from orders, items where orders.oid = items.oid",
]
reports = session.execute_many(batch, budgets=[50_000_000, 2, 50_000_000])
print("\nbatch with per-query budgets:")
for report in reports:
    status = "ok" if report.ok else ("timeout" if report.timed_out else "error")
    print(f"  {status:8s} total={report.total_seconds * 1e3:7.2f}ms "
          f"cache_hit={report.cache_hit}")
