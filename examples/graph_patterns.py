"""Graph pattern matching: the workload class that motivates the paper.

Subgraph-pattern queries over a social graph are joins over
many-to-many edge tables, whose intermediate results explode under the
standard execution model.  This example matches the pattern

    reviewer --trusts--> influencer --rates--> item <--similar-- item'

over a simulated epinions-style dataset and compares the strategies.

Run with:  python examples/graph_patterns.py
"""

from repro import (
    ExecutionMode,
    JoinEdge,
    JoinQuery,
    execute,
    greedy_order,
    optimize_sj,
    stats_from_data,
)
from repro.workloads import build_dataset

# ----------------------------------------------------------------------
# 1. A simulated epinions social graph (Zipf-skewed many-to-many edges).
# ----------------------------------------------------------------------
dataset = build_dataset("epinions", scale=0.8, seed=42)
catalog = dataset.catalog
for name in catalog.table_names:
    print(f"  {name:<10} {len(catalog.table(name)):>8,} rows")

# ----------------------------------------------------------------------
# 2. The pattern as a join tree: trusts is the driver edge table; its
#    destination user must rate an item that is similar to another item.
# ----------------------------------------------------------------------
pattern = JoinQuery("trusts", [
    JoinEdge("trusts", "rates", "dst", "user"),
    JoinEdge("rates", "similar", "item", "src"),
    JoinEdge("trusts", "profiles", "src", "user"),
])

stats = stats_from_data(catalog, pattern)
print("\nPattern edge statistics:")
for relation in pattern.non_root_relations:
    print(f"  {relation:<10} m={stats.m(relation):.3f}  "
          f"fo={stats.fo(relation):.2f}  (s={stats.selectivity(relation):.2f})")

plan = greedy_order(pattern, stats, "survival")
sj_plan = optimize_sj(pattern, stats, factorized=True)
print(f"\nJoin order (survival heuristic): {plan.order}")

# ----------------------------------------------------------------------
# 3. Execute.  Factorized output shows the compression win; flat output
#    adds the expansion cost.
# ----------------------------------------------------------------------
print(f"\n{'mode':<10}{'hash probes':>14}{'weighted cost':>16}"
      f"{'matches':>12}{'time':>9}")
for mode in ExecutionMode.all_modes():
    result = execute(
        catalog, pattern, plan.order, mode,
        flat_output=False,
        child_orders=sj_plan.child_orders,
    )
    print(f"{str(mode):<10}{result.counters.hash_probes:>14,}"
          f"{result.weighted_cost():>16,.0f}"
          f"{result.output_size:>12,}{result.wall_time:>8.3f}s")

com = execute(catalog, pattern, plan.order, ExecutionMode.COM,
              flat_output=False)
compressed = com.factorized.total_entries()
print(f"\nFactorized size: {compressed:,} entries vs "
      f"{com.output_size:,} flat tuples "
      f"({com.output_size / max(compressed, 1):,.0f}x compression)")
