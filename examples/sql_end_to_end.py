"""End-to-end SQL: parse, plan (auto strategy + driver), execute, explain.

Also demonstrates cyclic-query handling: a triangle pattern is split
into a spanning tree plus a residual predicate (Section 2.1's standard
practice), executed with the factorized engine.

Run with:  python examples/sql_end_to_end.py
"""

import numpy as np

from repro import (
    Catalog,
    Planner,
    execute_cyclic,
    parse_query,
    spanning_tree_decomposition,
)

# ----------------------------------------------------------------------
# 1. A small message-board database.
# ----------------------------------------------------------------------
rng = np.random.default_rng(1)
catalog = Catalog()
n_users = 3_000
catalog.add_table("users", {
    "uid": np.arange(n_users),
    "country": rng.integers(0, 20, n_users),
})
n_posts = 12_000
catalog.add_table("posts", {
    "author": rng.integers(0, n_users, n_posts),
    "topic": rng.integers(0, 300, n_posts),
})
n_follows = 18_000
catalog.add_table("follows", {
    "src": rng.integers(0, n_users, n_follows),
    "dst": rng.integers(0, n_users, n_follows),
})
catalog.add_table("topics", {
    "topic": rng.integers(0, 400, 350),
})

# ----------------------------------------------------------------------
# 2. Plan an acyclic query straight from SQL.  mode="auto" lets the
#    cost model choose among the six strategies; driver="auto" tries
#    every relation as the pipeline driver.
# ----------------------------------------------------------------------
sql = (
    "select * from users, posts, topics, follows "
    "where users.uid = posts.author and posts.topic = topics.topic "
    "and users.uid = follows.src and users.country = 3"
)
planner = Planner(catalog)
plan = planner.plan(sql, mode="auto", driver="auto")
print(plan.explain())

result = plan.execute(flat_output=True)
print(f"\nExecuted: {result.output_size:,} tuples, "
      f"{result.counters.hash_probes:,} hash probes, "
      f"{result.wall_time:.3f}s "
      f"(predicted cost {plan.predicted_cost:,.0f}, "
      f"measured weighted cost {result.weighted_cost():,.0f})")

# ----------------------------------------------------------------------
# 3. A cyclic query: mutual-follow triangles.  The parser flags the
#    cycle; a spanning tree plus one residual predicate evaluates it.
# ----------------------------------------------------------------------
triangle_sql = (
    "select * from follows f1, follows f2, follows f3 "
    "where f1.dst = f2.src and f2.dst = f3.src and f3.dst = f1.src"
)
parsed = parse_query(triangle_sql)
print(f"\nTriangle query acyclic? {parsed.is_acyclic()}")

# Aliased relations need their own catalog entries.
from repro.planner import push_down_selections

aliased = push_down_selections(catalog, parsed)
cyclic_plan = spanning_tree_decomposition(parsed, driver="f1")
print(f"Spanning tree: {cyclic_plan.query}")
print(f"Residual predicates: {cyclic_plan.residuals}")

count, tree_result, _ = execute_cyclic(aliased, cyclic_plan, mode="COM")
print(f"Directed triangles found: {count:,} "
      f"(tree join produced {tree_result.counters.tuples_generated:,} "
      f"candidate entries, {tree_result.wall_time:.3f}s)")
