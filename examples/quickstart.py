"""Quickstart: build a small database, run a many-to-many join query
under all six execution strategies, and optimize the join order.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Catalog,
    ExecutionMode,
    JoinEdge,
    JoinQuery,
    exhaustive_optimal,
    execute,
    greedy_order,
    stats_from_data,
)

# ----------------------------------------------------------------------
# 1. Build a catalog: a tiny "orders" database with many-to-many joins.
#    Each customer places many orders; each order has many items; items
#    reference products, and customers have many support tickets.
# ----------------------------------------------------------------------
rng = np.random.default_rng(7)
catalog = Catalog()
num_customers = 2_000
catalog.add_table("customers", {
    "cid": np.arange(num_customers),
    "region": rng.integers(0, 10, num_customers),
})
num_orders = 8_000
catalog.add_table("orders", {
    "cid": rng.integers(0, num_customers, num_orders),
    "oid": np.arange(num_orders),
})
num_items = 25_000
catalog.add_table("items", {
    "oid": rng.integers(0, int(num_orders * 1.2), num_items),  # some dangle
    "pid": rng.integers(0, 500, num_items),
})
catalog.add_table("products", {
    "pid": rng.integers(0, 800, 600),  # not all referenced products exist
})
num_tickets = 5_000
catalog.add_table("tickets", {
    "cid": rng.integers(0, int(num_customers * 1.5), num_tickets),
})

# ----------------------------------------------------------------------
# 2. Declare the acyclic join query (a rooted join tree).
#    customers |><| orders |><| items |><| products, and
#    customers |><| tickets.
# ----------------------------------------------------------------------
query = JoinQuery("customers", [
    JoinEdge("customers", "orders", "cid", "cid"),
    JoinEdge("orders", "items", "oid", "oid"),
    JoinEdge("items", "products", "pid", "pid"),
    JoinEdge("customers", "tickets", "cid", "cid"),
])

# ----------------------------------------------------------------------
# 3. Measure statistics and optimize the join order.
# ----------------------------------------------------------------------
stats = stats_from_data(catalog, query)
print("Per-edge statistics (match probability m, fanout fo):")
for relation in query.non_root_relations:
    print(f"  {relation:<10} m={stats.m(relation):.3f}  "
          f"fo={stats.fo(relation):.2f}")

optimal = exhaustive_optimal(query, stats)
survival = greedy_order(query, stats, "survival")
rank = greedy_order(query, stats, "rank")
print(f"\nOptimal order (Algorithm 1): {optimal.order}  "
      f"cost={optimal.cost:,.0f}")
print(f"Survival heuristic:          {survival.order}")
print(f"Classical rank ordering:     {rank.order}")

# ----------------------------------------------------------------------
# 4. Execute under every strategy and compare probe counts.
# ----------------------------------------------------------------------
print(f"\n{'mode':<10}{'hash probes':>14}{'bv probes':>12}"
      f"{'sj probes':>12}{'output':>10}{'time':>10}")
for mode in ExecutionMode.all_modes():
    result = execute(catalog, query, optimal.order, mode, flat_output=True)
    c = result.counters
    print(f"{str(mode):<10}{c.hash_probes:>14,}{c.bitvector_probes:>12,}"
          f"{c.semijoin_probes:>12,}{result.output_size:>10,}"
          f"{result.wall_time:>9.3f}s")

print("\nNote how the factorized (COM) variants avoid the redundant "
      "probes that STD pays for every intermediate tuple.")
