"""Expensive probes: web services, APIs, LLM calls (Section 1).

The paper's formalism covers join operators whose "probe" is an
external call (a web service, an LLM, an expensive UDF): the probe cost
``c_i`` then dominates, and minimizing the *number of probes* is the
optimization objective because each probe costs money.  This example
models a pipeline enriching orders with three external services of very
different per-call prices and shows how (a) heterogeneous probe costs
change the optimal order, and (b) the factorized execution slashes the
bill by eliminating redundant calls.

Run with:  python examples/expensive_probes.py
"""

import numpy as np

from repro import (
    Catalog,
    ExecutionMode,
    JoinEdge,
    JoinQuery,
    QueryStats,
    exhaustive_optimal,
    execute,
    stats_from_data,
)

# ----------------------------------------------------------------------
# 1. Orders enriched by three "services" (modeled as relations whose
#    probes we price individually): a cheap geo lookup, a mid-priced
#    fraud score, and an expensive LLM summarizer keyed on the product.
# ----------------------------------------------------------------------
rng = np.random.default_rng(11)
catalog = Catalog()
n_orders = 5_000
catalog.add_table("orders", {
    "oid": np.arange(n_orders),
    "zip": rng.integers(0, 900, n_orders),
    "account": rng.integers(0, 2_000, n_orders),
    "product": rng.integers(0, 400, n_orders),
})
catalog.add_table("geo", {"zip": np.arange(700)})               # m ~ .78
catalog.add_table("fraud", {
    "account": np.repeat(rng.choice(2_000, 1_200, replace=False), 2),
})                                                              # m ~ .6, fo 2
catalog.add_table("llm_summary", {
    "product": np.repeat(rng.choice(400, 380, replace=False), 3),
})                                                              # m ~ .95, fo 3

query = JoinQuery("orders", [
    JoinEdge("orders", "geo", "zip", "zip"),
    JoinEdge("orders", "fraud", "account", "account"),
    JoinEdge("orders", "llm_summary", "product", "product"),
])

# Per-probe prices in cents: geo is cheap, the LLM call is 200x that.
PRICES = {"geo": 0.05, "fraud": 1.0, "llm_summary": 10.0}

measured = stats_from_data(catalog, query)
stats = QueryStats(
    measured.driver_size,
    {rel: measured.stats(rel) for rel in query.non_root_relations},
    probe_costs=PRICES,
    relation_sizes=measured.relation_sizes,
)

# ----------------------------------------------------------------------
# 2. Optimize with and without the probe prices.
# ----------------------------------------------------------------------
unpriced = QueryStats(stats.driver_size, stats.edge_stats)
plan_unpriced = exhaustive_optimal(query, unpriced)
plan_priced = exhaustive_optimal(query, stats)
print(f"Order ignoring prices:    {plan_unpriced.order}")
print(f"Order minimizing dollars: {plan_priced.order}")


def bill(order, mode):
    result = execute(catalog, query, order, mode, flat_output=False)
    cents = sum(
        PRICES[rel] * probes
        for rel, probes in result.counters.hash_probes_by_relation.items()
    )
    return cents, result.counters.hash_probes_by_relation


for mode in (ExecutionMode.STD, ExecutionMode.COM):
    for label, order in (("unpriced", plan_unpriced.order),
                         ("priced", plan_priced.order)):
        cents, per_rel = bill(order, mode)
        calls = ", ".join(f"{rel}={n:,}" for rel, n in per_rel.items())
        print(f"{str(mode):<4} {label:<9} bill=${cents/100:>10,.2f}  ({calls})")

print(
    "\nTwo effects compound: pricing the probes reorders the pipeline to\n"
    "shield the expensive service behind the selective cheap ones, and\n"
    "the factorized execution (COM) never calls a service twice for the\n"
    "same key of the same driver tuple — exactly the paper's point that\n"
    "probe minimization, not tuple counting, is the objective when\n"
    "probes are external calls."
)
