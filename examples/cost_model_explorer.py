"""Analytic cost-model exploration (the Figure 13 methodology).

No data is generated: the Section 3 cost formulas compare the five
practical strategies across the match-probability spectrum, and the
ASI counterexample of Theorem 3.1 is demonstrated numerically.

Run with:  python examples/cost_model_explorer.py
"""

from repro import (
    CostWeights,
    EdgeStats,
    ExecutionMode,
    JoinEdge,
    JoinQuery,
    QueryStats,
    plan_cost,
)
from repro.workloads import snowflake

# ----------------------------------------------------------------------
# 1. Sweep the match probability for a 3-2 snowflake, fanout 5,
#    equal-size relations (Figure 13's setting).
# ----------------------------------------------------------------------
query = snowflake(3, 2)
weights = CostWeights()
modes = [ExecutionMode.BVP_STD, ExecutionMode.SJ_STD, ExecutionMode.COM,
         ExecutionMode.BVP_COM, ExecutionMode.SJ_COM]

print("Estimated cost per strategy (3-2 snowflake, fo=5, N=100k):")
header = "m     " + "".join(f"{str(m):>12}" for m in modes)
print(header)
for m10 in range(1, 10):
    m = m10 / 10
    stats = QueryStats(
        100_000,
        {rel: EdgeStats(m=m, fo=5.0) for rel in query.non_root_relations},
        relation_sizes={rel: 100_000 for rel in query.relations},
    )
    order = list(query.non_root_relations)
    row = f"{m:<6.1f}"
    for mode in modes:
        cost = plan_cost(query, stats, order, mode, eps=0.01).total(weights)
        row += f"{cost:>12.3g}"
    print(row)

print(
    "\nReading the sweep: at low m the bitvector/semi-join variants win\n"
    "(they prune tuples before any probes); at high m pruning is useless\n"
    "overhead and plain COM is best — exactly Figure 13's crossover."
)

# ----------------------------------------------------------------------
# 2. Theorem 3.1: the COM cost function violates ASI, so rank ordering
#    cannot be optimal.  Which of two symmetric orders wins flips with
#    the fanouts — no rank function can encode that.
# ----------------------------------------------------------------------
def asi_example(fo2, fo3):
    q = JoinQuery("R1", [
        JoinEdge("R1", "R2", "a", "a"), JoinEdge("R1", "R3", "b", "b"),
        JoinEdge("R2", "R4", "c", "c"), JoinEdge("R2", "R5", "d", "d"),
        JoinEdge("R3", "R6", "e", "e"), JoinEdge("R3", "R7", "f", "f"),
    ])
    fo = {"R2": fo2, "R3": fo3, "R4": 1.0, "R5": 1.0, "R6": 1.0, "R7": 1.0}
    st = QueryStats(1.0, {r: EdgeStats(0.5, fo[r]) for r in fo})
    u_first = ["R2", "R3", "R4", "R7", "R5", "R6"]
    v_first = ["R2", "R3", "R4", "R7", "R6", "R5"]
    cost_u = plan_cost(q, st, u_first, ExecutionMode.COM,
                       flat_output=False).hash_probes
    cost_v = plan_cost(q, st, v_first, ExecutionMode.COM,
                       flat_output=False).hash_probes
    return cost_u, cost_v


print("\nTheorem 3.1 counterexample (orders ...R5,R6 vs ...R6,R5):")
for fo2, fo3 in ((2.0, 6.0), (6.0, 2.0)):
    cost_u, cost_v = asi_example(fo2, fo3)
    winner = "R5 first" if cost_u < cost_v else "R6 first"
    print(f"  fo2={fo2:.0f}, fo3={fo3:.0f}:  cost(R5 first)={cost_u:.4f}  "
          f"cost(R6 first)={cost_v:.4f}  -> {winner} wins")
print("  The preferred order flips with (fo2, fo3): ASI cannot hold.")
