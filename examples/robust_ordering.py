"""Robustness to the join order (Sections 3.7 and 5.7).

The paper's claim: once redundant probes are avoided (COM), execution
cost is far less sensitive to the join order, shrinking the payoff of
complex optimizers and precise selectivity estimation.  This example
runs ten random join orders of a snowflake query under each strategy
and reports the max/min spread.

Run with:  python examples/robust_ordering.py
"""

import numpy as np

from repro import ExecutionMode, execute, optimize_sj, stats_from_data
from repro.workloads import generate_dataset, snowflake, specs_from_ranges

# ----------------------------------------------------------------------
# 1. A 3-2 snowflake with moderately selective many-to-many joins.
# ----------------------------------------------------------------------
query = snowflake(3, 2)
specs = specs_from_ranges(query, (0.2, 0.7), (2.0, 6.0), seed=11)
dataset = generate_dataset(query, 4_000, specs, seed=11)
stats = stats_from_data(dataset.catalog, query)
sj_plan = optimize_sj(query, stats, factorized=True)

# ----------------------------------------------------------------------
# 2. Ten random join orders, all six strategies.
# ----------------------------------------------------------------------
rng = np.random.default_rng(3)
orders = [query.random_order(rng) for _ in range(10)]

print(f"{'mode':<10}{'best':>14}{'worst':>14}{'spread':>9}")
for mode in ExecutionMode.all_modes():
    costs = []
    for order in orders:
        result = execute(
            dataset.catalog, query, order, mode,
            flat_output=False,
            child_orders=sj_plan.child_orders,
        )
        costs.append(result.weighted_cost())
    best, worst = min(costs), max(costs)
    print(f"{str(mode):<10}{best:>14,.0f}{worst:>14,.0f}"
          f"{worst / best:>8.2f}x")

print(
    "\nSTD's cost swings widely with the order, while the factorized\n"
    "variants are far flatter — and SJ+COM is essentially constant\n"
    "(Theorem 3.5: with full reduction and no redundant probes, the\n"
    "phase-2 cost does not depend on the join order at all)."
)

# ----------------------------------------------------------------------
# 3. The theoretical fragility bounds of Section 3.7.
# ----------------------------------------------------------------------
from repro.core import theta_fragility

n = 10
for m_min, fo in ((0.2, 5.0), (0.5, 8.0)):
    s_min = m_min * fo
    print(
        f"\nStar query, n={n}, m_min={m_min}, fo={fo}: "
        f"theta(selectivity model, s_min={s_min:.1f}) = "
        f"{theta_fragility(s_min, n):,.2f}  vs  "
        f"theta(match model) = {theta_fragility(m_min, n):.2f}"
    )
