#!/usr/bin/env python3
"""Repo-invariant linter: static checks ruff/mypy can't express.

Pure stdlib (``ast`` + ``pathlib``); run from the repo root::

    python tools/check_invariants.py

Exit status 0 when every invariant holds, 1 with one line per finding
otherwise.  The rules encode contracts the engine relies on but which
live across files, so no single diff review sees them break:

RAW_KEY_EQ
    Join-key comparisons must route through the exactness layer
    (normalized searchsorted probes / ``_float_exact``), never ad-hoc
    ``==`` / ``!=`` on key values — a raw compare silently reintroduces
    the int/float 2**53 and NaN bugs the storage layer exists to
    prevent.  Applies to ``src/repro/engine`` and ``src/repro/storage``.
    Self-comparisons (``key != key``, the NaN test) and the allowlisted
    implementation sites of the exactness layer itself are exempt.

UNLOCKED_CACHE_MUTATION
    ``_entries`` / ``_inflight`` mark lock-guarded shared state (the
    ``LRUCache`` convention, also followed by the heavy-plan tracker).
    Only methods of the owning class may touch them (``self._...``),
    and any method doing so must hold ``self._lock`` in a ``with``
    block.  Reaching into another object's ``_entries`` bypasses its
    lock; touching your own without the lock is a data race under the
    concurrent planning the service layer promises.

UNSORTED_FINGERPRINT_ITER
    Functions that build fingerprints / cache keys must not iterate
    dicts or sets un-sorted: iteration order is insertion order, so two
    semantically identical plans could fingerprint differently and the
    plan cache would silently stop deduplicating.  Every ``.items()`` /
    ``.keys()`` / ``.values()`` call (and set literal) inside such a
    function must sit under a ``sorted(...)`` call, as must any set
    that is iterated rather than membership-tested.

KERNEL_SURFACE
    ``VectorizedKernels`` and ``InterpretedKernels`` are swappable data
    planes: their public method surfaces must be identical, and
    same-named methods must update the same counters (augmented
    assignments to the same attribute names), or ``execution="auto"``
    changes observable behaviour beyond speed.

README_KNOB_TABLE
    Every public planner knob (keyword of ``Planner.plan``) must appear
    in README's "Planner / session knobs" table — an undocumented knob
    is indistinguishable from an unsupported one.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

# -- RAW_KEY_EQ calibration -------------------------------------------

#: identifiers treated as join-key values
_KEYISH = re.compile(r"^(keys?|.*_keys?)$")

#: (file relative to src/repro, function name) pairs implementing the
#: exactness layer itself — the only places a raw compare is the point
RAW_KEY_EQ_ALLOWED = {
    # sorted-array probes: keys are already normalized to the index
    # dtype, searchsorted + == IS the exact lookup
    ("storage/hashindex.py", "lookup"),
    ("storage/hashindex.py", "contains"),
    ("storage/hashindex.py", "probe_stats"),
    # integral-representability test routing float probes to shards
    ("storage/partition.py", "_float_exact"),
    ("storage/partition.py", "_probe_shard_ids"),
    # compares attribute *names* against the shard key, not key values
    ("storage/partition.py", "build_hash_index"),
}


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        location = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{location}: {self.rule}: {self.message}"


def _parse(path):
    return ast.parse(path.read_text(), filename=str(path))


def _attach_parents(tree):
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._parent = node
    return tree


def _enclosing_function(node):
    while node is not None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
        node = getattr(node, "_parent", None)
    return None


def _is_keyish(node):
    """Bare names / attributes that denote join-key values.

    Subscripts and calls are deliberately excluded: ``key[0]`` is a
    cache-key tuple element, ``len(keys)`` a count — neither compares
    key *values*.
    """
    if isinstance(node, ast.Name):
        return bool(_KEYISH.match(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_KEYISH.match(node.attr))
    return False


def check_raw_key_eq():
    findings = []
    for root in (SRC / "engine", SRC / "storage"):
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(SRC).as_posix()
            tree = _attach_parents(_parse(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq))
                           for op in node.ops):
                    continue
                operands = [node.left, *node.comparators]
                if not any(_is_keyish(operand) for operand in operands):
                    continue
                # the NaN idiom: a value compared against itself
                dumps = [ast.dump(operand) for operand in operands]
                if len(set(dumps)) == 1:
                    continue
                function = _enclosing_function(node)
                name = function.name if function else "<module>"
                if (rel, name) in RAW_KEY_EQ_ALLOWED:
                    continue
                findings.append(Finding(
                    "RAW_KEY_EQ", path.relative_to(REPO), node.lineno,
                    f"raw ==/!= on key values in {name}() — route through "
                    "the exactness layer (hash-index probe or "
                    "_float_exact) or allowlist the implementation site",
                ))
    return findings


def _holds_lock(function):
    for node in ast.walk(function):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Attribute) and expr.attr == "_lock":
                return True
    return False


def check_unlocked_cache_mutation():
    findings = []
    attrs = {"_entries", "_inflight"}
    # Creation and (re)initialisation run before the cache is shared;
    # pickling ships an *empty* cache, so neither needs the lock.
    exempt = {"__init__", "__getstate__", "__setstate__"}
    for path in sorted(SRC.rglob("*.py")):
        tree = _attach_parents(_parse(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute) or node.attr not in attrs:
                continue
            rel = path.relative_to(REPO)
            if not (isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                findings.append(Finding(
                    "UNLOCKED_CACHE_MUTATION", rel, node.lineno,
                    f"access to {node.attr} of a foreign object — only "
                    "the owning class may touch its guarded state; use "
                    "the locked public methods",
                ))
                continue
            function = _enclosing_function(node)
            if function is None or function.name in exempt:
                continue
            if not _holds_lock(function):
                findings.append(Finding(
                    "UNLOCKED_CACHE_MUTATION", rel, node.lineno,
                    f"{function.name}() touches self.{node.attr} without "
                    "a `with self._lock` block",
                ))
    return findings


#: functions that assemble fingerprint / cache-key material
_FINGERPRINT_FUNCS = re.compile(
    r"fingerprint|cache_key|to_spec|_plan_options|_apply_partitioning"
)


def _under_sorted(node):
    current = getattr(node, "_parent", None)
    while current is not None:
        if (isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id == "sorted"):
            return True
        current = getattr(current, "_parent", None)
    return False


def _directly_iterated(node):
    """A set that is consumed in order: ``tuple({...})``, ``for x in
    {...}``, or a comprehension over it.  Sets bound to a name for
    later ``in`` tests don't leak their iteration order."""
    parent = getattr(node, "_parent", None)
    if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
        return parent.func.id in ("tuple", "list", "enumerate")
    if isinstance(parent, (ast.For, ast.AsyncFor)):
        return parent.iter is node
    if isinstance(parent, ast.comprehension):
        return parent.iter is node
    return False


def check_unsorted_fingerprint_iter():
    findings = []
    for path in sorted(SRC.rglob("*.py")):
        tree = _attach_parents(_parse(path))
        for function in ast.walk(tree):
            if not isinstance(function, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                continue
            if not _FINGERPRINT_FUNCS.search(function.name):
                continue
            for node in ast.walk(function):
                unordered = None
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("items", "keys", "values")
                        and not node.args and not node.keywords):
                    unordered = f".{node.func.attr}() iteration"
                elif isinstance(node, (ast.Set, ast.SetComp)):
                    # sets kept for membership tests are order-free;
                    # only a set that is *iterated* leaks its order
                    if _directly_iterated(node):
                        unordered = "iteration over a set"
                if unordered and not _under_sorted(node):
                    findings.append(Finding(
                        "UNSORTED_FINGERPRINT_ITER",
                        path.relative_to(REPO), node.lineno,
                        f"{unordered} in {function.name}() is not "
                        "wrapped in sorted(...) — fingerprints must not "
                        "depend on insertion order",
                    ))
    return findings


def _class_methods(tree, class_name):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    raise SystemExit(f"kernel class {class_name} not found")


def _counter_updates(function):
    """Attribute names receiving augmented assignments (counters)."""
    updates = set()
    for node in ast.walk(function):
        if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute):
            updates.add(node.target.attr)
    return updates


def check_kernel_surface():
    findings = []
    path = SRC / "engine" / "kernels.py"
    tree = _parse(path)
    vectorized = _class_methods(tree, "VectorizedKernels")
    interpreted = _class_methods(tree, "InterpretedKernels")
    def public(methods):
        return {name for name in methods if not name.startswith("_")}

    missing = public(vectorized) ^ public(interpreted)
    for name in sorted(missing):
        owner = ("VectorizedKernels" if name in vectorized
                 else "InterpretedKernels")
        findings.append(Finding(
            "KERNEL_SURFACE", path.relative_to(REPO),
            (vectorized.get(name) or interpreted.get(name)).lineno,
            f"{name}() exists only on {owner} — the kernel planes must "
            "expose identical public surfaces",
        ))
    for name in sorted(public(vectorized) & public(interpreted)):
        a = _counter_updates(vectorized[name])
        b = _counter_updates(interpreted[name])
        if a != b:
            findings.append(Finding(
                "KERNEL_SURFACE", path.relative_to(REPO),
                interpreted[name].lineno,
                f"{name}() counter updates differ between planes: "
                f"vectorized={sorted(a)} interpreted={sorted(b)}",
            ))
    return findings


def check_readme_knob_table():
    findings = []
    planner = _parse(SRC / "planner.py")
    plan = None
    for node in ast.walk(planner):
        if isinstance(node, ast.ClassDef) and node.name == "Planner":
            plan = next(
                item for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == "plan"
            )
    knobs = [
        arg.arg for arg in plan.args.args + plan.args.kwonlyargs
        if arg.arg not in ("self", "query")
    ]
    readme = REPO / "README.md"
    text = readme.read_text()
    match = re.search(
        r"## Planner / session knobs\n(.*?)\n## ", text, re.DOTALL
    )
    if not match:
        return [Finding("README_KNOB_TABLE", readme.relative_to(REPO), 0,
                        'section "## Planner / session knobs" not found')]
    section = match.group(1)
    for knob in knobs:
        if f"`{knob}`" not in section:
            findings.append(Finding(
                "README_KNOB_TABLE", readme.relative_to(REPO),
                text[:match.start()].count("\n") + 1,
                f"planner knob `{knob}` missing from the knob table",
            ))
    return findings


CHECKS = (
    check_raw_key_eq,
    check_unlocked_cache_mutation,
    check_unsorted_fingerprint_iter,
    check_kernel_surface,
    check_readme_knob_table,
)


def main():
    findings = [finding for check in CHECKS for finding in check()]
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} invariant violation(s).", file=sys.stderr)
        return 1
    print(f"All {len(CHECKS)} invariants hold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
