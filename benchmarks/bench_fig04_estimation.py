"""Figure 4 benchmark: estimator q-error (naive vs correlated samples)."""

from repro.bench import fig04
from repro.bench.runner import render_table


def test_fig04_estimation(benchmark, figure_output):
    rows = benchmark.pedantic(
        fig04.run,
        kwargs={"num_tasks": 100, "scale": 2.0, "seed": 0},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["estimator", "bucket", "quantity", "avg_q_error", "std", "n"],
        title="Figure 4: q-error of match probability / fanout estimators",
    )
    figure_output("fig04", table)
    by_key = {
        (r["estimator"], r["bucket"], r["quantity"]): r["avg_q_error"]
        for r in rows
    }
    # Paper's qualitative claims: sampling beats naive on fanouts, and
    # naive is poor for low match probabilities.
    assert by_key[("1%", "m>0.05", "fanout")] < by_key[("naive", "m>0.05", "fanout")]
    assert by_key[("1%", "m<0.05", "match_prob")] < by_key[
        ("naive", "m<0.05", "match_prob")
    ]
