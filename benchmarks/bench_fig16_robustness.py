"""Figure 16 benchmark: join-order robustness of the six approaches."""

import math

from repro.bench import fig16
from repro.bench.runner import render_table


def test_fig16_robustness(benchmark, figure_output):
    rows = benchmark.pedantic(
        fig16.run,
        kwargs={"driver_size": 8_000, "num_orders": 10, "seed": 0,
                "metric": "weighted_cost"},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["query", "mode", "norm_min", "norm_median",
         "spread_max_over_min", "timeouts"],
        title="Figure 16: execution spread over 10 random join orders",
    )
    figure_output("fig16", table)
    # Theorem 3.5: SJ+COM shows (almost) no variation across orders;
    # STD shows the widest spread on the synthetic snowflakes.
    for query in {r["query"] for r in rows if r["query"].startswith("snowflake")}:
        by_mode = {r["mode"]: r for r in rows if r["query"] == query}
        sj_com = by_mode["SJ+COM"]["spread_max_over_min"]
        std = by_mode["STD"]["spread_max_over_min"]
        assert sj_com <= 1.2, (query, sj_com)
        assert math.isinf(std) or std >= sj_com - 1e-9, (query, std, sj_com)
