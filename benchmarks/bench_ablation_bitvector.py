"""Ablation: bitvector sizing (the eps / memory trade-off, Section 3.5).

Sweeps the bit-table size for BVP+COM on a fixed snowflake workload:
small tables saturate (eps -> 1, checks are pure overhead), large
tables approach exact semi-join filtering.  The weighted cost curve
should be U-shaped-to-flat, matching the paper's observation that the
optimization algorithms are not highly sensitive to the probe-weight
parameter but pruning power matters.
"""

from repro.bench.runner import render_table
from repro.core.optimizer import greedy_order
from repro.core.stats import stats_from_data
from repro.engine import execute
from repro.modes import ExecutionMode
from repro.workloads import generate_dataset, snowflake, specs_from_ranges


def _sweep(num_bits_options, driver_size=8_000, seed=0):
    query = snowflake(3, 2)
    specs = specs_from_ranges(query, (0.1, 0.4), (2.0, 6.0), seed=seed)
    dataset = generate_dataset(query, driver_size, specs, seed=seed)
    stats = stats_from_data(dataset.catalog, query)
    order = greedy_order(query, stats, "survival").order
    baseline = execute(dataset.catalog, query, order, ExecutionMode.COM,
                       flat_output=False)
    rows = [{
        "num_bits": "no bitvector",
        "hash_probes": baseline.counters.hash_probes,
        "bv_probes": 0,
        "weighted_cost": baseline.weighted_cost(),
    }]
    for num_bits in num_bits_options:
        result = execute(
            dataset.catalog, query, order, ExecutionMode.BVP_COM,
            flat_output=False, bitvector_bits=num_bits,
        )
        rows.append({
            "num_bits": num_bits,
            "hash_probes": result.counters.hash_probes,
            "bv_probes": result.counters.bitvector_probes,
            "weighted_cost": result.weighted_cost(),
        })
    return rows


def test_ablation_bitvector_sizing(benchmark, figure_output):
    rows = benchmark.pedantic(
        _sweep,
        kwargs={"num_bits_options": [256, 1024, 4096, 16384, 65536,
                                     262144]},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows, ["num_bits", "hash_probes", "bv_probes", "weighted_cost"],
        title="Ablation: bitvector size vs probes (BVP+COM, 3-2 snowflake)",
    )
    figure_output("ablation_bitvector", table)
    # Bigger tables can only prune more: hash probes are monotonically
    # non-increasing in the bitvector size.
    sized = [r for r in rows if r["num_bits"] != "no bitvector"]
    probes = [r["hash_probes"] for r in sized]
    assert all(a >= b for a, b in zip(probes, probes[1:])), probes
    # A saturated (tiny) bitvector never beats having no bitvector.
    assert sized[0]["hash_probes"] <= rows[0]["hash_probes"]
