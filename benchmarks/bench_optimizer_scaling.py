"""Optimizer-scaling benchmark: plan quality vs optimization time.

Two sections, recorded to
``benchmarks/results/BENCH_optimizer_scaling.json``:

* **quality** (n <= 12, where the exhaustive DP is feasible): the cost
  ratio of IDP and beam plans over the exhaustive optimum, per shape
  (chain / star / random tree), aggregated over seeds;
* **timing** (n up to 64): optimization wall time of IDP and beam, plus
  the exhaustive DP where it is still tractable (chains are polynomial
  for it; stars hit the ``O(n 2^n)`` wall in the low teens).

Run ``python benchmarks/bench_optimizer_scaling.py`` (full sweep) or
``--smoke`` for the CI gate (n=24 chain+star through IDP and beam, a
couple of seconds end to end).
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.core import (
    AUTO_EXHAUSTIVE_MAX_RELATIONS,
    AUTO_IDP_MAX_RELATIONS,
    beam_order,
    exhaustive_optimal,
    idp_order,
)
from repro.planner import Planner
from repro.workloads.large_joins import (
    chain_query,
    large_join_catalog,
    large_query_stats,
    random_tree_query,
    star_query,
)

RESULTS_DIR = Path(__file__).parent / "results"

BLOCK_SIZE = 8
BEAM_WIDTH = 8

QUALITY_SIZES = (8, 10, 12)
TIMING_SIZES = (16, 24, 32, 48, 64)
#: the exhaustive DP enumerates all connected prefixes — polynomial on
#: chains, O(n 2^n) on stars/bushy trees, so cap it per shape.
EXHAUSTIVE_TIMING_CAP = {"chain": 64, "star": 14, "random_tree": 14}

SMOKE_TIMING_SIZES = (24,)
SMOKE_SHAPES = ("chain", "star")


def build_query(shape, n, seed):
    if shape == "chain":
        return chain_query(n)
    if shape == "star":
        return star_query(n)
    return random_tree_query(n, seed=seed)


def timed(fn):
    start = time.perf_counter()
    plan = fn()
    return plan, (time.perf_counter() - start) * 1e3  # ms


def quality_section(shapes, seeds):
    rows = []
    for shape in shapes:
        for n in QUALITY_SIZES:
            idp_ratios, beam_ratios, exhaustive_ms = [], [], []
            for seed in seeds:
                query = build_query(shape, n, seed)
                stats = large_query_stats(query, seed=seed)
                exact, ms = timed(lambda: exhaustive_optimal(query, stats))
                exhaustive_ms.append(ms)
                idp = idp_order(query, stats, block_size=BLOCK_SIZE)
                beam = beam_order(query, stats, beam_width=BEAM_WIDTH)
                assert query.is_valid_order(idp.order)
                assert query.is_valid_order(beam.order)
                for plan in (idp, beam):
                    # Hard gate, per seed: a heuristic plan costed below
                    # the exhaustive optimum means the costing broke.
                    assert plan.cost >= exact.cost * (1.0 - 1e-9), (
                        shape, n, seed, plan.cost, exact.cost
                    )
                idp_ratios.append(idp.cost / exact.cost)
                beam_ratios.append(beam.cost / exact.cost)
            rows.append({
                "shape": shape,
                "num_relations": n,
                "seeds": len(list(seeds)),
                "idp_cost_ratio_min": round(min(idp_ratios), 4),
                "idp_cost_ratio_mean": round(statistics.mean(idp_ratios), 4),
                "idp_cost_ratio_max": round(max(idp_ratios), 4),
                "beam_cost_ratio_min": round(min(beam_ratios), 4),
                "beam_cost_ratio_mean": round(statistics.mean(beam_ratios), 4),
                "beam_cost_ratio_max": round(max(beam_ratios), 4),
                "exhaustive_ms_median": round(
                    statistics.median(exhaustive_ms), 3
                ),
            })
    return rows


def timing_section(shapes, sizes, seeds):
    rows = []
    for shape in shapes:
        for n in sizes:
            samples = {"idp": [], "beam": [], "exhaustive": []}
            for seed in seeds:
                query = build_query(shape, n, seed)
                stats = large_query_stats(query, seed=seed)
                idp, idp_ms = timed(
                    lambda: idp_order(query, stats, block_size=BLOCK_SIZE)
                )
                beam, beam_ms = timed(
                    lambda: beam_order(query, stats, beam_width=BEAM_WIDTH)
                )
                assert query.is_valid_order(idp.order)
                assert query.is_valid_order(beam.order)
                samples["idp"].append(idp_ms)
                samples["beam"].append(beam_ms)
                if n <= EXHAUSTIVE_TIMING_CAP[shape]:
                    _, ms = timed(lambda: exhaustive_optimal(query, stats))
                    samples["exhaustive"].append(ms)
            row = {
                "shape": shape,
                "num_relations": n,
                "idp_ms_median": round(statistics.median(samples["idp"]), 3),
                "beam_ms_median": round(statistics.median(samples["beam"]), 3),
                "exhaustive_ms_median": (
                    round(statistics.median(samples["exhaustive"]), 3)
                    if samples["exhaustive"]
                    else None  # infeasible at this scale
                ),
            }
            rows.append(row)
    return rows


#: data-backed driver-search timing (planner level, real catalogs)
DRIVER_AUTO_SIZES = (24, 40)
SMOKE_DRIVER_AUTO_SIZES = (16,)
DRIVER_AUTO_SHAPES = ("chain", "random_tree")


def driver_auto_section(shapes, sizes, seeds):
    """``driver="auto"`` planning wall time: pruned search vs the naive
    once-per-rooting sweep.

    The pruned path is one ``Planner.plan(driver="auto")`` call (shared
    directed stats, greedy proxy ranking, incumbent branch-and-bound);
    the baseline reproduces the pre-PR-4 semantics — a fixed-driver
    plan per rooting on a fresh planner, keep the cheapest.  Both must
    agree on the winning cost (asserted), so the recorded speedup is
    pure search efficiency.
    """
    rows = []
    for shape in shapes:
        for n in sizes:
            pruned_ms, baseline_ms = [], []
            for seed in seeds:
                query = build_query(shape, n, seed)
                catalog = large_join_catalog(
                    query, rows_per_relation=256, seed=seed
                )
                planner = Planner(catalog, stats_cache=True)
                auto, ms = timed(lambda: planner.plan(
                    query, mode="COM", driver="auto", optimizer="auto"
                ))
                pruned_ms.append(ms)

                def naive_sweep():
                    best = None
                    for root in query.relations:
                        plan = Planner(catalog).plan(
                            query.rerooted(root), mode="COM",
                            driver="fixed", optimizer="auto",
                        )
                        if best is None or \
                                plan.predicted_cost < best.predicted_cost:
                            best = plan
                    return best

                naive, ms = timed(naive_sweep)
                baseline_ms.append(ms)
                # same winner, or the search is broken
                assert auto.predicted_cost <= naive.predicted_cost * (
                    1.0 + 1e-9
                ), (shape, n, seed, auto.predicted_cost,
                    naive.predicted_cost)
            row = {
                "shape": shape,
                "num_relations": n,
                "driver_auto_ms_median": round(
                    statistics.median(pruned_ms), 3
                ),
                "per_rooting_sweep_ms_median": round(
                    statistics.median(baseline_ms), 3
                ),
            }
            row["speedup"] = round(
                row["per_rooting_sweep_ms_median"]
                / max(row["driver_auto_ms_median"], 1e-9), 2
            )
            rows.append(row)
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: n=24 chain+star through idp and beam only",
    )
    parser.add_argument(
        "--seeds", type=int, default=None,
        help="seeds per (shape, size) cell (default: 5; smoke: 2)",
    )
    args = parser.parse_args(argv)

    seeds = range(args.seeds if args.seeds else (2 if args.smoke else 5))
    start = time.perf_counter()
    if args.smoke:
        quality = quality_section(SMOKE_SHAPES, seeds)
        timing = timing_section(SMOKE_SHAPES, SMOKE_TIMING_SIZES, seeds)
        driver_auto = driver_auto_section(
            ("random_tree",), SMOKE_DRIVER_AUTO_SIZES, seeds
        )
    else:
        shapes = ("chain", "star", "random_tree")
        quality = quality_section(shapes, seeds)
        timing = timing_section(shapes, TIMING_SIZES, seeds)
        driver_auto = driver_auto_section(
            DRIVER_AUTO_SHAPES, DRIVER_AUTO_SIZES, seeds
        )

    record = {
        "benchmark": "optimizer_scaling",
        "smoke": args.smoke,
        "knobs": {"block_size": BLOCK_SIZE, "beam_width": BEAM_WIDTH},
        "auto_policy": {
            "exhaustive_max_relations": AUTO_EXHAUSTIVE_MAX_RELATIONS,
            "idp_max_relations": AUTO_IDP_MAX_RELATIONS,
        },
        "quality_vs_exhaustive": quality,
        "optimization_time": timing,
        "driver_auto": driver_auto,
        "total_seconds": round(time.perf_counter() - start, 2),
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_optimizer_scaling.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"[saved to {path}]")

    # Hard gates the CI smoke run relies on (the never-below-optimum
    # check runs per seed inside quality_section): the recorded
    # aggregates are sane and planning stays interactive at scale.
    for row in quality:
        assert row["idp_cost_ratio_min"] >= 1.0 - 1e-9, row
        assert row["beam_cost_ratio_min"] >= 1.0 - 1e-9, row
    for row in timing:
        assert row["idp_ms_median"] < 1_000, row
        assert row["beam_ms_median"] < 1_000, row
    for row in driver_auto:
        # the pruned search must never be materially slower than the
        # naive sweep it replaces (equal cost is asserted per seed)
        assert row["driver_auto_ms_median"] <= \
            row["per_rooting_sweep_ms_median"] * 1.2, row
    return record


if __name__ == "__main__":
    main()
