"""Figure 14 benchmark: predicted cost vs measured execution time."""

from repro.bench import fig14
from repro.bench.runner import render_table


def test_fig14_cost_model_validation(benchmark, figure_output):
    summary, _scatter = benchmark.pedantic(
        fig14.run,
        kwargs={"driver_size": 10_000, "orders_per_query": 30, "seed": 0,
                "repeats": 2},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        summary,
        ["shape", "orders", "pearson_r", "spearman_r",
         "cost_spread", "time_spread"],
        title="Figure 14: predicted cost vs measured time (COM)",
    )
    figure_output("fig14", table)
    pooled = [r for r in summary if r["shape"] == "ALL"][0]
    # The paper's scatter is tightly linear; require a strong pooled
    # rank correlation (wall-clock noise in pure Python is higher than
    # in the C++ prototype).
    assert pooled["spearman_r"] > 0.7, pooled
