"""Bounded-regret planning and runtime replanning under injected errors.

Two adversarial workloads, each planned from *corrupted* statistics
(a catalog wrapper scales the probe counts statistics derivation sees,
while execution probes the truthful indexes — so only the planner's
beliefs are wrong):

* **gate** — a heavy relation (fanout 80) claims near-perfect
  selectivity while the truly selective relations claim to be fat.
  ``robustness="off"`` orders the heavy relation first and pays a
  catastrophic executed cost; ``robustness="bounded"`` sees the
  worst-case bound of that order exceed ``regret_factor`` times the
  best achievable bound and swaps.
* **replan** — the two children share the *same* max frequency, so
  guaranteed bounds cannot discriminate and the bounded gate keeps the
  (inverted) estimated order.  ``robustness="auto"`` recovers at
  runtime: the monitored execution trips on the first join's observed
  blow-up, replans with corrected statistics, and publishes the
  corrected plan to the plan cache for warm traffic.

Guards (CI regression gate, enforced on every run):

* gate: the off-mode plan's executed regret (vs the true-stats optimum)
  is at least ``5 * regret_factor``, and the bounded plan's is at most
  ``regret_factor``;
* replan: the bounded gate alone keeps the bad order (bounds tie), the
  auto session replans at least once, the served execution lands within
  **2x** of the true-stats optimum, and warm traffic serves the
  corrected plan without re-tripping;
* every execution returns the output size the true-stats plan returns.

Results land in ``benchmarks/results/BENCH_robust_planning.json``.  Run
``python benchmarks/bench_robust_planning.py`` (full sweep) or
``--smoke`` for the CI gate (~seconds).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.modes import ExecutionMode
from repro.planner import Planner
from repro.service import QuerySession
from repro.core.query import JoinEdge, JoinQuery
from repro.storage import Catalog

RESULTS_DIR = Path(__file__).parent / "results"

REGRET_FACTOR = 4.0
SMOKE_SIZES = (2000,)
FULL_SIZES = (2000, 8000)


# ----------------------------------------------------------------------
# Fault injection (self-contained: benchmarks run without the test tree)
# ----------------------------------------------------------------------


class _LyingIndex:
    """Index proxy corrupting ``probe_stats`` only — execution and the
    max-frequency statistic stay truthful (see ``tests.helpers``)."""

    def __init__(self, index, factor):
        self._index = index
        self._factor = float(factor)

    def __getattr__(self, name):
        return getattr(self._index, name)

    def probe_stats(self, keys):
        matched, total = self._index.probe_stats(keys)
        scaled_matched = int(round(matched * self._factor))
        if matched > 0:
            scaled_matched = max(1, scaled_matched)
        scaled_matched = min(len(keys), scaled_matched)
        scaled_total = max(scaled_matched, int(round(total * self._factor)))
        return scaled_matched, scaled_total


class CorruptingCatalog:
    """Catalog wrapper whose derived statistics are off by factor ``k``."""

    def __init__(self, catalog, factors):
        self._catalog = catalog
        self._factors = {name: float(k) for name, k in factors.items()}
        self._proxies = {}

    def __getattr__(self, name):
        return getattr(self._catalog, name)

    def __contains__(self, name):
        return name in self._catalog

    def hash_index(self, table_name, attribute):
        factor = self._factors.get(table_name, 1.0)
        if factor == 1.0:
            return self._catalog.hash_index(table_name, attribute)
        key = (table_name, attribute)
        proxy = self._proxies.get(key)
        if proxy is None:
            proxy = _LyingIndex(
                self._catalog.hash_index(table_name, attribute), factor
            )
            self._proxies[key] = proxy
        return proxy

    def fingerprint(self):
        salt = ",".join(
            f"{name}:{factor}"
            for name, factor in sorted(self._factors.items())
        )
        return f"{self._catalog.fingerprint()}|corrupted[{salt}]"

    def derived_with(self, replacements):
        return CorruptingCatalog(
            self._catalog.derived_with(replacements), self._factors
        )


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def gate_workload(n_driver):
    """Heavy H (fanout 80, max frequency 80) vs selective S / S2."""
    catalog = Catalog()
    catalog.add_table("R", {"a": np.arange(n_driver)})
    catalog.add_table("S", {"a": np.arange(0, n_driver, 100)})
    catalog.add_table("S2", {"a": np.arange(0, n_driver, 20)})
    catalog.add_table("H", {"a": np.repeat(np.arange(n_driver), 80)})
    query = JoinQuery("R", [
        JoinEdge("R", "S", "a", "a"),
        JoinEdge("R", "S2", "a", "a"),
        JoinEdge("R", "H", "a", "a"),
    ])
    corruption = {"H": 1e-4, "S": 30.0, "S2": 30.0}
    return catalog, query, corruption


def replan_workload(n_driver):
    """X and Y share max frequency 8 — bounds tie, only feedback helps."""
    catalog = Catalog()
    catalog.add_table("R", {"a": np.arange(n_driver)})
    # 0.5% of keys present, 8 rows each: true selectivity 0.04
    catalog.add_table("X", {"a": np.repeat(np.arange(0, n_driver, 200), 8)})
    # every key present, 8 rows each: true selectivity 8
    catalog.add_table("Y", {"a": np.repeat(np.arange(n_driver), 8)})
    query = JoinQuery("R", [
        JoinEdge("R", "X", "a", "a"),
        JoinEdge("R", "Y", "a", "a"),
    ])
    corruption = {"Y": 1e-4, "X": 50.0}
    return catalog, query, corruption


def executed(plan):
    result = plan.execute()
    return result.output_size, result.weighted_cost()


def measure_gate(n_driver):
    catalog, query, corruption = gate_workload(n_driver)
    corrupted = CorruptingCatalog(catalog, corruption)
    truth = Planner(catalog).plan(query, mode=ExecutionMode.STD)
    off = Planner(corrupted, robustness="off").plan(
        query, mode=ExecutionMode.STD
    )
    bounded = Planner(
        corrupted, robustness="bounded", regret_factor=REGRET_FACTOR
    ).plan(query, mode=ExecutionMode.STD)
    true_size, optimum = executed(truth)
    off_size, off_cost = executed(off)
    bounded_size, bounded_cost = executed(bounded)
    entry = {
        "workload": "gate",
        "n_driver": n_driver,
        "true_order": list(truth.order),
        "off_order": list(off.order),
        "bounded_order": list(bounded.order),
        "off_regret": round(off_cost / optimum, 2),
        "bounded_regret": round(bounded_cost / optimum, 2),
        "bounded_worst_case": bounded.worst_case_bound,
        "regret_factor": REGRET_FACTOR,
    }
    if off_size != true_size or bounded_size != true_size:
        raise AssertionError(
            f"gate n={n_driver}: result sizes diverge "
            f"({off_size} / {bounded_size} vs {true_size})"
        )
    if entry["off_regret"] < 5 * REGRET_FACTOR:
        raise AssertionError(
            f"gate n={n_driver}: injected error stopped hurting the "
            f"off-mode plan (regret {entry['off_regret']}, expected "
            f">= {5 * REGRET_FACTOR}) — the benchmark is vacuous"
        )
    if entry["bounded_regret"] > REGRET_FACTOR:
        raise AssertionError(
            f"gate n={n_driver}: bounded plan regret "
            f"{entry['bounded_regret']} exceeds the configured factor "
            f"{REGRET_FACTOR} (regression)"
        )
    return entry


def measure_replan(n_driver):
    catalog, query, corruption = replan_workload(n_driver)
    corrupted = CorruptingCatalog(catalog, corruption)
    truth = Planner(catalog).plan(query, mode=ExecutionMode.STD)
    true_size, optimum = executed(truth)
    off = Planner(corrupted, robustness="off").plan(
        query, mode=ExecutionMode.STD
    )
    bounded = Planner(
        corrupted, robustness="bounded", regret_factor=REGRET_FACTOR
    ).plan(query, mode=ExecutionMode.STD)
    if bounded.order != off.order:
        raise AssertionError(
            f"replan n={n_driver}: the bounded gate reordered despite "
            f"tied max frequencies — the workload no longer isolates "
            f"runtime feedback"
        )
    session = QuerySession(corrupted, robustness="auto")
    start = time.perf_counter()
    cold = session.execute(query, mode="STD")
    cold_wall = time.perf_counter() - start
    warm = session.execute(query, mode="STD")
    entry = {
        "workload": "replan",
        "n_driver": n_driver,
        "true_order": list(truth.order),
        "estimated_order": list(off.order),
        "served_order": list(cold.plan.order),
        "replans": cold.replans,
        "observed_q_error": round(cold.observed_q_error, 1),
        "cold_wall_s": round(cold_wall, 4),
        "served_regret": round(cold.result.weighted_cost() / optimum, 2),
        "warm_replans": warm.replans,
        "warm_regret": round(warm.result.weighted_cost() / optimum, 2),
    }
    for label, report in (("cold", cold), ("warm", warm)):
        if not report.ok:
            raise AssertionError(
                f"replan n={n_driver}: {label} execution failed: "
                f"{report.error!r}"
            )
        if report.result.output_size != true_size:
            raise AssertionError(
                f"replan n={n_driver}: {label} result size "
                f"{report.result.output_size} != {true_size}"
            )
    if cold.replans < 1:
        raise AssertionError(
            f"replan n={n_driver}: the monitored execution never "
            f"tripped (q-error feedback regression)"
        )
    if entry["served_regret"] > 2.0:
        raise AssertionError(
            f"replan n={n_driver}: served execution regret "
            f"{entry['served_regret']} exceeds 2x the true-stats "
            f"optimum (regression)"
        )
    if warm.replans != 0 or entry["warm_regret"] > 2.0:
        raise AssertionError(
            f"replan n={n_driver}: warm traffic is not served the "
            f"corrected plan (replans={warm.replans}, "
            f"regret={entry['warm_regret']})"
        )
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI")
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    start = time.perf_counter()
    entries = []
    for n_driver in sizes:
        entries.append(measure_gate(n_driver))
        entries.append(measure_replan(n_driver))
    record = {
        "benchmark": "robust_planning",
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": os.cpu_count(),
        "regret_factor": REGRET_FACTOR,
        "wall_s": round(time.perf_counter() - start, 2),
        "cases": entries,
        "worst_off_regret": max(
            e["off_regret"] for e in entries if e["workload"] == "gate"
        ),
        "worst_bounded_regret": max(
            e["bounded_regret"] for e in entries if e["workload"] == "gate"
        ),
        "worst_served_regret": max(
            e["served_regret"] for e in entries if e["workload"] == "replan"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_robust_planning.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"[saved to {path}]")


if __name__ == "__main__":
    main()
