"""Vectorized-vs-interpreted kernel benchmark: the tentpole speedup.

Measures the two execution data planes against each other at two
levels:

* **micro** — each kernel primitive in isolation (hash probe, sharded
  probe, semi-join membership, expansion repeats/ranges, partitioned
  gather, residual equality mask) on identical inputs;
* **warm end-to-end** — plan-cache-hit QPS of a :class:`~repro.QuerySession`
  over the paper's 6-relation running example with
  ``execution="vectorized"`` vs ``execution="interpreted"``.

Results are written to
``benchmarks/results/BENCH_vectorized_kernels.json``.  ``--smoke``
runs a reduced grid for CI and (like the full run) asserts the warm
end-to-end speedup is at least :data:`MIN_WARM_SPEEDUP` — the
acceptance gate for shipping the vectorized path as the default.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import QuerySession
from repro.core.cyclic import exact_equal
from repro.engine.kernels import INTERPRETED, VECTORIZED
from repro.storage import Catalog, HashIndex, PartitionedTable, Table
from repro.storage.partition import ShardedHashIndex

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "BENCH_vectorized_kernels.json"

#: same 6-relation query as bench_service_throughput, so the warm QPS
#: numbers here are directly comparable with that benchmark's
SQL = ("select * from R1, R2, R3, R4, R5, R6 "
       "where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D "
       "and R1.E = R5.E and R5.F = R6.F")

#: warm vectorized QPS must beat interpreted by at least this factor
MIN_WARM_SPEEDUP = 2.0

SIZES = {"build": 200_000, "probe": 400_000, "warm_queries": 80}
SMOKE_SIZES = {"build": 30_000, "probe": 60_000, "warm_queries": 24}


def time_ms(fn, reps=3):
    """Best-of-``reps`` wall time in milliseconds."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def micro_row(kernel, size, vect_fn, interp_fn, check=None):
    """Time one primitive on both data planes and record the speedup."""
    vect_out = vect_fn()
    interp_out = interp_fn()
    if check is not None:
        check(vect_out, interp_out)
    vect_ms = time_ms(vect_fn)
    interp_ms = time_ms(interp_fn)
    return {
        "kernel": kernel,
        "size": size,
        "vectorized_ms": round(vect_ms, 3),
        "interpreted_ms": round(interp_ms, 3),
        "speedup": round(interp_ms / vect_ms, 1) if vect_ms > 0 else None,
    }


def bench_micro(sizes, rng):
    n_build, n_probe = sizes["build"], sizes["probe"]
    keys = rng.integers(0, n_build // 4, n_build)
    probes = rng.integers(-n_build // 8, n_build // 3, n_probe)
    index = HashIndex(keys)
    sharded = ShardedHashIndex(keys, 4)
    rows = []

    def same_lookup(v, i):
        assert v.counts.tolist() == i.counts.tolist()

    rows.append(micro_row(
        "hash_probe", n_probe,
        lambda: VECTORIZED.lookup(index, probes),
        lambda: INTERPRETED.lookup(index, probes),
        check=same_lookup,
    ))
    rows.append(micro_row(
        "sharded_probe", n_probe,
        lambda: VECTORIZED.lookup(sharded, probes),
        lambda: INTERPRETED.lookup(sharded, probes),
        check=same_lookup,
    ))
    rows.append(micro_row(
        "semijoin_contains", n_probe,
        lambda: VECTORIZED.contains(index, probes),
        lambda: INTERPRETED.contains(index, probes),
        check=lambda v, i: np.array_equal(v, i),
    ))

    entries = rng.integers(0, n_build, n_probe // 2).astype(np.int64)
    counts = rng.integers(0, 4, n_probe // 2).astype(np.int64)
    rows.append(micro_row(
        "expand_repeat_rows", int(counts.sum()),
        lambda: VECTORIZED.repeat_rows(entries, counts),
        lambda: INTERPRETED.repeat_rows(entries, counts),
        check=lambda v, i: np.array_equal(v, i),
    ))
    starts = np.cumsum(counts) - counts
    rows.append(micro_row(
        "expand_concat_ranges", int(counts.sum()),
        lambda: VECTORIZED.concat_ranges(starts, counts),
        lambda: INTERPRETED.concat_ranges(starts, counts),
        check=lambda v, i: np.array_equal(v, i),
    ))

    payload = np.arange(n_build, dtype=np.int64)
    table = PartitionedTable.from_table(
        Table("t", {"k": keys, "p": payload}), "k", 4)
    gather_rows = rng.integers(0, n_build, n_probe // 2).astype(np.int64)
    rows.append(micro_row(
        "partitioned_gather", len(gather_rows),
        lambda: VECTORIZED.gather(table, "p", gather_rows),
        lambda: INTERPRETED.gather(table, "p", gather_rows),
        check=lambda v, i: np.array_equal(v, i),
    ))

    left = rng.integers(0, 50, n_probe).astype(np.float64)
    right = rng.integers(0, 50, n_probe).astype(np.int64)
    rows.append(micro_row(
        "residual_equal_mask", n_probe,
        lambda: VECTORIZED.equal_mask(left, right),
        lambda: INTERPRETED.equal_mask(left, right),
        check=lambda v, i: (np.array_equal(v, i)
                            and np.array_equal(v, exact_equal(left, right))),
    ))
    return rows


def make_catalog(seed=3, driver_rows=4_000, child_rows=2_500, domain=2_000):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add_table("R1", {
        "A": np.arange(driver_rows),
        "B": rng.integers(0, domain, driver_rows),
        "E": rng.integers(0, domain, driver_rows),
    })
    catalog.add_table("R2", {
        "B": rng.integers(0, domain, child_rows),
        "C": rng.integers(0, domain, child_rows),
        "D": rng.integers(0, domain, child_rows),
    })
    catalog.add_table("R3", {"C": rng.integers(0, domain, child_rows)})
    catalog.add_table("R4", {"D": rng.integers(0, domain, child_rows)})
    catalog.add_table("R5", {"E": rng.integers(0, domain, child_rows),
                             "F": rng.integers(0, domain, child_rows)})
    catalog.add_table("R6", {"F": rng.integers(0, domain, child_rows),
                             "G": rng.integers(0, 5, child_rows)})
    return catalog


def bench_warm_qps(catalog, execution, num_queries):
    """Plan-cache-hit QPS on a single-threaded session."""
    session = QuerySession(catalog, partitioning="off", execution=execution)
    first = session.execute(SQL)  # plan + cache, untimed
    assert first.ok, first.error
    start = time.perf_counter()
    for _ in range(num_queries):
        report = session.execute(SQL)
        assert report.ok, report.error
        assert report.result.output_size == first.result.output_size
    wall = time.perf_counter() - start
    return {
        "execution": execution,
        "queries": num_queries,
        "qps": round(num_queries / wall, 1),
        "mean_latency_ms": round(wall / num_queries * 1e3, 3),
        "output_size": int(first.result.output_size),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: reduced sizes, same >= "
             f"{MIN_WARM_SPEEDUP:.0f}x warm-speedup assertion",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    rng = np.random.default_rng(7)
    start = time.perf_counter()

    micro = bench_micro(sizes, rng)
    for row in micro:
        print(f"{row['kernel']:>22} n={row['size']:<8} "
              f"vect={row['vectorized_ms']:>9.3f}ms "
              f"interp={row['interpreted_ms']:>9.3f}ms "
              f"speedup={row['speedup']}x")

    catalog = make_catalog()
    warm = {}
    for execution in ("vectorized", "interpreted"):
        warm[execution] = bench_warm_qps(
            catalog, execution, sizes["warm_queries"])
        print(f"warm {execution:>11}: {warm[execution]['qps']:>8} qps "
              f"({warm[execution]['mean_latency_ms']} ms/query)")
    speedup = warm["vectorized"]["qps"] / warm["interpreted"]["qps"]
    print(f"warm end-to-end speedup: {speedup:.2f}x")

    record = {
        "benchmark": "vectorized_kernels",
        "smoke": args.smoke,
        "host": {"cpus": os.cpu_count() or 1},
        "query": "6-relation running example (selectivity-balanced)",
        "micro": micro,
        "warm": [warm["vectorized"], warm["interpreted"]],
        "warm_speedup": round(speedup, 2),
        "min_warm_speedup_gate": MIN_WARM_SPEEDUP,
        "total_seconds": round(time.perf_counter() - start, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[saved to {RESULTS_PATH}]")

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"vectorized warm QPS only {speedup:.2f}x the interpreted path "
        f"(gate: {MIN_WARM_SPEEDUP}x)"
    )
    return record


if __name__ == "__main__":
    main()
