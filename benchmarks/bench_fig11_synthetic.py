"""Figure 11 benchmark: synthetic benchmark relative runtimes."""

import math

from repro.bench import fig11
from repro.bench.runner import render_table


def test_fig11_synthetic_benchmark(benchmark, figure_output):
    rows = benchmark.pedantic(
        fig11.run,
        kwargs={"driver_size": 10_000, "seed": 0},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["shape", "m_range", "driver", "output", "mode",
         "rel_time", "rel_weighted_probes", "output_size"],
        title="Figure 11: relative execution vs COM (synthetic benchmark)",
    )
    figure_output("fig11", table)
    # Paper's headline: COM variants beat STD variants in weighted
    # probes for the high-match-probability configurations.
    high_m = [r for r in rows if r["m_range"] == "[0.5-0.9]"
              and r["output"] == "flat"]
    for shape in {r["shape"] for r in high_m}:
        shape_rows = {r["mode"]: r for r in high_m if r["shape"] == shape}
        std = shape_rows["STD"]["rel_weighted_probes"]
        assert math.isinf(std) or std > 1.0, (shape, std)
