"""Cyclic-query benchmark: joint tree+order search vs greedy Kruskal.

For cycle / clique / grid join graphs backed by real data
(:mod:`repro.workloads.cyclic`), plans each query twice —

* **joint** — the planner's spanning-tree + join-order search
  (``tree_search="joint"``): candidate trees streamed in ascending
  estimated-output order, each priced by the full cost model (tree
  join + expansion + residual filters) with branch-and-bound pruning
  against the incumbent;
* **greedy** — the historical baseline (``tree_search="greedy"``): the
  Kruskal minimum-selectivity tree only, order-optimized.

and records both predicted plan costs and planning wall times to
``benchmarks/results/BENCH_cyclic_scaling.json``.  The joint search
starts from the greedy tree, so its cost can only match or beat the
baseline; ``cost_ratio`` (greedy / joint) quantifies the win.  Small
cases are additionally executed under both plans and cross-checked for
identical result sizes before their numbers are recorded.

Run ``python benchmarks/bench_cyclic_scaling.py`` (full sweep, up to 40
relations) or ``--smoke`` for the CI gate (~seconds).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core import CyclicPlan
from repro.planner import Planner
from repro.workloads.cyclic import CYCLIC_SHAPES, cyclic_catalog

RESULTS_DIR = Path(__file__).parent / "results"

#: per-shape relation counts (cliques grow O(n^2) predicates)
FULL_SIZES = {
    "cycle": (12, 24, 40),
    "grid": (12, 24, 40),
    "clique": (8, 12, 14),
}
SMOKE_SIZES = {
    "cycle": (12,),
    "grid": (12,),
    "clique": (8,),
}
#: execute + cross-check result sizes up to this relation count
EXECUTE_MAX_RELATIONS = 12


def measure_case(shape, n, seed, mode, optimizer,
                 cyclic_execution="auto"):
    parsed = CYCLIC_SHAPES[shape](n)
    catalog = cyclic_catalog(parsed, seed=seed)

    # Fresh planner per strategy so both pay one cold statistics
    # derivation — wall times compare search effort, not cache luck.
    joint_planner = Planner(catalog, stats_cache=True)
    start = time.perf_counter()
    joint = joint_planner.plan(parsed, mode=mode, optimizer=optimizer,
                               cyclic_execution=cyclic_execution)
    joint_s = time.perf_counter() - start

    greedy_planner = Planner(catalog, stats_cache=True)
    start = time.perf_counter()
    greedy = greedy_planner.plan(parsed, mode=mode, optimizer=optimizer,
                                 tree_search="greedy",
                                 cyclic_execution=cyclic_execution)
    greedy_s = time.perf_counter() - start

    if joint.predicted_cost > greedy.predicted_cost * (1 + 1e-9):
        raise AssertionError(
            f"{shape} n={n}: joint search ({joint.predicted_cost:.6g}) "
            f"must never cost more than greedy ({greedy.predicted_cost:.6g})"
        )

    entry = {
        "shape": shape,
        "relations": n,
        "predicates": len(parsed.join_predicates),
        "residuals": len(joint.residuals),
        "joint_cost": joint.predicted_cost,
        "greedy_cost": greedy.predicted_cost,
        "cost_ratio": round(greedy.predicted_cost / joint.predicted_cost, 4),
        "joint_beats_greedy":
            joint.predicted_cost < greedy.predicted_cost * (1 - 1e-9),
        # tree identity, not plan identity: two plans can pick the same
        # spanning tree yet differ in join order or execution mode
        "same_tree": (
            CyclicPlan(joint.query, list(joint.residuals)).tree_signature()
            == CyclicPlan(greedy.query,
                          list(greedy.residuals)).tree_signature()
        ),
        "joint_plan_s": round(joint_s, 4),
        "greedy_plan_s": round(greedy_s, 4),
        "joint_mode": str(joint.mode),
        "joint_driver": joint.query.root,
        "joint_strategy": joint.cyclic_strategy,
        "greedy_strategy": greedy.cyclic_strategy,
    }

    if n <= EXECUTE_MAX_RELATIONS:
        start = time.perf_counter()
        joint_result = joint.execute()
        joint_exec_s = time.perf_counter() - start
        start = time.perf_counter()
        greedy_result = greedy.execute()
        greedy_exec_s = time.perf_counter() - start
        if joint_result.output_size != greedy_result.output_size:
            raise AssertionError(
                f"{shape} n={n}: joint and greedy plans disagree on the "
                f"result size ({joint_result.output_size} vs "
                f"{greedy_result.output_size})"
            )
        entry.update(
            output_size=joint_result.output_size,
            joint_exec_s=round(joint_exec_s, 4),
            greedy_exec_s=round(greedy_exec_s, 4),
        )
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI")
    parser.add_argument("--mode", default="auto",
                        help='execution strategy (default "auto")')
    parser.add_argument("--optimizer", default="auto",
                        help='order-search algorithm (default "auto")')
    parser.add_argument("--cyclic-execution", default="auto",
                        choices=("auto", "tree_filter", "wcoj"),
                        help="cyclic strategy knob forwarded to the "
                             'planner (default "auto": the cost model '
                             "picks tree+filter or wcoj per query)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    start = time.perf_counter()
    entries = [
        measure_case(shape, n, args.seed, args.mode, args.optimizer,
                     cyclic_execution=args.cyclic_execution)
        for shape, shape_sizes in sizes.items()
        for n in shape_sizes
    ]
    winning_shapes = sorted({
        entry["shape"] for entry in entries if entry["joint_beats_greedy"]
    })
    record = {
        "benchmark": "cyclic_scaling",
        "mode": "smoke" if args.smoke else "full",
        "plan_mode": args.mode,
        "optimizer": args.optimizer,
        "cyclic_execution": args.cyclic_execution,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "wall_s": round(time.perf_counter() - start, 2),
        "cases": entries,
        "shapes_with_improvement": winning_shapes,
        "best_cost_ratio": max(entry["cost_ratio"] for entry in entries),
    }
    if not winning_shapes:
        raise AssertionError(
            "expected the joint search to beat the greedy tree on at "
            "least one shape; none improved"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_cyclic_scaling.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"[saved to {path}]")


if __name__ == "__main__":
    main()
