"""Worst-case-optimal vs tree+filter on dense cyclic workloads.

For skewed dense cliques (8 relations, 28 predicates, power-law keys)
and grids, plans each query under both forced cyclic strategies
(``cyclic_execution="tree_filter"`` / ``"wcoj"``), executes both, and
records wall time plus ``peak_intermediate_tuples`` — the quantity the
worst-case-optimal operator exists to bound.  Skewed keys concentrate
matches on a few heavy values, so the tree+filter pipeline multiplies
out doomed combinations the residual filters later discard; the wcoj
operator joins every predicate attribute-at-a-time and never
materializes them.

Guards (CI regression gate, enforced on every run):

* both strategies return identical result sizes on every case;
* on every clique case the wcoj peak is at most **half** the
  tree+filter peak (the acceptance bar; observed ratios are far
  larger);
* ``cyclic_execution="auto"`` resolves to whichever forced strategy
  predicted the lower cost, on every case.

Results land in ``benchmarks/results/BENCH_wcoj.json``.  Run
``python benchmarks/bench_wcoj.py`` (full sweep) or ``--smoke`` for
the CI gate (~seconds).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.engine.executor import BudgetExceededError
from repro.planner import Planner
from repro.service.session import DEFAULT_BUDGET
from repro.workloads.cyclic import CYCLIC_SHAPES, cyclic_catalog

RESULTS_DIR = Path(__file__).parent / "results"

#: (shape, relations, rows_per_relation, key_domain, skew, seed)
SMOKE_CASES = (
    ("clique", 8, 50, (3, 6), 1.2, 7),
    ("grid", 9, 30, (4, 8), 0.8, 7),
)
FULL_CASES = SMOKE_CASES + (
    ("clique", 8, 80, (3, 6), 1.2, 7),
    ("grid", 9, 36, (4, 8), 1.0, 7),
)

STRATEGIES = ("tree_filter", "wcoj")


def measure_case(shape, n, rows, key_domain, skew, seed):
    parsed = CYCLIC_SHAPES[shape](n)
    catalog = cyclic_catalog(parsed, rows_per_relation=rows,
                             key_domain=key_domain, seed=seed, skew=skew)
    entry = {
        "shape": shape,
        "relations": n,
        "predicates": len(parsed.join_predicates),
        "rows_per_relation": rows,
        "key_domain": list(key_domain),
        "skew": skew,
    }
    sizes, costs = {}, {}
    for strategy in STRATEGIES:
        plan = Planner(catalog, cyclic_execution=strategy).plan(
            parsed, stats="exact"
        )
        costs[strategy] = plan.predicted_cost
        entry[f"{strategy}_cost"] = round(plan.predicted_cost, 1)
        start = time.perf_counter()
        try:
            result = plan.execute()
        except BudgetExceededError:
            # tree+filter can overrun the default intermediate-tuple
            # budget on workloads wcoj walks through; the budget is a
            # *lower bound* on the true peak, recorded as such
            entry[f"{strategy}_completed"] = False
            entry[f"{strategy}_wall_s"] = round(
                time.perf_counter() - start, 4
            )
            entry[f"{strategy}_peak_tuples"] = DEFAULT_BUDGET
            continue
        entry[f"{strategy}_completed"] = True
        entry[f"{strategy}_wall_s"] = round(time.perf_counter() - start, 4)
        sizes[strategy] = result.output_size
        entry[f"{strategy}_peak_tuples"] = \
            result.counters.peak_intermediate_tuples
    if not entry["wcoj_completed"]:
        raise AssertionError(
            f"{shape} n={n}: the wcoj strategy overran the "
            f"intermediate-tuple budget (regression)"
        )
    if len(sizes) == 2 and sizes["wcoj"] != sizes["tree_filter"]:
        raise AssertionError(
            f"{shape} n={n}: strategies disagree on the result size "
            f"({sizes['wcoj']} vs {sizes['tree_filter']})"
        )
    entry["output_size"] = sizes["wcoj"]
    entry["peak_ratio"] = round(
        entry["tree_filter_peak_tuples"]
        / max(entry["wcoj_peak_tuples"], 1), 2
    )
    if shape == "clique" \
            and entry["wcoj_peak_tuples"] * 2 > entry["tree_filter_peak_tuples"]:
        raise AssertionError(
            f"clique n={n}: wcoj peak {entry['wcoj_peak_tuples']} is not "
            f">=2x below tree+filter peak "
            f"{entry['tree_filter_peak_tuples']} (regression)"
        )
    auto = Planner(catalog, cyclic_execution="auto").plan(
        parsed, stats="exact"
    )
    cheaper = min(STRATEGIES, key=costs.__getitem__)
    entry["auto_strategy"] = auto.cyclic_strategy
    if auto.cyclic_strategy != cheaper:
        raise AssertionError(
            f"{shape} n={n}: auto resolved to {auto.cyclic_strategy!r} "
            f"but {cheaper!r} predicted the lower cost"
        )
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI")
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    start = time.perf_counter()
    entries = [measure_case(*case) for case in cases]
    record = {
        "benchmark": "wcoj",
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": os.cpu_count(),
        "wall_s": round(time.perf_counter() - start, 2),
        "cases": entries,
        "best_peak_ratio": max(e["peak_ratio"] for e in entries),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_wcoj.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"[saved to {path}]")


if __name__ == "__main__":
    main()
