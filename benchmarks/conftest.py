"""Shared fixtures for the figure benchmarks.

Each benchmark regenerates one figure of the paper and writes the
rendered table to ``benchmarks/results/figNN.txt`` (in addition to the
pytest-benchmark timing report).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def figure_output():
    """Callable saving a rendered figure table to the results dir."""

    def save(figure_name, text):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{figure_name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save
