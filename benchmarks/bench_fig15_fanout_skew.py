"""Figure 15 benchmark: robustness to the constant-fanout assumption."""

from repro.bench import fig15
from repro.bench.runner import render_table


def test_fig15_fanout_skew(benchmark, figure_output):
    rows = benchmark.pedantic(
        fig15.run,
        kwargs={"driver_size": 8_000, "seed": 0},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["distribution", "fanout_variance", "mean_fanout",
         "estimated_probes", "actual_probes", "probe_ratio"],
        title="Figure 15: actual/estimated probes under skewed fanouts",
    )
    figure_output("fig15", table)
    # Paper: estimates closely match actual probes even at high
    # variance — the ratio stays near 1.
    for row in rows:
        assert 0.7 <= row["probe_ratio"] <= 1.3, row
