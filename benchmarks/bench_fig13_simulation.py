"""Figure 13 benchmark: analytic comparison of the five approaches."""

from repro.bench import fig13
from repro.bench.runner import render_table


def test_fig13_simulation_analysis(benchmark, figure_output):
    rows = benchmark.pedantic(
        fig13.run,
        kwargs={"driver_size": 100_000},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["shape", "fanout", "m", "mode", "estimated_cost"],
        title="Figure 13: estimated cost vs match probability",
        float_format="{:.4g}",
    )
    figure_output("fig13", table)

    def cost(shape, fo, m, mode):
        for r in rows:
            if (r["shape"], r["fanout"], r["m"], r["mode"]) == (shape, fo, m, mode):
                return r["estimated_cost"]
        raise KeyError((shape, fo, m, mode))

    # Paper: at high match probabilities the gap between STD and COM
    # variants is large (fanout amplifies redundant probes)...
    for shape in ("star", "path", "snowflake_3_2", "snowflake_5_1"):
        assert cost(shape, 5.0, 0.9, "BVP+STD") > 2 * cost(shape, 5.0, 0.9, "COM")
    # ... while at low match probabilities STD variants are competitive.
    assert cost("star", 2.0, 0.1, "BVP+STD") < 2 * cost("star", 2.0, 0.1, "COM")
