"""Partitioned-storage benchmark: index build + probe throughput vs shards.

For one large build relation, measures three phases per shard count:

* **partition** — one-off cost of re-clustering the table into
  contiguous hash-shards (paid once per catalog, amortized across
  queries);
* **build** — constructing the hash index (per-shard sorts, fanned out
  over the worker pool when cores allow);
* **probe** — a large batch lookup (keys routed to their shard, probed
  in parallel).

Records absolute times, throughputs and speedups over the monolithic
(1-shard) layout to ``benchmarks/results/BENCH_partitioned_scan.json``,
together with the core count the run saw — shard fan-out is a
parallelism optimization, so single-core runners only get the smaller
per-shard sort/search constants, while the multi-core CI runner shows
the real effect.

Run ``python benchmarks/bench_partitioned_scan.py`` (full sweep) or
``--smoke`` for the CI gate (~seconds).  Every configuration is
cross-checked against the monolithic index for identical match counts
before its numbers are recorded.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.storage import HashIndex, PartitionedTable
from repro.workloads.partitioned import probe_batch, scan_build_table

RESULTS_DIR = Path(__file__).parent / "results"

FULL_ROWS = 2_000_000
FULL_PROBES = 2_000_000
SMOKE_ROWS = 250_000
SMOKE_PROBES = 250_000
SHARD_COUNTS = (1, 2, 4, 8)
REPEATS = 3


def best_of(fn, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def measure(rows, probes, shard_counts, skew, seed):
    base_table = scan_build_table(rows, skew=skew, seed=seed)
    domain = int(base_table.column("key").max()) + 1
    probe_keys = probe_batch(probes, domain, seed=seed + 1)
    reference = HashIndex(base_table.column("key")).lookup(probe_keys)
    reference_total = reference.total_matches()

    entries = []
    for num_shards in shard_counts:
        partition_s, table = best_of(
            lambda: PartitionedTable.from_table(base_table, "key", num_shards)
            if num_shards > 1 else base_table,
            repeats=1,
        )
        build_s, index = best_of(lambda: table.build_hash_index("key"))
        probe_s, result = best_of(lambda: index.lookup(probe_keys))
        if result.total_matches() != reference_total:
            raise AssertionError(
                f"shards={num_shards}: {result.total_matches()} matches, "
                f"expected {reference_total}"
            )
        entry = {
            "shards": num_shards,
            "partition_s": round(partition_s, 4),
            "build_s": round(build_s, 4),
            "build_rows_per_s": round(rows / build_s),
            "probe_s": round(probe_s, 4),
            "probes_per_s": round(probes / probe_s),
        }
        if num_shards > 1:
            # shard balance: a hot shard bounds the parallel speedup
            sketches = index.sketches()
            shard_rows = [s.num_rows for s in sketches]
            entry["shard_balance"] = {
                "min_rows": min(shard_rows),
                "max_rows": max(shard_rows),
                "distinct": [s.num_distinct for s in sketches],
            }
        entries.append(entry)
    baseline = entries[0]
    for entry in entries:
        entry["build_speedup"] = round(baseline["build_s"] / entry["build_s"], 2)
        entry["probe_speedup"] = round(baseline["probe_s"] / entry["probe_s"], 2)
    return entries


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI")
    parser.add_argument("--rows", type=int, default=None,
                        help="build-relation rows (overrides the preset)")
    parser.add_argument("--probes", type=int, default=None,
                        help="probe-batch size (overrides the preset)")
    parser.add_argument("--skew", type=float, default=0.3,
                        help="key skew in [0, 1) (default 0.3)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    rows = args.rows or (SMOKE_ROWS if args.smoke else FULL_ROWS)
    probes = args.probes or (SMOKE_PROBES if args.smoke else FULL_PROBES)
    start = time.perf_counter()
    entries = measure(rows, probes, SHARD_COUNTS, args.skew, args.seed)
    record = {
        "benchmark": "partitioned_scan",
        "mode": "smoke" if args.smoke else "full",
        "rows": rows,
        "probes": probes,
        "skew": args.skew,
        "cpu_count": os.cpu_count(),
        "wall_s": round(time.perf_counter() - start, 2),
        "shard_counts": entries,
        "best_build_speedup": max(e["build_speedup"] for e in entries),
        "best_probe_speedup": max(e["probe_speedup"] for e in entries),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_partitioned_scan.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"[saved to {path}]")


if __name__ == "__main__":
    main()
