"""Figure 10 benchmark: greedy heuristics vs exhaustive optimum."""

from repro.bench import fig10
from repro.bench.runner import render_table


def test_fig10_join_order_optimization(benchmark, figure_output):
    rows = benchmark.pedantic(
        fig10.run,
        kwargs={"num_trees": 60, "max_nodes": 14, "seed": 0},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["m_range", "heuristic", "median_ratio", "p75_ratio",
         "p95_ratio", "max_ratio", "frac_optimal"],
        title="Figure 10: heuristic cost ratio vs exhaustive optimum",
    )
    figure_output("fig10", table)
    # Paper: survival is near-optimal in almost all cases; rank ordering
    # is the worst of the three.
    for m_range in {r["m_range"] for r in rows}:
        by_heur = {
            r["heuristic"]: r for r in rows if r["m_range"] == m_range
        }
        assert by_heur["survival"]["median_ratio"] <= 1.05
        assert (
            by_heur["survival"]["median_ratio"]
            <= by_heur["rank"]["median_ratio"] + 1e-9
        )
