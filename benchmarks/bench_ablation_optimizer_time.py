"""Ablation: optimization time vs plan quality as queries grow.

Algorithm 1 is exponential in the worst case (O(n 2^n)); the greedy
heuristics are polynomial.  This ablation measures both the planning
time and the cost gap on random trees of increasing size — the
practical argument for the survival heuristic.
"""

import time

import numpy as np

from repro.bench.runner import render_table
from repro.core.costmodel import com_probes_per_join
from repro.core.optimizer import exhaustive_optimal, greedy_order
from repro.workloads.random_trees import random_join_tree, random_stats


def _sweep(sizes=(8, 12, 16), trees_per_size=5, seed=0):
    rows = []
    for max_nodes in sizes:
        dp_times, greedy_times, gaps = [], [], []
        for i in range(trees_per_size):
            query = random_join_tree(max_nodes=max_nodes,
                                     seed=seed * 1000 + max_nodes * 10 + i)
            stats = random_stats(query, (0.1, 0.5), seed=seed + i)
            start = time.perf_counter()
            optimal = exhaustive_optimal(query, stats)
            dp_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            plan = greedy_order(query, stats, "survival")
            greedy_times.append(time.perf_counter() - start)
            greedy_cost = sum(
                com_probes_per_join(query, stats, plan.order).values()
            )
            gaps.append(greedy_cost / max(optimal.cost, 1e-12))
        rows.append({
            "max_nodes": max_nodes,
            "dp_ms": 1000 * float(np.mean(dp_times)),
            "greedy_ms": 1000 * float(np.mean(greedy_times)),
            "speedup": float(np.mean(dp_times) / max(np.mean(greedy_times),
                                                     1e-9)),
            "mean_cost_gap": float(np.mean(gaps)),
            "max_cost_gap": float(np.max(gaps)),
        })
    return rows


def test_ablation_optimizer_time(benchmark, figure_output):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        rows,
        ["max_nodes", "dp_ms", "greedy_ms", "speedup",
         "mean_cost_gap", "max_cost_gap"],
        title="Ablation: Algorithm 1 vs survival heuristic "
              "(planning time and cost gap)",
        float_format="{:.4g}",
    )
    figure_output("ablation_optimizer_time", table)
    # The heuristic stays near-optimal while being much faster on the
    # largest trees.
    assert rows[-1]["mean_cost_gap"] < 1.2
    assert rows[-1]["speedup"] > 2.0
