"""Figure 12 benchmark: simulated CE benchmark relative runtimes."""

import math

from repro.bench import fig12
from repro.bench.runner import render_table


def test_fig12_ce_benchmark(benchmark, figure_output):
    rows = benchmark.pedantic(
        fig12.run,
        kwargs={"num_queries": 10, "scale": 0.5, "seed": 0},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["dataset", "mode", "gmean_rel_time", "gmean_rel_probes",
         "timeouts", "queries"],
        title="Figure 12: relative execution vs COM (simulated CE datasets)",
    )
    figure_output("fig12", table)
    # COM variants should not be worse than STD in weighted probes on
    # any dataset (geometric mean over queries).
    for dataset in {r["dataset"] for r in rows}:
        by_mode = {r["mode"]: r for r in rows if r["dataset"] == dataset}
        std = by_mode["STD"]["gmean_rel_probes"]
        assert math.isinf(std) or std >= 0.9, (dataset, std)
