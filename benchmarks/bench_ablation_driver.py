"""Ablation: driver-relation choice (Sections 2.1 and 3.5).

The optimizers run once per candidate driver; this ablation quantifies
how much that matters by costing the optimal plan for every rooting of
a snowflake query, for COM and SJ+COM.
"""

from repro.bench.runner import render_table
from repro.core.optimizer import exhaustive_optimal, optimize_sj
from repro.core.stats import stats_from_data
from repro.modes import ExecutionMode
from repro.workloads import generate_dataset, snowflake, specs_from_ranges


def _sweep(driver_size=5_000, seed=0):
    query = snowflake(3, 1)
    specs = specs_from_ranges(query, (0.1, 0.6), (1.5, 5.0), seed=seed)
    dataset = generate_dataset(query, driver_size, specs, seed=seed)
    rows = []
    for root in query.relations:
        rooted = query.rerooted(root)
        stats = stats_from_data(dataset.catalog, rooted)
        com = exhaustive_optimal(rooted, stats, mode=ExecutionMode.COM)
        sj = optimize_sj(rooted, stats, factorized=True)
        rows.append({
            "driver": root,
            "com_cost": com.cost,
            "sj_com_cost": sj.cost,
        })
    best_com = min(r["com_cost"] for r in rows)
    best_sj = min(r["sj_com_cost"] for r in rows)
    for row in rows:
        row["com_vs_best"] = row["com_cost"] / best_com
        row["sj_vs_best"] = row["sj_com_cost"] / best_sj
    return rows


def test_ablation_driver_choice(benchmark, figure_output):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        rows,
        ["driver", "com_cost", "sj_com_cost", "com_vs_best", "sj_vs_best"],
        title="Ablation: driver-relation choice (optimal plan per rooting)",
        float_format="{:.4g}",
    )
    figure_output("ablation_driver", table)
    spread = max(r["com_vs_best"] for r in rows)
    # The driver choice matters: some rooting is measurably worse.
    assert spread > 1.05, spread
