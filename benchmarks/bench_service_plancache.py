"""Plan-cache benchmark: cold planning latency vs cached replanning.

Records the measured latencies and speedup to
``benchmarks/results/BENCH_service_plancache.json`` so future PRs can
track the regression/improvement history.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro import QuerySession
from repro.storage import Catalog

RESULTS_DIR = Path(__file__).parent / "results"

#: the paper's 6-relation running example schema, at benchmark scale
SQL = ("select * from R1, R2, R3, R4, R5, R6 "
       "where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D "
       "and R1.E = R5.E and R5.F = R6.F")


def make_catalog(seed=3, driver_rows=4_000):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add_table("R1", {
        "A": np.arange(driver_rows),
        "B": rng.integers(0, 60, driver_rows),
        "E": rng.integers(0, 50, driver_rows),
    })
    catalog.add_table("R2", {
        "B": rng.integers(0, 70, 3_000),
        "C": rng.integers(0, 55, 3_000),
        "D": rng.integers(0, 65, 3_000),
    })
    catalog.add_table("R3", {"C": rng.integers(0, 60, 2_500)})
    catalog.add_table("R4", {"D": rng.integers(0, 75, 2_000)})
    catalog.add_table("R5", {"E": rng.integers(0, 55, 2_800),
                             "F": rng.integers(0, 50, 2_800)})
    catalog.add_table("R6", {"F": rng.integers(0, 50, 1_500),
                             "G": rng.integers(0, 5, 1_500)})
    return catalog


def _best_of(fn, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_cold_plan_latency(benchmark):
    catalog = make_catalog()

    def cold_plan():
        QuerySession(catalog).plan(SQL)

    benchmark.pedantic(cold_plan, rounds=3, iterations=1, warmup_rounds=1)


def test_cached_plan_latency(benchmark):
    session = QuerySession(make_catalog())
    session.plan(SQL)  # warm the cache
    benchmark(lambda: session.plan(SQL))
    assert session.plan_cache.stats.hits > 0


def test_record_cold_vs_cached_speedup():
    catalog = make_catalog()
    session = QuerySession(catalog)
    t0 = time.perf_counter()
    session.plan(SQL)
    cold_seconds = time.perf_counter() - t0
    cached_seconds = _best_of(lambda: session.plan(SQL))
    speedup = cold_seconds / cached_seconds
    record = {
        "benchmark": "service_plancache",
        "query": "6-relation running example",
        "cold_plan_ms": round(cold_seconds * 1e3, 4),
        "cached_plan_ms": round(cached_seconds * 1e3, 4),
        "speedup": round(speedup, 1),
        "plan_cache": {
            "hits": session.plan_cache.stats.hits,
            "misses": session.plan_cache.stats.misses,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service_plancache.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{json.dumps(record, indent=2)}\n[saved to {path}]")
    # Loose floor only: shared CI runners make tight wall-clock ratios
    # flaky.  The recorded JSON carries the real number (typically
    # >= 10x; ~50x locally); the 10x acceptance check lives in
    # tests/service/test_session.py with a best-of-N hot measurement.
    assert speedup >= 2.0, record
