"""Distributed scatter/gather benchmark: local vs worker-pool execution.

Runs a warm (plan-cached) heavy-join mix through one
:class:`repro.QuerySession` per placement configuration — ``local`` and
``distributed`` with {1, 2, 4} workers — over a hash-partitioned
catalog, and records warm QPS plus p50/p95 latency per configuration,
alongside the scatter/gather overhead telemetry the reports carry.

Results land in ``benchmarks/results/BENCH_distributed.json``.

``--smoke`` shrinks the grid for CI; ``--check-baseline`` compares the
fresh local warm QPS against the committed file before overwriting and
fails on a >30% regression.  The paper-motivated speedup expectation —
distributed 4-worker warm QPS at least 2x local — is asserted only on
hosts with >= 4 cores; single-core containers record the ratio without
gating on it (process workers cannot beat the GIL-free local loop when
they all share one core).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import QuerySession
from repro.storage import Catalog

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "BENCH_distributed.json"

#: first join is on the partitioning key, so distributed runs
#: hash-route driver rows to the owning worker's shards
SQL = ("select * from R1, R2, R3, R5 "
       "where R1.B = R2.B and R2.C = R3.C and R1.E = R5.E")

WORKER_COUNTS = (1, 2, 4)
SHARDS = 8

QUERIES_PER_CELL = 64
SMOKE_QUERIES_PER_CELL = 12

BASELINE_TOLERANCE = 0.30
#: distributed(4 workers) warm QPS must reach this multiple of local —
#: enforced only on hosts with >= SPEEDUP_MIN_CPUS cores
SPEEDUP_FLOOR = 2.0
SPEEDUP_MIN_CPUS = 4


def make_catalog(seed=11, driver_rows=6_000, child_rows=4_000, domain=1_500):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add_table("R1", {
        "A": np.arange(driver_rows),
        "B": rng.integers(0, domain, driver_rows),
        "E": rng.integers(0, domain, driver_rows),
    })
    catalog.add_table("R2", {
        "B": rng.integers(0, domain, child_rows),
        "C": rng.integers(0, domain, child_rows),
    })
    catalog.add_table("R3", {"C": rng.integers(0, domain, child_rows)})
    catalog.add_table("R5", {"E": rng.integers(0, domain, child_rows)})
    return catalog


def percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def bench_cell(catalog, num_queries, *, placement, num_workers):
    """Warm-mix QPS + latency for one placement configuration."""
    kwargs = {"partitioning": SHARDS}
    if placement == "distributed":
        kwargs.update(placement="distributed", num_workers=num_workers)
    session = QuerySession(catalog, **kwargs)
    try:
        # warm the plan cache — and, distributed, the worker processes
        # and their worker-local indexes — untimed
        warmup = session.execute(SQL)
        assert warmup.ok, warmup.error
        latencies = []
        start = time.perf_counter()
        scatter = gather = 0.0
        for _ in range(num_queries):
            begin = time.perf_counter()
            report = session.execute(SQL)
            latencies.append(time.perf_counter() - begin)
            assert report.ok, (
                f"query failed mid-benchmark: error={report.error!r}"
            )
            scatter += report.scatter_seconds
            gather += report.gather_seconds
        wall = time.perf_counter() - start
        label = (placement if placement == "local"
                 else f"distributed-{num_workers}w")
        return {
            "configuration": label,
            "placement": placement,
            "num_workers": num_workers if placement == "distributed" else 0,
            "queries": num_queries,
            "qps": round(num_queries / wall, 1),
            "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
            "p95_ms": round(percentile(latencies, 0.95) * 1e3, 3),
            "wall_seconds": round(wall, 3),
            "scatter_ms_per_query": round(scatter / num_queries * 1e3, 3),
            "gather_ms_per_query": round(gather / num_queries * 1e3, 3),
            "workers_used": warmup.workers_used,
        }
    finally:
        session.close()


def check_baseline(record):
    """Fail on a >30% local warm-QPS drop vs the committed results."""
    if not RESULTS_PATH.exists():
        print("[baseline check skipped: no committed results]")
        return
    committed = json.loads(RESULTS_PATH.read_text())
    baseline = {
        row["configuration"]: row["qps"]
        for row in committed.get("configurations", [])
        if row["placement"] == "local"
    }
    failures = []
    for row in record["configurations"]:
        baseline_qps = baseline.get(row["configuration"])
        if not baseline_qps:
            continue
        floor = baseline_qps * (1.0 - BASELINE_TOLERANCE)
        status = "ok" if row["qps"] >= floor else "REGRESSION"
        print(f"[baseline] {row['configuration']}: {row['qps']:.0f} qps vs "
              f"committed {baseline_qps:.0f} (floor {floor:.0f}) {status}")
        if row["qps"] < floor:
            failures.append(row)
    assert not failures, (
        f"local warm QPS regressed >{BASELINE_TOLERANCE:.0%} vs the "
        f"committed baseline: {failures}"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: small query counts",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help=f"fail if local warm QPS drops >{BASELINE_TOLERANCE:.0%} vs "
             f"the committed results file",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    per_cell = SMOKE_QUERIES_PER_CELL if args.smoke else QUERIES_PER_CELL
    gate_enforced = cpus >= SPEEDUP_MIN_CPUS

    catalog = make_catalog()
    start = time.perf_counter()
    rows = [bench_cell(catalog, per_cell, placement="local", num_workers=0)]
    for workers in WORKER_COUNTS:
        rows.append(bench_cell(
            catalog, per_cell, placement="distributed", num_workers=workers,
        ))
    for row in rows:
        print(f"{row['configuration']:>15} qps={row['qps']:>8} "
              f"p50={row['p50_ms']:>8}ms p95={row['p95_ms']:>8}ms "
              f"scatter={row['scatter_ms_per_query']:>6}ms "
              f"gather={row['gather_ms_per_query']:>6}ms")

    local_qps = rows[0]["qps"]
    speedups = {
        row["configuration"]: round(row["qps"] / local_qps, 2)
        for row in rows[1:]
    }
    record = {
        "benchmark": "distributed",
        "smoke": args.smoke,
        "host": {"cpus": cpus},
        "shards": SHARDS,
        "query": "4-relation heavy join, hash-routed on the shard key",
        "configurations": rows,
        "speedup_vs_local": speedups,
        "speedup_gate": {
            "floor": SPEEDUP_FLOOR,
            "enforced": gate_enforced,
            "reason": (None if gate_enforced else
                       f"host has {cpus} core(s) < {SPEEDUP_MIN_CPUS}: "
                       f"recorded, not gated"),
        },
        "total_seconds": round(time.perf_counter() - start, 2),
    }

    if args.check_baseline:
        check_baseline(record)

    print(json.dumps({k: v for k, v in record.items()
                      if k != "configurations"}, indent=2))
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[saved to {RESULTS_PATH}]")

    # Sanity gates (shape always; speedup only on parallel hosts).
    for row in rows:
        assert row["qps"] > 0, row
        assert row["p50_ms"] <= row["p95_ms"] + 1e-9, row
    if gate_enforced:
        best = speedups.get(f"distributed-{max(WORKER_COUNTS)}w", 0.0)
        assert best >= SPEEDUP_FLOOR, (
            f"distributed {max(WORKER_COUNTS)}-worker warm QPS only "
            f"{best:.2f}x of local on a {cpus}-core host "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
    return record


if __name__ == "__main__":
    main()
