"""Figure 6 benchmark: plan-choice sensitivity to estimation errors."""

from repro.bench import fig06
from repro.bench.runner import render_table


def test_fig06_estimation_error(benchmark, figure_output):
    rows = benchmark.pedantic(
        fig06.run,
        kwargs={"num_samples": 100, "num_dimensions": 10, "seed": 0},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["error", "m_range", "fo_range", "model",
         "mean_pct_diff", "median_pct_diff", "p90_pct_diff"],
        title="Figure 6: % cost difference, estimate-chosen vs optimal plan",
    )
    figure_output("fig06", table)
    # The new (match-based) model should be at least as robust as the
    # selectivity model on average across all cells.
    sel = [r["mean_pct_diff"] for r in rows if r["model"] == "selectivity"]
    match = [r["mean_pct_diff"] for r in rows if r["model"] == "match"]
    assert sum(match) <= sum(sel)
