"""Ablation: result-expansion batching (Section 4.3).

The breadth-first expansion processes driver entries in batches; tiny
batches lose vectorization, huge batches blow the working set.  This
ablation sweeps the batch size on a fixed factorized result and reports
expansion throughput.
"""

import time

from repro.bench.runner import render_table
from repro.engine import execute
from repro.modes import ExecutionMode
from repro.workloads import generate_dataset, snowflake, specs_from_ranges


def _sweep(batch_sizes, driver_size=4_000, seed=0):
    query = snowflake(3, 1)
    specs = specs_from_ranges(query, (0.4, 0.8), (2.0, 5.0), seed=seed)
    dataset = generate_dataset(query, driver_size, specs, seed=seed)
    result = execute(dataset.catalog, query, mode=ExecutionMode.COM,
                     flat_output=False)
    output_size = result.output_size
    rows = []
    for batch_entries in batch_sizes:
        start = time.perf_counter()
        produced = 0
        batches = 0
        for batch in result.factorized.expand(batch_entries=batch_entries):
            produced += len(batch[query.root])
            batches += 1
        elapsed = time.perf_counter() - start
        assert produced == output_size
        rows.append({
            "batch_entries": batch_entries,
            "batches": batches,
            "rows_out": produced,
            "seconds": elapsed,
            "rows_per_sec": produced / max(elapsed, 1e-9),
        })
    return rows


def test_ablation_expansion_batching(benchmark, figure_output):
    rows = benchmark.pedantic(
        _sweep,
        kwargs={"batch_sizes": [16, 128, 1024, 8192, 65536]},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        ["batch_entries", "batches", "rows_out", "seconds", "rows_per_sec"],
        title="Ablation: expansion batch size vs throughput",
        float_format="{:.4g}",
    )
    figure_output("ablation_expansion", table)
    # Every batch size produces the same output, and large batches must
    # not be slower than the tiniest one (vectorization pays off).
    assert len({r["rows_out"] for r in rows}) == 1
    assert rows[-1]["seconds"] <= rows[0]["seconds"] * 1.5
