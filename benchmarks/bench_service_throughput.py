"""Service-throughput benchmark: QPS and latency vs client concurrency.

Drives an :class:`repro.AsyncQueryService` with {1, 4, 16, 64}
concurrent asyncio clients over three traffic mixes:

* **warm** — one repeated query: every request is a plan-cache hit, so
  the measured curve is pure execution-path concurrency;
* **cold** — a distinct selection constant per query: every request
  misses the plan cache and pays planning (offloaded to the planning
  process pool when the host has more than one core);
* **prepared** — a ``?``-parameterized statement bound with a fresh
  constant per request: planning once, re-filter + execute per request.

Results (QPS, p50/p95/p99 latency, cache and admission counters) are
written to ``benchmarks/results/BENCH_service_throughput.json``.

``--smoke`` runs a small grid for CI; ``--check-baseline`` compares the
fresh warm-mix QPS against the committed results file *before*
overwriting it and fails on a >30% regression — the CI perf guard.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro import AsyncQueryService, QuerySession
from repro.storage import Catalog

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "BENCH_service_throughput.json"

#: the paper's 6-relation running example, at a selectivity-balanced
#: scale (every join s ~= 1.25) so the flat result stays executable
SQL = ("select * from R1, R2, R3, R4, R5, R6 "
       "where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D "
       "and R1.E = R5.E and R5.F = R6.F")

CONCURRENCIES = (1, 4, 16, 64)
SMOKE_CONCURRENCIES = (1, 4, 16)

#: queries per (mix, concurrency) cell: enough for stable percentiles
QUERIES_PER_CELL = {"warm": 256, "cold": 48, "prepared": 192}
SMOKE_QUERIES_PER_CELL = {"warm": 64, "cold": 12, "prepared": 48}

#: warm-QPS regression tolerance for --check-baseline
BASELINE_TOLERANCE = 0.30


def make_catalog(seed=3, driver_rows=4_000, child_rows=2_500, domain=2_000):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add_table("R1", {
        "A": np.arange(driver_rows),
        "B": rng.integers(0, domain, driver_rows),
        "E": rng.integers(0, domain, driver_rows),
    })
    catalog.add_table("R2", {
        "B": rng.integers(0, domain, child_rows),
        "C": rng.integers(0, domain, child_rows),
        "D": rng.integers(0, domain, child_rows),
    })
    catalog.add_table("R3", {"C": rng.integers(0, domain, child_rows)})
    catalog.add_table("R4", {"D": rng.integers(0, domain, child_rows)})
    catalog.add_table("R5", {"E": rng.integers(0, domain, child_rows),
                             "F": rng.integers(0, domain, child_rows)})
    catalog.add_table("R6", {"F": rng.integers(0, domain, child_rows),
                             "G": rng.integers(0, 5, child_rows)})
    return catalog


def percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


async def run_clients(concurrency, jobs):
    """Run ``jobs`` (awaitable factories) over ``concurrency`` clients.

    Returns per-job wall latencies in seconds, in completion order.
    Clients pull from one shared work list, mimicking a server's
    request queue.
    """
    pending = list(enumerate(jobs))
    pending.reverse()
    latencies = []

    async def client():
        while pending:
            _, job = pending.pop()
            start = time.perf_counter()
            report = await job()
            latencies.append(time.perf_counter() - start)
            # failures are embedded in the report, never raised — a
            # broken query must fail the benchmark loudly, not get
            # counted as (suspiciously fast) healthy throughput
            if not report.ok:
                raise AssertionError(
                    f"query failed mid-benchmark: "
                    f"timed_out={report.timed_out} error={report.error!r}"
                )

    await asyncio.gather(*(client() for _ in range(concurrency)))
    return latencies


def summarize(mix, concurrency, latencies, wall_seconds):
    return {
        "mix": mix,
        "concurrency": concurrency,
        "queries": len(latencies),
        "qps": round(len(latencies) / wall_seconds, 1),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(percentile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "wall_seconds": round(wall_seconds, 3),
    }


def bench_mix(mix, catalog, concurrency, num_queries, planning_workers,
              execution="auto", validate="off", placement="local"):
    """One (mix, concurrency) cell; fresh session so caches start cold."""
    session = QuerySession(catalog, partitioning="off", execution=execution,
                           validate=validate, placement=placement)
    service = None
    blocking = None

    if mix == "warm":
        service = AsyncQueryService(session)
        session.execute(SQL)  # populate the plan cache once, untimed

        def job_for(i):
            return lambda: service.execute(SQL)

    elif mix == "cold":
        service = AsyncQueryService(
            session, planning_workers=planning_workers,
            process_min_relations=4,
        )

        # distinct driver constant per query: every plan-cache key is
        # new, so each request pays cold planning + stats derivation
        def job_for(i):
            sql = SQL + f" and R1.A = {i}"
            return lambda: service.execute(sql)

    elif mix == "prepared":
        # deliberately bypasses AsyncQueryService: a PreparedStatement
        # already skips per-request planning, so this mix measures the
        # re-filter + execute floor on a bare thread pool
        statement = session.prepare(SQL + " and R1.A = ?")
        statement.execute(0)  # plan the template once, untimed
        blocking = ThreadPoolExecutor(
            max_workers=min(os.cpu_count() or 1, 16),
            thread_name_prefix="repro-prepared",
        )

        def job_for(i):
            async def run():
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    blocking, statement.execute, i
                )

            return run

    else:
        raise ValueError(f"unknown mix {mix!r}")

    jobs = [job_for(i) for i in range(num_queries)]
    start = time.perf_counter()
    latencies = asyncio.run(run_clients(concurrency, jobs))
    wall = time.perf_counter() - start
    row = summarize(mix, concurrency, latencies, wall)
    if service is not None:
        row["service_stats"] = service.stats()
        service.close()
    row["cache_stats"] = session.cache_stats()
    session.close()
    if blocking is not None:
        blocking.shutdown(wait=False)
    return row


def check_baseline(record):
    """Fail on a >30% warm-QPS drop vs the committed results file."""
    if not RESULTS_PATH.exists():
        print("[baseline check skipped: no committed results]")
        return
    committed = json.loads(RESULTS_PATH.read_text())
    # smoke and full runs are comparable on the warm mix: per-request
    # work is identical, only the request count differs — so the guard
    # checks every (mix, concurrency) cell the two runs share
    baseline_rows = {
        (row["mix"], row["concurrency"]): row["qps"]
        for row in committed.get("mixes", [])
        if row["mix"] == "warm"
    }
    failures = []
    for row in record["mixes"]:
        if row["mix"] != "warm":
            continue
        baseline_qps = baseline_rows.get((row["mix"], row["concurrency"]))
        if not baseline_qps:
            continue
        floor = baseline_qps * (1.0 - BASELINE_TOLERANCE)
        status = "ok" if row["qps"] >= floor else "REGRESSION"
        print(f"[baseline] warm@c={row['concurrency']}: "
              f"{row['qps']:.0f} qps vs committed {baseline_qps:.0f} "
              f"(floor {floor:.0f}) {status}")
        if row["qps"] < floor:
            failures.append(row)
    assert not failures, (
        f"warm-cache QPS regressed >{BASELINE_TOLERANCE:.0%} vs the "
        f"committed baseline: {failures}"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: small query counts, concurrency up to 16",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help=f"fail if warm QPS drops >{BASELINE_TOLERANCE:.0%} vs the "
             f"committed results file",
    )
    parser.add_argument(
        "--execution", choices=("auto", "vectorized", "interpreted"),
        default="auto",
        help="execution-kernel knob forwarded to QuerySession; "
             "'interpreted' measures the pure-Python oracle path "
             "(results are printed but not saved over the committed file)",
    )
    parser.add_argument(
        "--validate", choices=("off", "basic", "full"), default="off",
        help="plan-verification knob forwarded to QuerySession; the "
             "warm mix must be unaffected (verdicts cache per plan "
             "fingerprint) and the cold mix shows the verifier's cost "
             "(results are printed but not saved over the committed "
             "file)",
    )
    parser.add_argument(
        "--placement", choices=("local", "distributed"), default="local",
        help="execution placement forwarded to QuerySession; "
             "'distributed' scatters every execution across the worker "
             "pool (results are printed but not saved over the "
             "committed file — see bench_distributed.py for the "
             "dedicated local-vs-distributed comparison)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    planning_workers = 1 if cpus > 1 else 0
    concurrencies = SMOKE_CONCURRENCIES if args.smoke else CONCURRENCIES
    per_cell = SMOKE_QUERIES_PER_CELL if args.smoke else QUERIES_PER_CELL

    catalog = make_catalog()
    start = time.perf_counter()
    rows = []
    for mix in ("warm", "cold", "prepared"):
        for concurrency in concurrencies:
            row = bench_mix(mix, catalog, concurrency, per_cell[mix],
                            planning_workers, execution=args.execution,
                            validate=args.validate,
                            placement=args.placement)
            rows.append(row)
            print(f"{mix:>9} c={concurrency:<3} "
                  f"qps={row['qps']:>8} p50={row['p50_ms']:>8}ms "
                  f"p95={row['p95_ms']:>8}ms p99={row['p99_ms']:>8}ms")

    warm = {row["concurrency"]: row["qps"]
            for row in rows if row["mix"] == "warm"}
    record = {
        "benchmark": "service_throughput",
        "smoke": args.smoke,
        "execution": args.execution,
        "validate": args.validate,
        "placement": args.placement,
        "host": {"cpus": cpus, "planning_workers_cold_mix": planning_workers},
        "query": "6-relation running example (selectivity-balanced)",
        "mixes": rows,
        "warm_scaling_vs_c1": {
            str(c): round(qps / warm[1], 2)
            for c, qps in sorted(warm.items()) if warm.get(1)
        },
        "total_seconds": round(time.perf_counter() - start, 2),
    }

    if args.check_baseline:
        check_baseline(record)

    print(json.dumps({k: v for k, v in record.items() if k != "mixes"},
                     indent=2))
    if args.execution != "interpreted" and args.validate == "off" \
            and args.placement == "local":
        # the committed file tracks the shipping (vectorized, unvalidated,
        # local) path; oracle, validated or distributed runs are for
        # comparison only and must not become the baseline the CI guard
        # measures against
        RESULTS_DIR.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(f"[saved to {RESULTS_PATH}]")
    else:
        print("[comparison run: results not saved over committed baseline]")

    # Sanity gates (shape, not absolute speed: CI hardware varies).
    for row in rows:
        assert row["qps"] > 0, row
        assert row["p50_ms"] <= row["p99_ms"] + 1e-9, row
    # On a genuinely parallel host the warm curve must scale; single-core
    # runners still record the curve but cannot be held to a speedup.
    if cpus >= 4 and 16 in warm and warm.get(1):
        scaling = warm[16] / warm[1]
        assert scaling >= 2.0, (
            f"warm QPS at concurrency 16 only {scaling:.2f}x of "
            f"concurrency 1 on a {cpus}-core host"
        )
    median_warm = statistics.median(warm.values())
    print(f"[warm median {median_warm:.0f} qps across concurrencies]")
    return record


if __name__ == "__main__":
    main()
