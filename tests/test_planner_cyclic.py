"""Planner-level tests for first-class cyclic queries.

Cyclic :class:`ParsedQuery` objects flow through :meth:`Planner.plan`
directly (no manual ``spanning_tree_decomposition`` dance): the joint
spanning-tree + join-order search returns a residual-carrying
:class:`PhysicalPlan` that executes on merged and partitioned catalogs
alike, rehydrates from a :class:`PlanSpec`, and never costs more than
the greedy Kruskal baseline.
"""

import numpy as np
import pytest

from repro.core import (
    QueryStats,
    execute_cyclic,
    parse_query,
    spanning_tree_decomposition,
)
from repro.core.parser import ParseError
from repro.planner import Planner
from repro.storage import Catalog
from repro.workloads.cyclic import (
    clique_query,
    cyclic_catalog,
    grid_query,
    to_sql,
)

TRIANGLE = (
    "select * from A, B, C "
    "where A.x = B.x and B.y = C.y and C.z = A.z"
)


@pytest.fixture
def triangle_catalog():
    rng = np.random.default_rng(5)
    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 6, 30),
                            "z": rng.integers(0, 6, 30)})
    catalog.add_table("B", {"x": rng.integers(0, 6, 25),
                            "y": rng.integers(0, 6, 25)})
    catalog.add_table("C", {"y": rng.integers(0, 6, 20),
                            "z": rng.integers(0, 6, 20)})
    return catalog


def sorted_rows(rows, relations):
    return sorted(zip(*(rows[rel].tolist() for rel in relations)))


def reference_rows(catalog, parsed, driver=None):
    """The greedy decomposition executed on the merged catalog."""
    plan = spanning_tree_decomposition(parsed, driver=driver)
    _, _, rows = execute_cyclic(catalog, plan, collect_output=True)
    return sorted_rows(rows, list(parsed.relations))


def test_cyclic_sql_plans_directly(triangle_catalog):
    plan = Planner(triangle_catalog).plan(TRIANGLE, mode="auto")
    assert plan.is_cyclic
    assert len(plan.residuals) == 1
    assert len(plan.residual_selectivities) == 1
    assert plan.query.num_relations == 3
    result = plan.execute(collect_output=True)
    expected = reference_rows(triangle_catalog, parse_query(TRIANGLE))
    assert sorted_rows(result.output_rows, ["A", "B", "C"]) == expected


def test_joint_never_costlier_than_greedy(triangle_catalog):
    planner = Planner(triangle_catalog, stats_cache=True)
    joint = planner.plan(TRIANGLE, mode="auto")
    greedy = planner.plan(TRIANGLE, mode="auto", tree_search="greedy")
    assert joint.predicted_cost <= greedy.predicted_cost
    greedy_result = greedy.execute(collect_output=True)
    joint_result = joint.execute(collect_output=True)
    assert sorted_rows(joint_result.output_rows, ["A", "B", "C"]) == \
        sorted_rows(greedy_result.output_rows, ["A", "B", "C"])


def test_cyclic_explain_and_fingerprint(triangle_catalog):
    planner = Planner(triangle_catalog, stats_cache=True)
    plan = planner.plan(TRIANGLE, mode="COM")
    assert "RESIDUAL" in plan.explain()
    assert plan.fingerprint() == planner.plan(TRIANGLE,
                                              mode="COM").fingerprint()


def test_cyclic_driver_auto_and_budget(triangle_catalog):
    planner = Planner(triangle_catalog, stats_cache=True,
                      planning_budget_ms=5_000)
    plan = planner.plan(TRIANGLE, mode="auto", optimizer="auto",
                        driver="auto")
    result = plan.execute(collect_output=True)
    expected = reference_rows(triangle_catalog, parse_query(TRIANGLE))
    assert sorted_rows(result.output_rows, ["A", "B", "C"]) == expected


def test_cyclic_partitioned_plan_matches_merged(triangle_catalog):
    rng = np.random.default_rng(9)
    catalog = Catalog()
    catalog.add_table("A", {"x": rng.integers(0, 8, 400),
                            "z": rng.integers(0, 8, 400)})
    catalog.add_table("B", {"x": rng.integers(0, 8, 350),
                            "y": rng.integers(0, 8, 350)})
    catalog.add_table("C", {"y": rng.integers(0, 8, 300),
                            "z": rng.integers(0, 8, 300)})
    merged = Planner(catalog, stats_cache=True).plan(TRIANGLE, mode="COM")
    reference = merged.execute(collect_output=True)
    for shards in (2, 8):
        planner = Planner(catalog, stats_cache=True, partitioning=shards)
        plan = planner.plan(TRIANGLE, mode="COM")
        assert plan.num_shards == shards
        result = plan.execute(collect_output=True)
        assert result.shards_used == shards
        assert result.output_size == reference.output_size
        assert sorted_rows(result.output_rows, ["A", "B", "C"]) == \
            sorted_rows(reference.output_rows, ["A", "B", "C"])
        assert result.counters.residual_checks == \
            reference.counters.residual_checks


def test_cyclic_rehydrate_round_trip(triangle_catalog):
    planner = Planner(triangle_catalog, stats_cache=True, partitioning=2)
    plan = planner.plan(TRIANGLE, mode="COM")
    spec = plan.to_spec(triangle_catalog.fingerprint())
    assert spec.residuals == plan.residuals
    rehydrated = planner.rehydrate(spec, parse_query(TRIANGLE),
                                   partitioning=2)
    assert rehydrated.fingerprint() == plan.fingerprint()
    assert rehydrated.execute().output_size == plan.execute().output_size


def test_prebuilt_stats_rejected_for_cyclic(triangle_catalog):
    stats = QueryStats(10.0, {})
    with pytest.raises(ValueError, match="per-tree statistics"):
        Planner(triangle_catalog).plan(TRIANGLE, stats=stats)


def test_tree_search_validated(triangle_catalog):
    with pytest.raises(ValueError, match="tree_search"):
        Planner(triangle_catalog).plan(TRIANGLE, tree_search="exhaustive")
    with pytest.raises(ValueError, match="max_spanning_trees"):
        Planner(triangle_catalog, max_spanning_trees=0)


def test_acyclic_queries_unaffected(triangle_catalog):
    plan = Planner(triangle_catalog).plan(
        "select * from A, B where A.x = B.x"
    )
    assert not plan.is_cyclic
    assert plan.residuals == ()


def test_disconnected_still_rejected(triangle_catalog):
    with pytest.raises(ParseError, match="disconnected"):
        Planner(triangle_catalog).plan("select * from A, B, C where A.x = B.x")


def test_selections_push_down_on_cyclic(triangle_catalog):
    literal = int(triangle_catalog.table("A").column("x")[0])
    sql = TRIANGLE + f" and A.x = {literal}"
    plan = Planner(triangle_catalog, stats_cache=True).plan(sql, mode="COM")
    result = plan.execute(collect_output=True)
    a, b, c = (triangle_catalog.table(name) for name in "ABC")
    expected = sum(
        1
        for i in range(len(a)) if a.column("x")[i] == literal
        for j in range(len(b)) if a.column("x")[i] == b.column("x")[j]
        for k in range(len(c))
        if b.column("y")[j] == c.column("y")[k]
        and c.column("z")[k] == a.column("z")[i]
    )
    assert result.output_size == expected


def test_larger_generated_shapes_plan_and_execute():
    for parsed in (clique_query(5), grid_query(2, 3)):
        catalog = cyclic_catalog(parsed, rows_per_relation=40,
                                 key_domain=(4, 12), seed=1)
        planner = Planner(catalog, stats_cache=True)
        joint = planner.plan(parsed, mode="auto", optimizer="auto")
        greedy = planner.plan(parsed, mode="auto", optimizer="auto",
                              tree_search="greedy")
        assert joint.predicted_cost <= greedy.predicted_cost
        assert joint.execute().output_size == greedy.execute().output_size
        # the SQL text path resolves to the same fingerprint
        via_sql = planner.plan(to_sql(parsed), mode="auto",
                               optimizer="auto")
        assert via_sql.fingerprint() == joint.fingerprint()
