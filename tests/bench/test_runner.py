"""Unit tests for the bench runner helpers."""

import math

import pytest

from repro.bench.runner import (
    ModeRun,
    geometric_mean,
    relative_to,
    render_table,
    run_all_modes,
)
from repro.modes import ExecutionMode

from tests.helpers import make_running_example_query, make_small_catalog


def test_run_all_modes_produces_all_entries():
    catalog = make_small_catalog()
    query = make_running_example_query()
    runs = run_all_modes(catalog, query, ["R2", "R3", "R4", "R5", "R6"])
    assert set(runs) == set(ExecutionMode.all_modes())
    sizes = {run.output_size for run in runs.values()}
    assert len(sizes) == 1


def test_run_all_modes_budget_becomes_timeout():
    catalog = make_small_catalog()
    query = make_running_example_query()
    runs = run_all_modes(catalog, query, ["R2", "R3", "R4", "R5", "R6"],
                         max_intermediate_tuples=10)
    assert all(run.timed_out for run in runs.values())


def test_relative_to_normalizes():
    runs = {
        ExecutionMode.COM: ModeRun(ExecutionMode.COM, wall_time=2.0),
        ExecutionMode.STD: ModeRun(ExecutionMode.STD, wall_time=6.0),
    }
    ratios = relative_to(runs)
    assert ratios[ExecutionMode.COM] == pytest.approx(1.0)
    assert ratios[ExecutionMode.STD] == pytest.approx(3.0)


def test_relative_to_timeout_is_inf():
    runs = {
        ExecutionMode.COM: ModeRun(ExecutionMode.COM, wall_time=2.0),
        ExecutionMode.STD: ModeRun.timeout(ExecutionMode.STD),
    }
    ratios = relative_to(runs)
    assert math.isinf(ratios[ExecutionMode.STD])


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert math.isnan(geometric_mean([]))
    assert math.isinf(geometric_mean([1.0, math.inf]))
    assert geometric_mean([2.0, math.nan]) == pytest.approx(2.0)


def test_render_table_formats():
    rows = [
        {"a": "x", "b": 1.23456, "c": math.inf},
        {"a": "longer", "b": math.nan, "c": 2},
    ]
    text = render_table(rows, ["a", "b", "c"], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "timeout" in text
    assert "-" in text  # NaN rendering
    assert "longer" in text


def test_render_table_empty_rows():
    text = render_table([], ["col1", "col2"])
    assert "col1" in text
