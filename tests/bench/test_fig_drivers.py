"""Smoke tests: every figure driver runs at tiny scale and returns
well-formed rows.  Full-scale runs live in benchmarks/."""

import math

from repro.bench import FIGURES, fig04, fig06, fig10, fig11, fig12, fig13, fig14, fig15, fig16


def test_registry_covers_all_figures():
    assert sorted(FIGURES, key=int) == ["4", "6", "10", "11", "12", "13",
                                        "14", "15", "16"]


def test_fig04_tiny():
    rows = fig04.run(num_tasks=12, scale=0.5, seed=1)
    assert rows
    for row in rows:
        assert row["avg_q_error"] >= 1.0
        assert row["quantity"] in ("match_prob", "fanout")


def test_fig06_tiny():
    rows = fig06.run(num_samples=5, num_dimensions=5, seed=1)
    assert len(rows) == 2 * 2 * 3 * 2  # errors x m-ranges x fo-ranges x models
    for row in rows:
        assert row["mean_pct_diff"] >= -1e-9


def test_fig10_tiny():
    rows = fig10.run(num_trees=4, max_nodes=8, seed=1)
    assert len(rows) == 4 * 3
    for row in rows:
        assert row["median_ratio"] >= 1.0 - 1e-9


def test_fig11_tiny():
    rows = fig11.run(driver_size=800, shapes=["star"],
                     m_ranges=[(0.1, 0.5)], seed=1)
    assert len(rows) == 2 * 6  # flat/factorized x 6 modes
    com_rows = [r for r in rows if r["mode"] == "COM"]
    for row in com_rows:
        assert row["rel_time"] == 1.0 or math.isnan(row["rel_time"])


def test_fig12_tiny():
    rows = fig12.run(datasets=["epinions"], num_queries=2, scale=0.15,
                     seed=1, max_expected_output=50_000.0)
    assert len(rows) == 6
    assert {row["dataset"] for row in rows} == {"epinions"}


def test_fig13_tiny():
    rows = fig13.run(driver_size=1000, fanouts=(2.0,), m_values=[0.2, 0.8])
    assert len(rows) == 4 * 1 * 2 * 5
    for row in rows:
        assert row["estimated_cost"] > 0


def test_fig14_tiny():
    summary, scatter = fig14.run(driver_size=1500, orders_per_query=5,
                                 seed=1)
    assert summary[-1]["shape"] == "ALL"
    assert len(scatter) == 4 * 5


def test_fig15_tiny():
    rows = fig15.run(driver_size=1200, normal_sigmas=(2.0,),
                     exponential_means=(5.0,), seed=1)
    assert len(rows) == 2
    for row in rows:
        assert 0.5 < row["probe_ratio"] < 1.5


def test_fig16_tiny():
    rows = fig16.run(driver_size=800, num_orders=3, seed=1,
                     ce_datasets=("epinions",), ce_scale=0.15,
                     metric="weighted_cost")
    queries = {row["query"] for row in rows}
    assert len(queries) == 5  # 4 synthetic cases + 1 CE dataset
    for row in rows:
        if not math.isnan(row["norm_min"]):
            assert 0.0 < row["norm_min"] <= 1.0 + 1e-9
