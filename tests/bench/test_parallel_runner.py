"""The figure-suite runner: smoke params, fan-out, error capture."""

import pytest

from repro.bench import FIGURES, SMOKE_PARAMS
from repro.bench.runner import FigureResult, run_figures


def test_smoke_params_cover_every_figure():
    assert set(SMOKE_PARAMS) == set(FIGURES)


def test_run_single_figure_smoke():
    results = run_figures(["13"], smoke=True)
    assert len(results) == 1
    result = results[0]
    assert result.ok
    assert result.figure == "13"
    assert "Figure 13" in result.output
    assert result.seconds > 0.0
    assert result.rows


def test_run_figures_parallel_two_jobs():
    results = run_figures(["6", "13"], jobs=2, smoke=True)
    assert [r.figure for r in results] == ["6", "13"]
    assert all(r.ok for r in results)
    assert all(r.output for r in results)


def test_streaming_callback_order():
    seen = []
    run_figures(["6", "13"], smoke=True, on_result=lambda r: seen.append(r.figure))
    assert seen == ["6", "13"]


def test_serial_stream_prints_live_and_still_captures(capsys):
    results = run_figures(["13"], smoke=True, stream=True)
    live = capsys.readouterr().out
    assert "Figure 13" in live            # mirrored to stdout as it ran
    assert results[0].output == live      # and captured in the result


def test_unknown_figure_rejected():
    with pytest.raises(ValueError, match="unknown figure"):
        run_figures(["99"])


def test_driver_failure_is_captured(monkeypatch):
    class Broken:
        @staticmethod
        def main(**kwargs):
            raise RuntimeError("driver exploded")

    monkeypatch.setitem(FIGURES, "13", Broken)
    result = run_figures(["13"], smoke=True)[0]
    assert isinstance(result, FigureResult)
    assert not result.ok
    assert "driver exploded" in result.error
