"""The ``python -m repro.bench`` CLI."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import main


def test_requires_an_argument(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["--figure", "99"])


def test_figure_13_via_subprocess():
    completed = subprocess.run(
        [sys.executable, "-m", "repro.bench", "--figure", "13"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0
    assert "Figure 13" in completed.stdout
    assert "estimated_cost" in completed.stdout
