"""The ``python -m repro.bench`` CLI."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import main
from tests.helpers import subprocess_env


def test_requires_an_argument(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["--figure", "99"])


def test_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["--all", "--jobs", "0"])


def test_figure_and_all_mutually_exclusive():
    with pytest.raises(SystemExit):
        main(["--all", "--figure", "4"])


def test_figure_13_via_subprocess():
    completed = subprocess.run(
        [sys.executable, "-m", "repro.bench", "--figure", "13"],
        capture_output=True,
        text=True,
        timeout=300,
        env=subprocess_env(),
    )
    assert completed.returncode == 0
    assert "Figure 13" in completed.stdout
    assert "estimated_cost" in completed.stdout


def test_smoke_single_figure_in_process(capsys):
    assert main(["--figure", "13", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "Figure 13 (smoke): ok" in out
    assert "estimated_cost" in out
