"""Tests for the end-to-end Planner."""

import pytest

from repro import ExecutionMode, Planner
from repro.planner import push_down_selections
from repro.core import parse_query

from tests.helpers import brute_force_join, make_running_example_query, make_small_catalog


@pytest.fixture(scope="module")
def catalog():
    return make_small_catalog()


SQL = (
    "select * from R1, R2, R3, R4, R5, R6 "
    "where R1.B = R2.B and R2.C = R3.C and R2.D = R4.D "
    "and R1.E = R5.E and R5.F = R6.F"
)


class TestPlanning:
    def test_plan_from_sql(self, catalog):
        planner = Planner(catalog)
        plan = planner.plan(SQL, mode=ExecutionMode.COM)
        assert plan.mode is ExecutionMode.COM
        assert plan.query.is_valid_order(plan.order)
        assert plan.predicted_cost > 0

    def test_plan_from_join_query(self, catalog):
        planner = Planner(catalog)
        plan = planner.plan(make_running_example_query(), mode="COM")
        assert plan.query.root == "R1"

    def test_invalid_query_type(self, catalog):
        with pytest.raises(TypeError, match="query must be"):
            Planner(catalog).plan(42)

    def test_invalid_optimizer(self, catalog):
        with pytest.raises(ValueError, match="optimizer"):
            Planner(catalog).plan(SQL, optimizer="bogus")

    def test_auto_mode_picks_cheapest(self, catalog):
        planner = Planner(catalog)
        auto = planner.plan(SQL, mode="auto")
        for mode in ExecutionMode.all_modes():
            fixed = planner.plan(SQL, mode=mode)
            assert auto.predicted_cost <= fixed.predicted_cost + 1e-9

    def test_auto_driver_not_worse_than_fixed(self, catalog):
        planner = Planner(catalog)
        fixed = planner.plan(SQL, mode="COM", driver="fixed")
        auto = planner.plan(SQL, mode="COM", driver="auto")
        assert auto.predicted_cost <= fixed.predicted_cost + 1e-9

    def test_greedy_optimizer_variant(self, catalog):
        planner = Planner(catalog)
        plan = planner.plan(SQL, mode="COM", optimizer="survival")
        assert plan.query.is_valid_order(plan.order)


class TestExecution:
    def test_executes_correctly(self, catalog):
        planner = Planner(catalog)
        query = make_running_example_query()
        expected = brute_force_join(catalog, query)
        for mode in ("auto", "STD", "SJ+COM"):
            plan = planner.plan(SQL, mode=mode)
            result = plan.execute(flat_output=True, collect_output=True)
            assert result.output_size == len(expected)

    def test_selection_pushdown(self, catalog):
        planner = Planner(catalog)
        sql = SQL + " and R1.B = 3"
        plan = planner.plan(sql, mode="COM")
        # The derived driver table only holds B = 3 rows.
        driver = plan.catalog.table("R1")
        assert (driver.column("B") == 3).all()
        result = plan.execute(collect_output=True)
        # Cross-check against brute force on the filtered catalog.
        expected = brute_force_join(plan.catalog, plan.query)
        assert result.output_size == len(expected)

    def test_push_down_selections_keeps_aliases_distinct(self, catalog):
        parsed = parse_query(
            "select * from R2 a, R2 b where a.C = b.D and a.B = 3"
        )
        derived = push_down_selections(catalog, parsed)
        assert set(derived.table_names) == {"a", "b"}
        assert (derived.table("a").column("B") == 3).all()
        assert len(derived.table("b")) == len(catalog.table("R2"))


class TestStatsMethods:
    def test_sampling_stats(self, catalog):
        planner = Planner(catalog)
        query = make_running_example_query()
        exact = planner.derive_stats(catalog, query, "exact")
        sampled = planner.derive_stats(catalog, query, "sampling",
                                       sample_fraction=1.0)
        for rel in query.non_root_relations:
            assert sampled.m(rel) == pytest.approx(exact.m(rel), abs=0.02)

    def test_prebuilt_stats_passthrough(self, catalog):
        planner = Planner(catalog)
        query = make_running_example_query()
        stats = planner.derive_stats(catalog, query, "exact")
        assert planner.derive_stats(catalog, query, stats) is stats

    def test_unknown_method_rejected(self, catalog):
        planner = Planner(catalog)
        query = make_running_example_query()
        with pytest.raises(ValueError, match="stats method"):
            planner.derive_stats(catalog, query, "bogus")


class TestExplain:
    def test_explain_mentions_every_join(self, catalog):
        planner = Planner(catalog)
        plan = planner.plan(SQL, mode="COM")
        text = plan.explain()
        for relation in plan.order:
            assert f"JOIN {relation}" in text
        assert "SCAN R1" in text
        assert "est_probes" in text

    def test_explain_sj_mentions_child_orders(self, catalog):
        planner = Planner(catalog)
        plan = planner.plan(SQL, mode="SJ+COM")
        assert "semi-join child orders" in plan.explain()
