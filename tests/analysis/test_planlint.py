"""Seeded plan corruptions: each must be caught with a stable code.

The verifier's contract is the diagnostic-code registry — these tests
hand-corrupt real planner output one invariant at a time and assert
``validate="full"`` flags exactly the expected code, so a refactor that
silently weakens a pass fails here by name.
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro import Planner, Table
from repro.analysis import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    PlanVerificationError,
    PlanVerifier,
    Severity,
    verify_plan,
    verify_spec,
)
from repro.core.cyclic import ResidualPredicate
from repro.core.parser import parse_query
from repro.core.query import JoinEdge, JoinQuery
from repro.planner import PhysicalPlan
from repro.storage import Catalog

ACYCLIC_SQL = (
    "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b AND r.x = 3"
)
CYCLIC_SQL = (
    "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b AND t.c = r.x"
)


def make_catalog(seed=0, rows=400):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add(Table("r", {
        "a": rng.integers(0, 40, rows),
        "x": rng.integers(0, 5, rows),
    }))
    catalog.add(Table("s", {
        "a": rng.integers(0, 40, 2 * rows),
        "b": rng.integers(0, 25, 2 * rows),
    }))
    catalog.add(Table("t", {
        "b": rng.integers(0, 25, rows),
        "c": rng.integers(0, 5, rows),
    }))
    return catalog


@pytest.fixture()
def catalog():
    return make_catalog()


@pytest.fixture()
def cyclic_plan(catalog):
    return Planner(catalog).plan(CYCLIC_SQL)


@pytest.fixture()
def acyclic_plan(catalog):
    return Planner(catalog).plan(ACYCLIC_SQL)


def failing_codes(plan, sql, level="full"):
    result = verify_plan(plan, source=sql, level=level)
    return set(d.code for d in result.errors)


# ----------------------------------------------------------------------
# The seeded corruption matrix (acceptance: >= 8 distinct codes)
# ----------------------------------------------------------------------


def test_clean_plans_verify_clean(acyclic_plan, cyclic_plan):
    assert verify_plan(acyclic_plan, source=ACYCLIC_SQL).ok
    assert verify_plan(cyclic_plan, source=CYCLIC_SQL).ok


def test_corrupt_tree_root_as_child(acyclic_plan):
    bad_query = JoinQuery.__new__(JoinQuery)  # bypass ctor validation
    bad_query.root = "r"
    bad_query.edges = [
        JoinEdge("r", "s", "a", "a"),
        JoinEdge("s", "r", "b", "b"),
    ]
    bad = dataclasses.replace(acyclic_plan, query=bad_query)
    assert "PLAN001" in failing_codes(bad, ACYCLIC_SQL)


def test_corrupt_tree_two_parents(acyclic_plan):
    bad_query = JoinQuery.__new__(JoinQuery)
    bad_query.root = "r"
    bad_query.edges = [
        JoinEdge("r", "s", "a", "a"),
        JoinEdge("r", "t", "x", "c"),
        JoinEdge("s", "t", "b", "b"),
    ]
    bad = dataclasses.replace(acyclic_plan, query=bad_query)
    assert "PLAN001" in failing_codes(bad, ACYCLIC_SQL)


def test_order_violating_precedence(acyclic_plan):
    bad = dataclasses.replace(
        acyclic_plan, order=list(reversed(acyclic_plan.order))
    )
    assert "PLAN002" in failing_codes(bad, ACYCLIC_SQL)


def test_order_not_a_permutation(acyclic_plan):
    bad = dataclasses.replace(acyclic_plan, order=["s", "s"])
    assert "PLAN002" in failing_codes(bad, ACYCLIC_SQL)


def test_mismatched_child_orders(acyclic_plan):
    bad = dataclasses.replace(
        acyclic_plan, child_orders={"r": ["t"], "nope": []}
    )
    assert "PLAN003" in failing_codes(bad, ACYCLIC_SQL)


def test_misaligned_residual_selectivities(cyclic_plan):
    bad = dataclasses.replace(
        cyclic_plan,
        residual_selectivities=cyclic_plan.residual_selectivities + (0.5,),
    )
    assert "PLAN004" in failing_codes(bad, CYCLIC_SQL)


def test_unresolved_execution_knob(acyclic_plan):
    bad = dataclasses.replace(acyclic_plan, execution="auto")
    assert "PLAN005" in failing_codes(bad, ACYCLIC_SQL)


def test_dropped_residual(cyclic_plan):
    bad = dataclasses.replace(
        cyclic_plan, residuals=(), residual_selectivities=()
    )
    assert "PRED001" in failing_codes(bad, CYCLIC_SQL)


def test_duplicated_tree_edge_as_residual(cyclic_plan):
    edge = cyclic_plan.query.edges[0]
    duplicate = ResidualPredicate(
        edge.parent, edge.parent_attr, edge.child, edge.child_attr
    )
    bad = dataclasses.replace(
        cyclic_plan,
        residuals=cyclic_plan.residuals + (duplicate,),
        residual_selectivities=cyclic_plan.residual_selectivities + (1.0,),
    )
    assert "PRED002" in failing_codes(bad, CYCLIC_SQL)


def test_invented_predicate(acyclic_plan):
    bad = dataclasses.replace(
        acyclic_plan,
        residuals=(ResidualPredicate("r", "x", "t", "c"),),
        residual_selectivities=(1.0,),
    )
    assert "PRED003" in failing_codes(bad, ACYCLIC_SQL)


def test_unpushed_selection(catalog, acyclic_plan):
    # swap in a catalog whose "r" still holds rows violating r.x = 3
    unfiltered = Catalog()
    for name in ("r", "s", "t"):
        unfiltered.add(catalog.table(name))
    bad = dataclasses.replace(acyclic_plan, catalog=unfiltered)
    assert "PRED004" in failing_codes(bad, ACYCLIC_SQL)


def test_predicate_against_missing_column(catalog):
    plan = Planner(catalog).plan(ACYCLIC_SQL)
    broken = Catalog()
    for name in ("r", "t"):
        broken.add(plan.catalog.table(name))
    s = plan.catalog.table("s")
    broken.add(Table("s", {"a": s.column("a")}))  # drop join column b
    bad = dataclasses.replace(plan, catalog=broken)
    assert "SCHEMA002" in failing_codes(bad, ACYCLIC_SQL)


def test_missing_relation(acyclic_plan):
    sparse = Catalog()
    sparse.add(acyclic_plan.catalog.table("r"))
    sparse.add(acyclic_plan.catalog.table("s"))
    bad = dataclasses.replace(acyclic_plan, catalog=sparse)
    assert "SCHEMA001" in failing_codes(bad, ACYCLIC_SQL)


def test_shard_count_lie(acyclic_plan):
    bad = dataclasses.replace(acyclic_plan, num_shards=4)
    assert "SHARD001" in failing_codes(bad, ACYCLIC_SQL)


def test_shard_count_mismatch(catalog):
    plan = Planner(catalog, partitioning=2).plan(ACYCLIC_SQL)
    assert plan.num_shards == 2
    bad = dataclasses.replace(plan, num_shards=8)
    assert "SHARD001" in failing_codes(bad, ACYCLIC_SQL)


def test_corrupted_base_row_ids(catalog):
    plan = Planner(catalog, partitioning=2).plan(ACYCLIC_SQL)
    assert verify_plan(plan, source=ACYCLIC_SQL).ok
    sharded = next(
        plan.catalog.table(rel) for rel in plan.query.relations
        if getattr(plan.catalog.table(rel), "num_shards", 1) > 1
    )
    original = sharded._base_rows.copy()
    try:
        sharded._base_rows[0] = sharded._base_rows[1]  # no longer a bijection
        assert "ROWID001" in failing_codes(plan, ACYCLIC_SQL)
    finally:
        sharded._base_rows[:] = original


def test_stripped_fingerprint_component(acyclic_plan):
    class StrippedFingerprint(PhysicalPlan):
        def fingerprint(self):
            payload = repr((
                self.query.root,
                tuple(self.order),
                str(self.mode),
            ))  # drops execution, shards, residuals, catalog, ...
            return hashlib.blake2b(
                payload.encode(), digest_size=16
            ).hexdigest()

    stripped = StrippedFingerprint(**{
        f.name: getattr(acyclic_plan, f.name)
        for f in dataclasses.fields(acyclic_plan)
    })
    assert "FP004" in failing_codes(stripped, ACYCLIC_SQL)


def test_unregistered_plan_field(acyclic_plan):
    @dataclasses.dataclass
    class PlanWithNewKnob(PhysicalPlan):
        shiny_new_knob: int = 0

    extended = PlanWithNewKnob(**{
        f.name: getattr(acyclic_plan, f.name)
        for f in dataclasses.fields(acyclic_plan)
    })
    assert "FP001" in failing_codes(extended, ACYCLIC_SQL)


def test_unregistered_planner_knob(acyclic_plan, monkeypatch):
    original = Planner.plan

    def plan_with_knob(self, query, shiny_new_knob=None, **kwargs):
        return original(self, query, **kwargs)

    monkeypatch.setattr(Planner, "plan", plan_with_knob)
    assert "FP003" in failing_codes(acyclic_plan, ACYCLIC_SQL)


# ----------------------------------------------------------------------
# Key-hazard warnings (never errors: the engine handles them exactly)
# ----------------------------------------------------------------------


def hazard_catalog():
    catalog = Catalog()
    catalog.add(Table("r", {
        "k": np.array([2.0**53, 1.0, np.nan]),
    }))
    catalog.add(Table("s", {
        "k": np.array([2**53, 1, 7], dtype=np.int64),
        "f": np.array([True, False, True]),
    }))
    catalog.add(Table("t", {"f": np.array([0, 1, 1], dtype=np.int64)}))
    return catalog


def test_exact_key_hazards_are_warned():
    catalog = hazard_catalog()
    sql = "SELECT * FROM r, s, t WHERE r.k = s.k AND s.f = t.f"
    plan = Planner(catalog).plan(sql)
    result = verify_plan(plan, source=sql, level="full")
    assert result.ok  # hazards warn, they don't reject
    warned = {d.code for d in result.warnings}
    assert {"KEY001", "KEY002", "KEY003"} <= warned


def test_string_numeric_join_is_warned():
    catalog = Catalog()
    catalog.add(Table("r", {"k": np.array(["a", "b"])}))
    catalog.add(Table("s", {"k": np.array([1, 2], dtype=np.int64)}))
    sql = "SELECT * FROM r, s WHERE r.k = s.k"
    plan = Planner(catalog).plan(sql)
    result = verify_plan(plan, source=sql, level="full")
    assert "SCHEMA003" in {d.code for d in result.warnings}


def test_basic_level_skips_data_scans():
    catalog = hazard_catalog()
    sql = "SELECT * FROM r, s WHERE r.k = s.k"
    plan = Planner(catalog).plan(sql)
    basic = verify_plan(plan, source=sql, level="basic")
    assert not {"KEY001", "KEY002"} & set(basic.codes())
    full = verify_plan(plan, source=sql, level="full")
    assert {"KEY001", "KEY002"} <= set(full.codes())


# ----------------------------------------------------------------------
# Spec-level verification
# ----------------------------------------------------------------------


def test_spec_verifies_clean(catalog, cyclic_plan):
    spec = cyclic_plan.to_spec(catalog.fingerprint())
    assert verify_spec(
        spec, query=parse_query(CYCLIC_SQL), catalog=catalog
    ).ok


def test_stale_spec(catalog, cyclic_plan):
    spec = cyclic_plan.to_spec("not-the-fingerprint")
    result = verify_spec(
        spec, query=parse_query(CYCLIC_SQL), catalog=catalog
    )
    assert "SPEC004" in set(result.codes())


def test_spec_with_foreign_residual(catalog, cyclic_plan):
    spec = cyclic_plan.to_spec(catalog.fingerprint())
    bad = dataclasses.replace(
        spec, residuals=(ResidualPredicate("r", "a", "t", "b"),)
    )
    result = verify_spec(bad, query=parse_query(CYCLIC_SQL),
                         catalog=catalog)
    assert "SPEC005" in set(result.codes())


def test_spec_invalid_knobs(catalog, acyclic_plan):
    spec = acyclic_plan.to_spec(catalog.fingerprint())
    bad = dataclasses.replace(
        spec, mode="WAT", execution="auto", num_shards=0
    )
    codes = set(verify_spec(bad).codes())
    assert {"SPEC001", "SPEC002", "SPEC003"} <= codes


# ----------------------------------------------------------------------
# Diagnostics plumbing
# ----------------------------------------------------------------------


def test_every_emitted_code_is_registered():
    with pytest.raises(ValueError, match="unregistered diagnostic code"):
        Diagnostic(code="NOPE01", severity=Severity.ERROR, message="x")
    assert all(isinstance(v, str) and v for v in DIAGNOSTIC_CODES.values())


def test_verifier_raises_and_caches(acyclic_plan):
    verifier = PlanVerifier()
    result = verifier.verify_plan(acyclic_plan, source=ACYCLIC_SQL)
    assert result.ok
    # second call is a verdict-cache hit returning the same object
    again = verifier.verify_plan(acyclic_plan, source=ACYCLIC_SQL)
    assert again is result
    bad = dataclasses.replace(
        acyclic_plan, order=list(reversed(acyclic_plan.order))
    )
    with pytest.raises(PlanVerificationError) as excinfo:
        verifier.verify_plan(bad, source=ACYCLIC_SQL)
    assert "PLAN002" in excinfo.value.result.codes()
    # the failing verdict is cached too, and still raises
    with pytest.raises(PlanVerificationError):
        verifier.verify_plan(bad, source=ACYCLIC_SQL)


# ----------------------------------------------------------------------
# Pessimistic-bound annotations (BOUND001-003)
# ----------------------------------------------------------------------


@pytest.fixture()
def bounded_plan(catalog):
    return Planner(catalog, robustness="bounded").plan(ACYCLIC_SQL)


def test_clean_bounded_plan_verifies_clean(bounded_plan):
    assert bounded_plan.robustness == "bounded"
    assert verify_plan(bounded_plan, source=ACYCLIC_SQL).ok


def test_invalid_robustness_posture(acyclic_plan):
    bad = dataclasses.replace(acyclic_plan, robustness="paranoid")
    assert "BOUND001" in failing_codes(bad, ACYCLIC_SQL)


def test_off_plan_carrying_bounds(acyclic_plan):
    bad = dataclasses.replace(
        acyclic_plan, prefix_bounds=(10.0,), worst_case_bound=5.0
    )
    assert "BOUND002" in failing_codes(bad, ACYCLIC_SQL)


def test_robust_plan_missing_a_bound(bounded_plan):
    bad = dataclasses.replace(
        bounded_plan, prefix_bounds=bounded_plan.prefix_bounds[:-1]
    )
    assert "BOUND002" in failing_codes(bad, ACYCLIC_SQL)


def test_non_finite_bound(bounded_plan):
    bad = dataclasses.replace(
        bounded_plan, worst_case_bound=float("inf")
    )
    assert "BOUND003" in failing_codes(bad, ACYCLIC_SQL)
    negative = dataclasses.replace(
        bounded_plan,
        prefix_bounds=(-1.0,) + bounded_plan.prefix_bounds[1:],
    )
    assert "BOUND003" in failing_codes(negative, ACYCLIC_SQL)


def test_fingerprint_sensitive_to_robustness(bounded_plan):
    flipped = dataclasses.replace(bounded_plan, robustness="off")
    assert flipped.fingerprint() != bounded_plan.fingerprint()


def test_spec_bound_checks(catalog, bounded_plan):
    spec = bounded_plan.to_spec(catalog.fingerprint())
    assert verify_spec(spec, ACYCLIC_SQL, catalog).ok
    bad = dataclasses.replace(spec, robustness="paranoid")
    assert "BOUND001" in {
        d.code for d in verify_spec(bad, ACYCLIC_SQL, catalog).errors
    }
    short = dataclasses.replace(
        spec, prefix_bounds=tuple(spec.prefix_bounds)[:-1]
    )
    assert "BOUND002" in {
        d.code for d in verify_spec(short, ACYCLIC_SQL, catalog).errors
    }


def test_distinct_corruption_codes_covered():
    """Acceptance guard: the corruption matrix spans >= 8 codes."""
    corrupted = {
        "PLAN001", "PLAN002", "PLAN003", "PLAN004", "PLAN005",
        "PRED001", "PRED002", "PRED003", "PRED004",
        "SCHEMA001", "SCHEMA002", "SHARD001", "ROWID001",
        "FP001", "FP003", "FP004",
        "SPEC001", "SPEC002", "SPEC003", "SPEC004", "SPEC005",
        "BOUND001", "BOUND002", "BOUND003",
    }
    assert len(corrupted) >= 8
    assert corrupted <= set(DIAGNOSTIC_CODES)
