"""The ``validate`` knob through Planner, QuerySession and the async
service: cold plans verified, verdicts cached per fingerprint, findings
surfaced on QueryReport, corrupt specs rejected at rehydration."""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro import (
    AsyncQueryService,
    Planner,
    PlanVerificationError,
    QuerySession,
    Table,
)
from repro.analysis import planlint
from repro.storage import Catalog

SQL = "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b AND r.x = 3"
CYCLIC_SQL = (
    "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b AND t.c = r.x"
)


@pytest.fixture()
def catalog():
    rng = np.random.default_rng(7)
    catalog = Catalog()
    catalog.add(Table("r", {
        "a": rng.integers(0, 40, 500),
        "x": rng.integers(0, 5, 500),
    }))
    catalog.add(Table("s", {
        "a": rng.integers(0, 40, 900),
        "b": rng.integers(0, 25, 900),
    }))
    catalog.add(Table("t", {
        "b": rng.integers(0, 25, 400),
        "c": rng.integers(0, 5, 400),
    }))
    return catalog


def test_planner_validate_default_and_override(catalog):
    planner = Planner(catalog, validate="full")
    plan = planner.plan(SQL)
    assert plan.diagnostics == ()  # clean plan, no findings
    off = planner.plan(SQL, validate="off")
    assert off.diagnostics == ()
    with pytest.raises(ValueError, match="validate must be one of"):
        Planner(catalog, validate="loud")
    with pytest.raises(ValueError, match="validate must be one of"):
        Planner(catalog).plan(SQL, validate="loud")


def test_planner_validate_attaches_warnings(catalog):
    hazard = Catalog()
    hazard.add(Table("r", {"k": np.array([1.0, np.nan])}))
    hazard.add(Table("s", {"k": np.array([1, 2], dtype=np.int64)}))
    plan = Planner(hazard, validate="full").plan(
        "SELECT * FROM r, s WHERE r.k = s.k"
    )
    assert "KEY002" in {d.code for d in plan.diagnostics}


def test_validate_does_not_change_the_plan(catalog):
    baseline = Planner(catalog).plan(SQL)
    validated = Planner(catalog, validate="full").plan(SQL)
    assert baseline.fingerprint() == validated.fingerprint()


def test_verdict_cached_per_fingerprint(catalog, monkeypatch):
    planner = Planner(catalog, validate="full")
    calls = []
    original = planlint.verify_plan

    def counting(plan, source=None, level="full"):
        calls.append(level)
        return original(plan, source=source, level=level)

    monkeypatch.setattr(planlint, "verify_plan", counting)
    planner.plan(SQL)
    planner.plan(SQL)  # same fingerprint: verdict-cache hit
    assert len(calls) == 1


def test_session_surfaces_diagnostics_and_warm_path(catalog):
    session = QuerySession(catalog, validate="full", partitioning=2)
    cold = session.execute(SQL)
    assert cold.ok and not cold.cache_hit
    warm = session.execute(SQL)
    assert warm.ok and warm.cache_hit
    cyclic = session.execute(CYCLIC_SQL)
    assert cyclic.ok and cyclic.residual_predicates
    assert isinstance(cold.diagnostics, tuple)


def test_session_cache_key_ignores_validate(catalog):
    from repro.core.parser import parse_query

    session = QuerySession(catalog, validate="off")
    parsed = parse_query("SELECT * FROM r, s WHERE r.a = s.a")
    key_off = session.cache_key(parsed, validate="off")
    key_full = session.cache_key(parsed, validate="full")
    assert key_off == key_full


def test_rehydrate_rejects_corrupt_spec(catalog):
    planner = Planner(catalog, validate="full")
    plan = planner.plan(CYCLIC_SQL)
    spec = plan.to_spec(catalog.fingerprint())
    roundtrip = planner.rehydrate(spec, CYCLIC_SQL)
    assert roundtrip.fingerprint() == plan.fingerprint()
    bad = dataclasses.replace(spec, order=tuple(reversed(spec.order)))
    with pytest.raises(PlanVerificationError) as excinfo:
        planner.rehydrate(bad, CYCLIC_SQL)
    assert "PLAN002" in excinfo.value.result.codes()
    # validate="off" preserves the legacy behavior: structural checks
    # only happen downstream, the spec itself is trusted
    unvalidated = Planner(catalog)
    hydrated = unvalidated.rehydrate(spec, CYCLIC_SQL)
    assert hydrated.fingerprint() == plan.fingerprint()


def test_async_service_with_validation(catalog):
    async def main():
        session = QuerySession(catalog, validate="basic")
        async with AsyncQueryService(session) as service:
            report = await service.execute(SQL)
            assert report.ok, report.error
            again = await service.execute(SQL)
            assert again.ok
        return True

    assert asyncio.run(main())


def test_async_worker_config_carries_validate(catalog):
    session = QuerySession(catalog, validate="basic")
    service = AsyncQueryService(session, planning_workers=0)
    try:
        assert session.planner.validate == "basic"
    finally:
        service.close()
