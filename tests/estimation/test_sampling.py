"""Tests for the correlated sampling estimator."""

import numpy as np
import pytest

from repro.estimation import CorrelatedSample, true_join_stats
from repro.storage import Table


def make_tables(seed=0, n_probe=2000, n_build=3000, domain=100):
    rng = np.random.default_rng(seed)
    probe = Table("r", {
        "k": rng.integers(0, domain, n_probe),
        "a": rng.integers(0, 4, n_probe),
    })
    build = Table("s", {
        "k": rng.integers(0, 2 * domain, n_build),  # half the keys dangle
        "c": rng.integers(0, 4, n_build),
    })
    return probe, build


def test_full_sample_is_exact():
    probe, build = make_tables()
    sample = CorrelatedSample(probe, build, "k", "k", sample_fraction=1.0,
                              max_matches_per_tuple=10**9)
    truth = true_join_stats(probe, build, "k", "k")
    est = sample.estimate()
    assert est.m == pytest.approx(truth.m)
    assert est.fo == pytest.approx(truth.fo)


def test_small_sample_close_to_truth():
    probe, build = make_tables(seed=3)
    sample = CorrelatedSample(probe, build, "k", "k", sample_fraction=0.2,
                              seed=1)
    truth = true_join_stats(probe, build, "k", "k")
    est = sample.estimate()
    assert est.m == pytest.approx(truth.m, abs=0.1)
    assert est.fo == pytest.approx(truth.fo, rel=0.3)


def test_predicates_supported():
    probe, build = make_tables(seed=5)
    sample = CorrelatedSample(probe, build, "k", "k", sample_fraction=1.0,
                              max_matches_per_tuple=10**9)
    truth = true_join_stats(probe, build, "k", "k",
                            probe_predicate={"a": 2},
                            build_predicate={"c": 1})
    est = sample.estimate(probe_predicate={"a": 2},
                          build_predicate={"c": 1})
    assert est.m == pytest.approx(truth.m, abs=0.02)
    assert est.fo == pytest.approx(truth.fo, rel=0.1)


def test_match_cap_scales_counts():
    probe = Table("r", {"k": np.zeros(10, dtype=np.int64)})
    build = Table("s", {"k": np.zeros(50, dtype=np.int64)})
    sample = CorrelatedSample(probe, build, "k", "k", sample_fraction=1.0,
                              max_matches_per_tuple=5)
    est = sample.estimate()
    assert est.m == 1.0
    assert est.fo == pytest.approx(50.0)  # scaled back up from the cap


def test_empty_probe_predicate_selection():
    probe, build = make_tables(seed=7)
    sample = CorrelatedSample(probe, build, "k", "k", sample_fraction=0.1,
                              seed=2)
    est = sample.estimate(probe_predicate={"a": 99})
    assert est.m == 0.0
    assert est.fo == 1.0


def test_invalid_fraction_rejected():
    probe, build = make_tables()
    with pytest.raises(ValueError, match="sample_fraction"):
        CorrelatedSample(probe, build, "k", "k", sample_fraction=0.0)


def test_sample_size_property():
    probe, build = make_tables()
    sample = CorrelatedSample(probe, build, "k", "k", sample_fraction=0.05)
    assert sample.sample_size == round(0.05 * len(probe))


def test_true_join_stats_no_survivors():
    probe = Table("r", {"k": [1, 2]})
    build = Table("s", {"k": [1, 2], "c": [5, 5]})
    stats = true_join_stats(probe, build, "k", "k",
                            build_predicate={"c": 99})
    assert stats.m == 0.0
    assert stats.fo == 1.0


def test_true_join_stats_empty_probe():
    probe = Table("r", {"k": [1], "a": [0]})
    build = Table("s", {"k": [1]})
    stats = true_join_stats(probe, build, "k", "k",
                            probe_predicate={"a": 9})
    assert stats.m == 0.0
