"""Tests for the q-error metric."""

import numpy as np
import pytest

from repro.estimation import mean_q_error, q_error, running_q_error


def test_perfect_estimate():
    assert q_error(5.0, 5.0) == 1.0


def test_symmetric():
    assert q_error(2.0, 8.0) == q_error(8.0, 2.0) == 4.0


def test_floor_guards_zero():
    assert q_error(0.0, 0.0) == 1.0
    assert q_error(0.0, 1.0, floor=0.1) == 10.0


def test_mean_q_error():
    mean, std = mean_q_error([1.0, 2.0], [1.0, 1.0])
    assert mean == pytest.approx(1.5)
    assert std == pytest.approx(0.5)


def test_mean_q_error_empty():
    assert mean_q_error([], []) == (0.0, 0.0)


def test_mean_q_error_shape_mismatch():
    with pytest.raises(ValueError, match="shape mismatch"):
        mean_q_error([1.0], [1.0, 2.0])


def test_mean_q_error_matches_scalar_pairwise():
    rng = np.random.default_rng(7)
    estimates = rng.uniform(0.0, 10.0, 200)
    truths = rng.uniform(0.0, 10.0, 200)
    # sprinkle exact zeros to exercise the floor path
    estimates[::17] = 0.0
    truths[::23] = 0.0
    errors = [q_error(e, t) for e, t in zip(estimates, truths)]
    mean, std = mean_q_error(estimates, truths)
    assert mean == pytest.approx(np.mean(errors))
    assert std == pytest.approx(np.std(errors))


def test_running_q_error_is_running_max():
    running = 1.0
    observations = [(1.0, 1.0), (2.0, 8.0), (5.0, 5.0), (1.0, 2.0)]
    for estimate, truth in observations:
        running = running_q_error(running, estimate, truth)
    assert running == 4.0  # the (2, 8) pair dominates


def test_running_q_error_never_decreases():
    assert running_q_error(10.0, 5.0, 5.0) == 10.0
    assert running_q_error(1.0, 0.0, 1.0, floor=0.1) == 10.0
