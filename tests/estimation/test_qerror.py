"""Tests for the q-error metric."""

import pytest

from repro.estimation import mean_q_error, q_error


def test_perfect_estimate():
    assert q_error(5.0, 5.0) == 1.0


def test_symmetric():
    assert q_error(2.0, 8.0) == q_error(8.0, 2.0) == 4.0


def test_floor_guards_zero():
    assert q_error(0.0, 0.0) == 1.0
    assert q_error(0.0, 1.0, floor=0.1) == 10.0


def test_mean_q_error():
    mean, std = mean_q_error([1.0, 2.0], [1.0, 1.0])
    assert mean == pytest.approx(1.5)
    assert std == pytest.approx(0.5)


def test_mean_q_error_empty():
    assert mean_q_error([], []) == (0.0, 0.0)


def test_mean_q_error_shape_mismatch():
    with pytest.raises(ValueError, match="shape mismatch"):
        mean_q_error([1.0], [1.0, 2.0])
