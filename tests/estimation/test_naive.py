"""Tests for the naive estimator (Section 3.2 formulas)."""

import pytest

from repro.estimation import naive_estimate, naive_estimate_from_tables
from repro.estimation.naive import predicate_selectivity
from repro.storage import Table


def test_basic_formula():
    # V(A,R)=100, V(A,S)=50, |S|=200:
    # m = 50/100, fo = 200/50.
    est = naive_estimate(100, 50, 200)
    assert est.m == pytest.approx(0.5)
    assert est.fo == pytest.approx(4.0)
    assert est.selectivity == pytest.approx(200 / 100)


def test_build_side_has_more_distincts():
    # V(A,S) > V(A,R): every probe value should match, m = 1.
    est = naive_estimate(50, 100, 300)
    assert est.m == pytest.approx(1.0)
    assert est.fo == pytest.approx(3.0)


def test_predicate_scales_fanout():
    est = naive_estimate(100, 50, 200, build_predicate_selectivity=0.5)
    assert est.m == pytest.approx(0.5)
    assert est.fo == pytest.approx(2.0)


def test_scarce_predicate_switches_regime():
    """s_p |S| < V(A,S): fanout pinned to 1, m rescaled (Section 3.2)."""
    est = naive_estimate(100, 50, 200, build_predicate_selectivity=0.1)
    # s_p * |S| = 20 < 50.
    assert est.fo == pytest.approx(1.0)
    assert est.m == pytest.approx(20 / 100)


def test_degenerate_inputs():
    assert naive_estimate(0, 50, 200).m == 0.0
    assert naive_estimate(100, 0, 200).m == 0.0
    assert naive_estimate(100, 50, 0).m == 0.0


def test_predicate_selectivity_helper():
    table = Table("t", {"a": [1, 1, 2, 3], "b": [0, 1, 0, 0]})
    assert predicate_selectivity(table, {}) == 1.0
    assert predicate_selectivity(table, {"a": 1}) == pytest.approx(0.5)
    assert predicate_selectivity(table, {"a": 1, "b": 1}) == pytest.approx(0.25)
    assert predicate_selectivity(table, {"a": 9}) == 0.0


def test_from_tables_uses_distinct_counts_only():
    probe = Table("r", {"k": [1, 2, 3, 4]})
    build = Table("s", {"k": [1, 1, 2, 2, 9, 9], "p": [0, 1, 0, 1, 0, 1]})
    est = naive_estimate_from_tables(probe, build, "k", "k")
    # V(k,R)=4, V(k,S)=3, |S|=6: m=3/4, fo=2 — regardless of which keys
    # actually overlap (that is exactly the naive estimator's blindness).
    assert est.m == pytest.approx(0.75)
    assert est.fo == pytest.approx(2.0)


def test_from_tables_with_build_predicate():
    probe = Table("r", {"k": [1, 2]})
    build = Table("s", {"k": [1, 1, 2, 2], "p": [0, 1, 0, 1]})
    est = naive_estimate_from_tables(
        probe, build, "k", "k", build_predicate={"p": 0}
    )
    # s_p = 0.5; s_p |S| = 2 = V(k,S) -> fanout scaled, floor at 1.
    assert est.fo == pytest.approx(1.0)
