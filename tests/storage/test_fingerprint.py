"""Content fingerprints on tables and catalogs (cache invalidation)."""

import numpy as np

from repro.storage import Catalog, Table
from tests.helpers import make_small_catalog


def test_table_fingerprint_is_deterministic():
    a = Table("T", {"x": np.arange(10), "y": np.arange(10) % 3})
    b = Table("T", {"x": np.arange(10), "y": np.arange(10) % 3})
    assert a.fingerprint() == b.fingerprint()
    # cached: repeated calls return the identical string
    assert a.fingerprint() is a.fingerprint()


def test_table_fingerprint_sees_data_changes():
    base = Table("T", {"x": np.arange(10)})
    changed = Table("T", {"x": np.arange(10) + 1})
    assert base.fingerprint() != changed.fingerprint()


def test_table_fingerprint_sees_name_schema_and_order():
    data = {"x": np.arange(5), "y": np.arange(5)}
    assert Table("A", data).fingerprint() != Table("B", data).fingerprint()
    renamed = Table("A", {"x": np.arange(5), "z": np.arange(5)})
    assert Table("A", data).fingerprint() != renamed.fingerprint()
    # column *insertion* order is not part of the content
    swapped = Table("A", {"y": np.arange(5), "x": np.arange(5)})
    assert Table("A", data).fingerprint() == swapped.fingerprint()


def test_string_columns_fingerprint():
    a = Table("T", {"s": np.array(["x", "y"])})
    b = Table("T", {"s": np.array(["x", "z"])})
    assert a.fingerprint() != b.fingerprint()


def test_catalog_fingerprint_stable_between_mutations():
    catalog = make_small_catalog()
    first = catalog.fingerprint()
    assert catalog.fingerprint() == first
    assert make_small_catalog().fingerprint() == first


def test_catalog_fingerprint_changes_on_add_and_replace():
    catalog = make_small_catalog()
    before = catalog.fingerprint()
    version = catalog.version
    catalog.add_table("extra", {"k": np.arange(3)})
    assert catalog.version > version
    after_add = catalog.fingerprint()
    assert after_add != before
    # replacing a table with different contents changes it again
    catalog.add_table("extra", {"k": np.arange(4)})
    assert catalog.fingerprint() != after_add


def test_derived_with_shares_tables_and_indexes():
    catalog = Catalog()
    catalog.add_table("keep", {"k": np.arange(100) % 7})
    catalog.add_table("swap", {"k": np.arange(50) % 5})
    kept_index = catalog.hash_index("keep", "k")
    old_index = catalog.hash_index("swap", "k")

    derived = catalog.derived_with(
        {"swap": Table("swap", {"k": np.array([1, 2, 3])})}
    )
    # unchanged table and its built index are shared by reference
    assert derived.table("keep") is catalog.table("keep")
    assert derived.hash_index("keep", "k") is kept_index
    # replaced table gets a fresh lazily-built index
    assert len(derived.table("swap")) == 3
    assert derived.hash_index("swap", "k") is not old_index
    # the source catalog is untouched
    assert len(catalog.table("swap")) == 50
    assert catalog.hash_index("swap", "k") is old_index


def test_catalog_fingerprint_ignores_registration_order():
    a = Catalog()
    a.add_table("T1", {"x": np.arange(3)})
    a.add_table("T2", {"y": np.arange(4)})
    b = Catalog()
    b.add_table("T2", {"y": np.arange(4)})
    b.add_table("T1", {"x": np.arange(3)})
    assert a.fingerprint() == b.fingerprint()
