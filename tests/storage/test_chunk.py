"""Unit tests for DataChunk."""

import numpy as np
import pytest

from repro.storage import DataChunk, VectorColumn, iter_chunks


def test_empty_chunk():
    chunk = DataChunk()
    assert len(chunk) == 0
    assert chunk.column_names == []
    assert chunk.to_rows() == []


def test_add_column_wraps_arrays():
    chunk = DataChunk()
    chunk.add_column("a", [1, 2, 3])
    assert isinstance(chunk.column("a"), VectorColumn)
    assert len(chunk) == 3


def test_length_mismatch_rejected():
    chunk = DataChunk({"a": [1, 2]})
    with pytest.raises(ValueError, match="length"):
        chunk.add_column("b", [1, 2, 3])


def test_contains_and_lookup():
    chunk = DataChunk({"a": [1], "b": [2]})
    assert "a" in chunk
    assert "z" not in chunk
    assert chunk.column("b").values.tolist() == [2]


def test_take_gathers_rows():
    chunk = DataChunk({"a": [10, 20, 30], "b": [1, 2, 3]})
    taken = chunk.take([2, 0])
    assert taken.to_rows() == [(30, 3), (10, 1)]


def test_row_round_trip():
    rows = [(1, 4), (2, 5), (3, 6)]
    chunk = DataChunk.from_rows(["x", "y"], rows)
    assert chunk.to_rows() == rows


def test_from_rows_empty():
    chunk = DataChunk.from_rows(["x", "y"], [])
    assert len(chunk) == 0
    assert chunk.column_names == ["x", "y"]


def test_iter_chunks_partitions_exactly():
    columns = {"a": np.arange(10), "b": np.arange(10) * 2}
    chunks = list(iter_chunks(columns, chunk_size=4))
    assert [len(c) for c in chunks] == [4, 4, 2]
    recombined = np.concatenate([c.column("a").values for c in chunks])
    assert recombined.tolist() == list(range(10))


def test_iter_chunks_empty_mapping():
    assert list(iter_chunks({}, chunk_size=4)) == []
