"""Unit tests for the vectorized hash index."""

import numpy as np

from repro.storage import HashIndex, concat_ranges


def test_concat_ranges_basic():
    out = concat_ranges([0, 10, 5], [2, 3, 0])
    assert out.tolist() == [0, 1, 10, 11, 12]


def test_concat_ranges_empty():
    assert concat_ranges([], []).tolist() == []
    assert concat_ranges([3, 7], [0, 0]).tolist() == []


def test_lookup_counts_and_rows():
    index = HashIndex([5, 3, 5, 9, 5])
    result = index.lookup(np.asarray([5, 9, 1]))
    assert result.counts.tolist() == [3, 1, 0]
    assert result.matched_mask.tolist() == [True, True, False]
    assert result.total_matches() == 4
    rows = result.matching_rows()
    # First three rows match key 5 (positions 0, 2, 4), then key 9 (3).
    assert sorted(rows[:3].tolist()) == [0, 2, 4]
    assert rows[3] == 3


def test_lookup_preserves_probe_order_grouping():
    index = HashIndex([1, 2, 2])
    result = index.lookup(np.asarray([2, 1, 2]))
    rows = result.matching_rows()
    assert sorted(rows[:2].tolist()) == [1, 2]  # first probe: key 2
    assert rows[2] == 0  # second probe: key 1
    assert sorted(rows[3:].tolist()) == [1, 2]  # third probe: key 2


def test_empty_index_lookup():
    index = HashIndex(np.empty(0, dtype=np.int64))
    result = index.lookup(np.asarray([1, 2]))
    assert result.counts.tolist() == [0, 0]
    assert result.matching_rows().tolist() == []
    assert index.contains(np.asarray([7])).tolist() == [False]


def test_lookup_empty_probe_batch():
    index = HashIndex([1, 2, 3])
    result = index.lookup(np.empty(0, dtype=np.int64))
    assert len(result) == 0
    assert result.matching_rows().tolist() == []


def test_contains_membership():
    index = HashIndex([4, 4, 6])
    mask = index.contains(np.asarray([4, 5, 6, 7]))
    assert mask.tolist() == [True, False, True, False]


def test_restricted_index_covers_subset_only():
    keys = np.asarray([1, 1, 2, 2, 3])
    index = HashIndex(keys, rows=np.asarray([0, 3, 4]))
    assert len(index) == 3
    result = index.lookup(np.asarray([1, 2, 3]))
    assert result.counts.tolist() == [1, 1, 1]
    assert sorted(result.matching_rows().tolist()) == [0, 3, 4]


def test_rows_for_key():
    index = HashIndex([7, 8, 7])
    assert sorted(index.rows_for_key(7).tolist()) == [0, 2]
    assert index.rows_for_key(99).tolist() == []


def test_num_distinct_and_keys():
    index = HashIndex([3, 1, 3, 2])
    assert index.num_distinct == 3
    assert index.distinct_keys().tolist() == [1, 2, 3]


def test_lookup_against_dict_reference():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 20, 200)
    probes = rng.integers(-5, 25, 100)
    index = HashIndex(keys)
    reference = {}
    for i, k in enumerate(keys.tolist()):
        reference.setdefault(k, []).append(i)
    result = index.lookup(probes)
    offset = 0
    rows = result.matching_rows()
    for probe, count in zip(probes.tolist(), result.counts.tolist()):
        expected = reference.get(probe, [])
        assert count == len(expected)
        got = rows[offset:offset + count].tolist()
        assert sorted(got) == sorted(expected)
        offset += count


# ----------------------------------------------------------------------
# Edge cases: empty probe batches, all-miss lookups, empty indexes —
# every path must return a well-formed (typed, zero-length) result
# ----------------------------------------------------------------------


def test_lookup_empty_key_array_is_well_formed():
    index = HashIndex([3, 1, 3])
    for empty in (np.empty(0, dtype=np.int64), np.asarray([]), []):
        result = index.lookup(empty)
        assert len(result) == 0
        assert result.counts.dtype == np.int64
        assert result.counts.tolist() == []
        assert result.matched_mask.tolist() == []
        assert result.total_matches() == 0
        rows = result.matching_rows()
        assert rows.dtype == np.int64 and rows.tolist() == []


def test_lookup_all_misses_is_well_formed():
    index = HashIndex([3, 1, 3])
    result = index.lookup([100, -7, 2])
    assert result.counts.tolist() == [0, 0, 0]
    assert result.matched_mask.tolist() == [False, False, False]
    rows = result.matching_rows()
    assert rows.dtype == np.int64 and rows.tolist() == []


def test_empty_index_lookup_and_contains():
    index = HashIndex(np.empty(0, dtype=np.int64))
    assert len(index) == 0 and index.num_distinct == 0
    result = index.lookup([1, 2])
    assert result.counts.dtype == np.int64
    assert result.counts.tolist() == [0, 0]
    assert result.matching_rows().tolist() == []
    assert index.contains([1, 2]).tolist() == [False, False]
    assert index.rows_for_key(1).tolist() == []
    # empty index probed with an empty batch
    empty_probe = index.lookup(np.empty(0, dtype=np.int64))
    assert len(empty_probe) == 0
    assert empty_probe.matching_rows().tolist() == []


def test_row_restricted_index_with_empty_rows():
    index = HashIndex([5, 6, 7], rows=np.empty(0, dtype=np.int64))
    assert len(index) == 0
    assert index.lookup([5]).counts.tolist() == [0]
    assert index.contains([6]).tolist() == [False]


def test_concat_ranges_zero_length_runs_between_real_ones():
    out = concat_ranges([0, 100, 10], [2, 0, 3])
    assert out.dtype == np.int64
    assert out.tolist() == [0, 1, 10, 11, 12]


def test_concat_ranges_empty_inputs_return_int64():
    for starts, lengths in (([], []), (np.asarray([]), np.asarray([]))):
        out = concat_ranges(starts, lengths)
        assert out.dtype == np.int64 and out.tolist() == []


def test_probe_stats_matches_lookup():
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 12, 80)
    probes = rng.integers(-3, 15, 60)
    index = HashIndex(keys)
    result = index.lookup(probes)
    assert index.probe_stats(probes) == (
        int(result.matched_mask.sum()), int(result.counts.sum())
    )
    assert index.probe_stats([]) == (0, 0)
