"""Unit tests for VectorColumn."""

import numpy as np
import pytest

from repro.storage import VectorColumn


def test_values_stored_as_int64():
    col = VectorColumn([1, 2, 3])
    assert col.values.dtype == np.int64
    assert len(col) == 3


def test_float_values_preserved():
    col = VectorColumn(np.asarray([1.5, 2.5]))
    assert col.values.dtype == np.float64


def test_rejects_2d_input():
    with pytest.raises(ValueError, match="1-D"):
        VectorColumn(np.zeros((2, 2)))


def test_selection_defaults_to_all():
    col = VectorColumn([1, 2, 3])
    assert col.selection is None
    assert col.num_selected == 3
    assert np.array_equal(col.selection_mask(), [True, True, True])


def test_selection_shape_mismatch_rejected():
    with pytest.raises(ValueError, match="selection shape"):
        VectorColumn([1, 2, 3], selection=[True, False])


def test_ensure_selection_materializes():
    col = VectorColumn([1, 2])
    sel = col.ensure_selection()
    assert sel.dtype == bool
    assert sel.all()
    # Same array is returned on subsequent calls.
    assert col.ensure_selection() is sel


def test_deselect_clears_bits():
    col = VectorColumn([10, 20, 30, 40])
    col.deselect([1, 3])
    assert col.num_selected == 2
    assert col.selected_values().tolist() == [10, 30]
    assert col.selected_indices().tolist() == [0, 2]


def test_take_gathers_without_selection():
    col = VectorColumn([10, 20, 30], selection=[True, False, True])
    taken = col.take([2, 0, 2])
    assert taken.values.tolist() == [30, 10, 30]
    assert taken.selection is None


def test_copy_is_deep():
    col = VectorColumn([1, 2, 3], selection=[True, True, False])
    clone = col.copy()
    clone.values[0] = 99
    clone.selection[0] = False
    assert col.values[0] == 1
    assert col.selection[0]


def test_equality_considers_selection():
    a = VectorColumn([1, 2], selection=[True, False])
    b = VectorColumn([1, 2], selection=[True, False])
    c = VectorColumn([1, 2])
    assert a == b
    assert a != c


def test_repr_mentions_selected_count():
    col = VectorColumn([1, 2, 3], selection=[True, False, True])
    assert "selected=2" in repr(col)
