"""Unit tests for hash-partitioned tables and sharded hash indexes."""

import numpy as np
import pytest

from repro.storage import (
    Catalog,
    HashIndex,
    PartitionedTable,
    ShardedHashIndex,
    Table,
    partitioned_catalog,
    shard_ids,
)
from repro.workloads.partitioned import scan_probe_catalog, scan_probe_query


def make_partitioned(rows=500, domain=40, num_shards=4, seed=0):
    rng = np.random.default_rng(seed)
    columns = {
        "key": rng.integers(0, domain, rows),
        "payload": np.arange(rows, dtype=np.int64),
    }
    return columns, PartitionedTable("t", columns, "key", num_shards)


# ----------------------------------------------------------------------
# Layout invariants
# ----------------------------------------------------------------------


def test_shards_are_contiguous_and_cover_table():
    _, table = make_partitioned()
    bounds = table.shard_bounds
    assert bounds[0] == 0 and bounds[-1] == len(table)
    assert (np.diff(bounds) >= 0).all()
    ids = shard_ids(table.column("key"), table.num_shards)
    for shard in range(table.num_shards):
        start, stop = table.shard_slice(shard)
        assert (ids[start:stop] == shard).all()


def test_original_rows_is_the_inverse_permutation():
    columns, table = make_partitioned()
    physical = np.arange(len(table))
    base = table.original_rows(physical)
    assert sorted(base.tolist()) == list(range(len(table)))
    # the physical row's values are the base row's values
    assert (table.column("payload") == columns["payload"][base]).all()
    assert (table.column("key") == columns["key"][base]).all()


def test_stable_permutation_preserves_order_within_shard():
    _, table = make_partitioned()
    for shard in range(table.num_shards):
        start, stop = table.shard_slice(shard)
        base = table.original_rows(np.arange(start, stop))
        assert (np.diff(base) > 0).all()


def test_single_shard_is_identity_layout():
    columns, table = make_partitioned(num_shards=1)
    assert (table.original_rows(np.arange(len(table)))
            == np.arange(len(table))).all()
    assert (table.column("key") == columns["key"]).all()
    # single-shard index is the plain merged HashIndex
    assert isinstance(table.build_hash_index("key"), HashIndex)


def test_empty_table_partitions():
    table = PartitionedTable(
        "t", {"key": np.empty(0, dtype=np.int64)}, "key", 4
    )
    assert len(table) == 0
    assert table.shard_bounds.tolist() == [0, 0, 0, 0, 0]
    index = table.build_hash_index("key")
    assert len(index) == 0
    assert index.lookup(np.asarray([3])).counts.tolist() == [0]


def test_rejects_bad_shard_key_and_count():
    with pytest.raises(KeyError, match="shard key"):
        PartitionedTable("t", {"a": [1]}, "missing", 2)
    with pytest.raises(ValueError, match="num_shards"):
        PartitionedTable("t", {"a": [1]}, "a", 0)
    with pytest.raises(TypeError, match="integer key"):
        shard_ids(np.asarray([1.5, 2.5]), 2)


def test_fingerprint_distinguishes_layouts():
    columns, table = make_partitioned(num_shards=4)
    digests = {
        table.fingerprint(),
        PartitionedTable("t", columns, "key", 2).fingerprint(),
        PartitionedTable("t", columns, "payload", 4).fingerprint(),
        Table("t", columns).fingerprint(),
    }
    assert len(digests) == 4


def test_from_table_round_trip():
    columns, _ = make_partitioned()
    base = Table("t", columns)
    part = PartitionedTable.from_table(base, "key", 4)
    assert part.name == base.name and len(part) == len(base)
    assert sorted(part.column("payload").tolist()) == sorted(
        base.column("payload").tolist()
    )


# ----------------------------------------------------------------------
# Sharded index equivalence with the monolithic index
# ----------------------------------------------------------------------


@pytest.mark.parametrize("num_shards", [1, 2, 3, 8])
def test_sharded_lookup_matches_merged(num_shards):
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 30, 400)
    probes = rng.integers(-10, 40, 300)
    sharded = ShardedHashIndex(keys, num_shards)
    merged = HashIndex(keys)
    expected = merged.lookup(probes)
    got = sharded.lookup(probes)
    assert (got.counts == expected.counts).all()
    assert (got.matched_mask == expected.matched_mask).all()
    assert got.total_matches() == expected.total_matches()
    # per-probe-key match groups agree as sets
    offsets = np.concatenate([[0], np.cumsum(expected.counts)])
    got_rows, exp_rows = got.matching_rows(), expected.matching_rows()
    for i in range(len(probes)):
        lo, hi = offsets[i], offsets[i + 1]
        assert sorted(got_rows[lo:hi].tolist()) == sorted(
            exp_rows[lo:hi].tolist()
        )


def test_sharded_contains_and_probe_stats_match_merged():
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 25, 350)
    probes = rng.integers(-5, 30, 200)
    sharded = ShardedHashIndex(keys, 5)
    merged = HashIndex(keys)
    assert (sharded.contains(probes) == merged.contains(probes)).all()
    assert sharded.probe_stats(probes) == merged.probe_stats(probes)


def test_sharded_structure_aggregates():
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 20, 240)
    sharded = ShardedHashIndex(keys, 4)
    merged = HashIndex(keys)
    assert len(sharded) == len(merged) == 240
    assert sharded.num_distinct == merged.num_distinct
    assert (sharded.distinct_keys() == merged.distinct_keys()).all()
    sketches = sharded.sketches()
    assert sum(s.num_rows for s in sketches) == 240
    assert sum(s.num_distinct for s in sketches) == merged.num_distinct


def test_sharded_row_restriction_routes_by_key():
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 15, 120)
    rows = np.flatnonzero(keys % 2 == 0)
    sharded = ShardedHashIndex(keys, 3, rows=rows)
    merged = HashIndex(keys, rows=rows)
    probes = np.arange(-2, 20)
    assert (sharded.contains(probes) == merged.contains(probes)).all()
    assert sorted(sharded.lookup(probes).matching_rows().tolist()) == sorted(
        merged.lookup(probes).matching_rows().tolist()
    )


def test_sharded_empty_probe_batch():
    sharded = ShardedHashIndex(np.arange(50), 4)
    result = sharded.lookup(np.empty(0, dtype=np.int64))
    assert len(result) == 0
    assert result.total_matches() == 0
    assert result.matching_rows().tolist() == []
    assert sharded.contains(np.empty(0, dtype=np.int64)).tolist() == []
    assert sharded.probe_stats(np.empty(0, dtype=np.int64)) == (0, 0)


def test_sharded_rows_for_key():
    keys = np.asarray([4, 9, 4, 4, 9])
    sharded = ShardedHashIndex(keys, 2)
    assert sorted(sharded.rows_for_key(4).tolist()) == [0, 2, 3]
    assert sharded.rows_for_key(123).tolist() == []


def test_shard_ids_deterministic_and_in_range():
    values = np.arange(-1000, 1000)
    ids = shard_ids(values, 8)
    assert ((ids >= 0) & (ids < 8)).all()
    assert (ids == shard_ids(values, 8)).all()
    # the mixer spreads a contiguous range instead of clumping it
    counts = np.bincount(ids, minlength=8)
    assert counts.min() > 0


# ----------------------------------------------------------------------
# Catalog integration
# ----------------------------------------------------------------------


def test_catalog_serves_sharded_index_on_shard_key_only():
    columns, table = make_partitioned(num_shards=4)
    catalog = Catalog()
    catalog.add(table)
    on_key = catalog.hash_index("t", "key")
    on_other = catalog.hash_index("t", "payload")
    assert isinstance(on_key, ShardedHashIndex)
    assert isinstance(on_other, HashIndex)  # merged-view fallback
    assert on_key.num_shards == 4


def test_partitioned_catalog_replaces_probe_targets_only():
    catalog = scan_probe_catalog(200, 400, seed=2)
    query = scan_probe_query()
    derived = partitioned_catalog(catalog, query, 4)
    assert isinstance(derived.table("build"), PartitionedTable)
    assert not isinstance(derived.table("driver"), PartitionedTable)
    # base catalog untouched
    assert not isinstance(catalog.table("build"), PartitionedTable)
    # num_shards <= 1 is the identity
    assert partitioned_catalog(catalog, query, 1) is catalog


def test_partitioned_catalog_skips_unshardable_tables():
    catalog = Catalog()
    catalog.add_table("driver", {"k": [1, 2]})
    catalog.add_table("empty", {"k": np.empty(0, dtype=np.int64)})
    catalog.add_table("floats", {"k": np.asarray([1.5, 2.5])})
    from repro.core.query import JoinEdge, JoinQuery

    query = JoinQuery("driver", [
        JoinEdge("driver", "empty", "k", "k"),
        JoinEdge("driver", "floats", "k", "k"),
    ])
    derived = partitioned_catalog(catalog, query, 4)
    assert derived is catalog  # nothing shardable -> no derivation


def test_thread_pool_fanout_path_matches_serial(monkeypatch):
    """Force the ThreadPoolExecutor branch (single-core CI skips it)."""
    import repro.storage.partition as partition

    monkeypatch.setattr(partition, "_MAX_WORKERS", 4)
    monkeypatch.setattr(partition, "PARALLEL_MIN_KEYS", 1)
    rng = np.random.default_rng(13)
    keys = rng.integers(0, 40, 600)
    probes = rng.integers(-10, 50, 400)
    sharded = ShardedHashIndex(keys, 4)  # parallel build
    merged = HashIndex(keys)
    got = sharded.lookup(probes)        # parallel probe
    expected = merged.lookup(probes)
    assert (got.counts == expected.counts).all()
    assert sorted(got.matching_rows().tolist()) == sorted(
        expected.matching_rows().tolist()
    )
    assert (sharded.contains(probes) == merged.contains(probes)).all()
    assert sharded.probe_stats(probes) == merged.probe_stats(probes)


def test_deep_derivation_sharing_partitioned_table_refreshes_from_origin():
    """A grandchild catalog sharing a PartitionedTable by identity must
    refresh from the *originally mutated* table, not re-cluster the
    stale intermediate copies it shares."""
    c1 = Catalog()
    c1.add(Table("t", {"a": np.asarray([1, 2, 3, 4], dtype=np.int64)}))
    c2 = c1.derived_with({
        "t": PartitionedTable.from_table(c1.table("t"), "a", 2)
    })
    c3 = c2.derived_with({})
    assert c3.table("t") is c2.table("t")
    c1.table("t").column("a")[:] = [10, 20, 30, 40]
    c1.invalidate_indexes("t")
    for catalog in (c1, c2, c3):
        values = catalog.table("t").gather(np.arange(4))["a"]
        assert sorted(values.tolist()) == [10, 20, 30, 40], catalog
    assert c3.hash_index("t", "a").contains(np.asarray([10])).tolist() == [True]


# ----------------------------------------------------------------------
# Single-key vs batch probe agreement (degenerate batches)
# ----------------------------------------------------------------------


def test_single_key_probes_agree_with_batch_on_empty_shards():
    """An index whose keys all route to a few shards leaves the rest
    empty; single-key probes and batch lookups must agree anyway."""
    keys = np.asarray([7, 7, 7, 7], dtype=np.int64)  # one distinct key
    index = ShardedHashIndex(keys, 8)
    assert sum(len(s) == 0 for s in index.shards) >= 6
    probes = np.asarray([7, 8, 9, -1, 0], dtype=np.int64)
    batch = index.lookup(probes)
    merged = HashIndex(keys)
    expected = merged.lookup(probes)
    assert batch.counts.tolist() == expected.counts.tolist()
    assert batch.matched_mask.tolist() == expected.matched_mask.tolist()
    assert sorted(batch.matching_rows().tolist()) == \
        sorted(expected.matching_rows().tolist())
    for key in probes.tolist():
        single = index.lookup(np.asarray([key], dtype=np.int64))
        position = probes.tolist().index(key)
        assert single.counts.tolist() == [batch.counts[position]], key
        assert sorted(index.rows_for_key(key).tolist()) == \
            sorted(merged.rows_for_key(key).tolist()), key
        assert index.contains(np.asarray([key]))[0] == \
            merged.contains(np.asarray([key]))[0], key


def test_all_miss_batch_agrees_with_single_key_probes():
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 100, 300)
    index = ShardedHashIndex(keys, 4)
    misses = np.asarray([-3, 100, 250, 10**9], dtype=np.int64)
    batch = index.lookup(misses)
    assert batch.counts.tolist() == [0, 0, 0, 0]
    assert not batch.matched_mask.any()
    assert batch.total_matches() == 0
    assert batch.matching_rows().tolist() == []
    assert not index.contains(misses).any()
    assert index.probe_stats(misses) == (0, 0)
    for key in misses.tolist():
        single = index.lookup(np.asarray([key], dtype=np.int64))
        assert single.counts.tolist() == [0], key
        assert single.matching_rows().tolist() == [], key
        assert index.rows_for_key(key).tolist() == [], key


def test_empty_probe_batch_on_sharded_index():
    keys = np.asarray([1, 2, 3], dtype=np.int64)
    index = ShardedHashIndex(keys, 2)
    empty = np.asarray([], dtype=np.int64)
    result = index.lookup(empty)
    assert len(result) == 0
    assert result.total_matches() == 0
    assert result.matching_rows().tolist() == []
    assert index.contains(empty).tolist() == []
    assert index.probe_stats(empty) == (0, 0)
