"""Tests for catalog CSV persistence."""

import numpy as np
import pytest

from repro.storage import (
    Catalog,
    Table,
    load_catalog,
    save_catalog,
    table_from_csv,
    table_to_csv,
)


def make_catalog():
    catalog = Catalog()
    catalog.add_table("users", {"uid": [1, 2, 3], "age": [30, 40, 50]})
    catalog.add_table("edges", {"src": [1, 1, 2], "dst": [2, 3, 3]})
    return catalog


def test_round_trip(tmp_path):
    original = make_catalog()
    save_catalog(original, tmp_path / "db")
    loaded = load_catalog(tmp_path / "db")
    assert loaded.table_names == original.table_names
    for name in original.table_names:
        t_orig, t_load = original.table(name), loaded.table(name)
        assert t_load.column_names == t_orig.column_names
        for col in t_orig.column_names:
            assert np.array_equal(t_load.column(col), t_orig.column(col))
            assert t_load.column(col).dtype == t_orig.column(col).dtype


def test_table_csv_round_trip(tmp_path):
    table = Table("t", {"a": [5, 6], "b": [-1, 2]})
    path = tmp_path / "t.csv"
    table_to_csv(table, path)
    loaded = table_from_csv("t", path)
    assert loaded.column("a").tolist() == [5, 6]
    assert loaded.column("b").tolist() == [-1, 2]


def test_float_dtype_preserved(tmp_path):
    catalog = Catalog()
    catalog.add_table("m", {"x": np.asarray([1.5, 2.25])})
    save_catalog(catalog, tmp_path / "db")
    loaded = load_catalog(tmp_path / "db")
    assert loaded.table("m").column("x").dtype == np.float64
    assert loaded.table("m").column("x").tolist() == [1.5, 2.25]


def test_missing_manifest(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_catalog(tmp_path)


def test_empty_csv_rejected(tmp_path):
    (tmp_path / "x.csv").write_text("")
    with pytest.raises(ValueError, match="missing header"):
        table_from_csv("x", tmp_path / "x.csv")


def test_row_count_mismatch_detected(tmp_path):
    catalog = make_catalog()
    save_catalog(catalog, tmp_path / "db")
    # Corrupt: drop a data row from users.csv.
    path = tmp_path / "db" / "users.csv"
    lines = path.read_text().strip().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(ValueError, match="manifest says"):
        load_catalog(tmp_path / "db")


def test_loaded_catalog_queryable(tmp_path):
    from repro import JoinEdge, JoinQuery, execute

    save_catalog(make_catalog(), tmp_path / "db")
    loaded = load_catalog(tmp_path / "db")
    query = JoinQuery("users", [JoinEdge("users", "edges", "uid", "src")])
    result = execute(loaded, query, mode="COM", flat_output=True)
    assert result.output_size == 3
